//! Quickstart: simulate one workload with and without STMS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic OLTP-like trace, replays it through the scaled
//! 4-core CMP model three times (baseline stride-only system, idealized
//! on-chip temporal streaming, and practical STMS with off-chip meta-data),
//! and prints coverage, speedup and traffic for each.

use stms::core::{Stms, StmsConfig};
use stms::mem::{CmpSimulator, NullPrefetcher, SimResult};
use stms::prefetch::{IdealTms, IdealTmsConfig};
use stms::sim::ExperimentConfig;
use stms::workloads::{generate, presets};

fn report(label: &str, result: &SimResult, baseline: &SimResult) {
    println!(
        "{label:<12} coverage {:5.1}%   speedup {:+6.1}%   off-chip reads {:>7}   overhead bytes/useful byte {:.2}",
        result.coverage() * 100.0,
        result.speedup_over(baseline) * 100.0,
        result.uncovered_misses,
        result.overhead_per_useful_byte(),
    );
}

fn main() {
    // 1. Pick a workload model and generate its access trace.
    let spec = presets::oltp_db2();
    println!(
        "generating {} trace ({} accesses over {} cores)...",
        spec.name, spec.accesses, spec.cores
    );
    let trace = generate(&spec);

    // 2. The scaled system model (paper Table 1, capacities scaled to the
    //    synthetic footprints).
    let cfg = ExperimentConfig::scaled();

    // 3. Baseline: stride prefetcher only.
    let baseline = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut NullPrefetcher::new());

    // 4. Idealized temporal memory streaming (magic on-chip meta-data).
    let mut ideal = IdealTms::new(IdealTmsConfig {
        cores: cfg.system.cores,
        ..Default::default()
    });
    let ideal_result = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut ideal);

    // 5. Practical STMS: off-chip meta-data, hash-based lookup, 12.5% update
    //    sampling.
    let mut stms = Stms::new(StmsConfig {
        cores: cfg.system.cores,
        ..StmsConfig::scaled_default()
    });
    let stms_result = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut stms);

    println!(
        "\nresults for {} (baseline IPC {:.2}):",
        spec.name,
        baseline.ipc()
    );
    report("baseline", &baseline, &baseline);
    report("ideal TMS", &ideal_result, &baseline);
    report("STMS", &stms_result, &baseline);

    println!(
        "\nSTMS reached {:.0}% of the idealized coverage with {} KB of on-chip state per core \
         and {} MB of main-memory meta-data.",
        100.0 * stms_result.coverage() / ideal_result.coverage().max(1e-9),
        stms.config().on_chip_bytes_per_core() / 1024,
        stms.config().metadata_bytes() / (1024 * 1024),
    );
}
