//! Probabilistic-update tuning: traffic vs coverage.
//!
//! ```text
//! cargo run --release --example sampling_tradeoff
//! ```
//!
//! Sweeps the index-update sampling probability of STMS on an OLTP workload
//! and prints the trade-off between meta-data traffic and prefetch coverage —
//! the experiment behind Figure 8 of the paper and the knob a system designer
//! would tune for their own memory-bandwidth budget.

use stms::sim::{run_matched, ExperimentConfig, PrefetcherKind};
use stms::stats::TextTable;
use stms::workloads::presets;

fn main() {
    let cfg = ExperimentConfig::scaled();
    let spec = presets::oltp_db2();
    let probabilities = [1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125];
    println!(
        "sweeping STMS update-sampling probability on {} ({} points)...\n",
        spec.name,
        probabilities.len()
    );

    let kinds: Vec<PrefetcherKind> = probabilities
        .iter()
        .map(|&p| PrefetcherKind::stms_with_sampling(p))
        .collect();
    let results = run_matched(&cfg, &spec, &kinds).expect("no simulation panics");

    let mut table = TextTable::new(vec![
        "sampling".into(),
        "index-update bytes".into(),
        "total overhead/useful byte".into(),
        "coverage".into(),
    ])
    .with_title(format!("Probabilistic update sensitivity on {}", spec.name));
    let full_update_bytes = results[0].traffic.meta_update.max(1);
    for (p, r) in probabilities.iter().zip(&results) {
        table.add_row(vec![
            format!("{:.1}%", p * 100.0),
            format!(
                "{} ({}x less)",
                r.traffic.meta_update,
                full_update_bytes / r.traffic.meta_update.max(1)
            ),
            format!("{:.2}", r.overhead_per_useful_byte()),
            format!("{:.1}%", r.coverage() * 100.0),
        ]);
    }
    println!("{}", table.render());

    let full = &results[0];
    let sampled = &results[3];
    println!(
        "At the paper's 12.5% design point, index-update traffic drops {:.1}x while coverage \
         moves from {:.1}% to {:.1}%.",
        full.traffic.meta_update as f64 / sampled.traffic.meta_update.max(1) as f64,
        full.coverage() * 100.0,
        sampled.coverage() * 100.0,
    );
}
