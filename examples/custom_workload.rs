//! Modelling your own application: would temporal streaming help it?
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! Builds two custom [`WorkloadSpec`]s from scratch — a pointer-chasing
//! key-value store with recurring request paths, and a streaming analytics
//! scan that never revisits data — and checks what STMS would do for each.
//! This is the workflow for answering "is my workload's miss stream temporal
//! enough for an address-correlating prefetcher?".

use stms::sim::collect_miss_sequences;
use stms::sim::{run_matched, ExperimentConfig, PrefetcherKind};
use stms::stats::{analyze_streams_multi, pct};
use stms::workloads::{LengthDist, WorkloadClass, WorkloadSpec};

fn kv_store() -> WorkloadSpec {
    WorkloadSpec {
        name: "custom: kv-store".into(),
        class: WorkloadClass::Oltp,
        cores: 4,
        accesses: 400_000,
        // Request handlers walk the same index paths over and over.
        p_repeat: 0.8,
        stream_len: LengthDist::pareto_with_median(12, 800, 1.1),
        max_pool_streams: 900,
        shared_pool: true,
        p_noise: 0.05,
        scan_run: 1,
        hot_fraction: 0.8,
        hot_lines: 1000,
        p_dependent: 0.7,
        mean_gap: 60,
        p_divergence: 0.01,
        p_write: 0.15,
        seed: 7,
    }
}

fn analytics_scan() -> WorkloadSpec {
    WorkloadSpec {
        name: "custom: analytics scan".into(),
        class: WorkloadClass::Dss,
        // Data is touched once: there is nothing temporal to learn.
        p_repeat: 0.05,
        p_noise: 0.6,
        scan_run: 128,
        seed: 8,
        ..kv_store()
    }
}

fn main() {
    let cfg = ExperimentConfig::scaled();
    for spec in [kv_store(), analytics_scan()] {
        println!("== {} ==", spec.name);

        // First, an offline look at the miss stream itself: how much of it is
        // covered by recurring temporal streams, and how long are they?
        let misses = collect_miss_sequences(&cfg, &spec);
        let analysis = analyze_streams_multi(&misses);
        println!(
            "  temporal-stream analysis: {} off-chip read misses, {} in recurring streams ({}), median followed stream {} blocks",
            analysis.total_misses,
            analysis.streamed_blocks(),
            pct(analysis.max_coverage()),
            if analysis.run_lengths.is_empty() { 0 } else { analysis.blocks_by_length_cdf().percentile(0.5) },
        );

        // Then the actual prefetcher comparison.
        let results = run_matched(
            &cfg,
            &spec,
            &[
                PrefetcherKind::Baseline,
                PrefetcherKind::ideal(),
                PrefetcherKind::stms_with_sampling(0.125),
            ],
        )
        .expect("no simulation panics");
        let (base, ideal, stms) = (&results[0], &results[1], &results[2]);
        println!(
            "  ideal TMS: coverage {}, speedup {:+.1}%    STMS: coverage {}, speedup {:+.1}%, overhead {:.2} bytes/useful byte\n",
            pct(ideal.coverage()),
            ideal.speedup_over(base) * 100.0,
            pct(stms.coverage()),
            stms.speedup_over(base) * 100.0,
            stms.overhead_per_useful_byte(),
        );
    }
    println!(
        "Rule of thumb: if the offline analysis shows little recurring structure (like the scan),\n\
         an address-correlating prefetcher cannot help, no matter where its meta-data lives."
    );
}
