//! Prefetcher shoot-out on a web-serving workload.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```
//!
//! Compares every prefetcher family discussed by the paper on the same
//! generated trace: the stride-only baseline, the pair-wise Markov
//! prefetcher, a fixed-depth single-table correlation prefetcher (EBCP-like),
//! idealized temporal memory streaming and practical STMS. This is the
//! "which prefetcher should I build?" view a microarchitect would start from.

use stms::mem::SimResult;
use stms::prefetch::{FixedDepthConfig, MarkovConfig};
use stms::sim::{run_matched, ExperimentConfig, PrefetcherKind};
use stms::stats::TextTable;
use stms::workloads::presets;

fn main() {
    let cfg = ExperimentConfig::scaled();
    let spec = presets::web_apache();
    println!(
        "simulating {} with every prefetcher family (this takes a few seconds)...\n",
        spec.name
    );

    let kinds = vec![
        PrefetcherKind::Baseline,
        PrefetcherKind::Markov(MarkovConfig {
            cores: cfg.system.cores,
            ..Default::default()
        }),
        PrefetcherKind::FixedDepth(FixedDepthConfig::ebcp_like(cfg.system.cores)),
        PrefetcherKind::ideal(),
        PrefetcherKind::stms_with_sampling(0.125),
    ];
    let results = run_matched(&cfg, &spec, &kinds).expect("no simulation panics");
    let baseline: &SimResult = &results[0];

    let mut table = TextTable::new(vec![
        "prefetcher".into(),
        "coverage".into(),
        "accuracy".into(),
        "speedup".into(),
        "overhead bytes/useful".into(),
        "on-chip meta-data".into(),
    ])
    .with_title(format!("Prefetcher comparison on {}", spec.name));

    let on_chip = [
        "none",
        "512 KB table",
        "8 MB table",
        "impractical (>=64 MB)",
        "2 KB/core + 8 KB",
    ];
    for ((kind, result), chip) in kinds.iter().zip(&results).zip(on_chip) {
        table.add_row(vec![
            kind.label(),
            format!("{:.1}%", result.coverage() * 100.0),
            format!("{:.1}%", result.accuracy() * 100.0),
            format!("{:+.1}%", result.speedup_over(baseline) * 100.0),
            format!("{:.2}", result.overhead_per_useful_byte()),
            chip.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The split-table temporal streamers (ideal TMS, STMS) follow arbitrarily long streams,\n\
         which is why they beat the bounded-depth designs on coverage; STMS gets there while\n\
         keeping its correlation meta-data entirely in main memory."
    );
}
