//! Property-based integration tests: the full pipeline (generator → engine →
//! prefetcher → metrics) must uphold its invariants for arbitrary workload
//! parameters, not just the calibrated presets.

use proptest::prelude::*;
use stms::core::{Stms, StmsConfig};
use stms::mem::{CmpSimulator, NullPrefetcher, SimOptions, SimResult, SystemConfig};
use stms::prefetch::{IdealTms, IdealTmsConfig};
use stms::workloads::{generate, LengthDist, WorkloadClass, WorkloadSpec};

/// Builds an arbitrary (but small) workload specification.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        0.0f64..1.0,  // p_repeat
        0.0f64..0.6,  // p_noise
        0.0f64..0.9,  // hot_fraction
        0.0f64..1.0,  // p_dependent
        2u64..40,     // stream length median
        1u64..64,     // scan run
        any::<u64>(), // seed
    )
        .prop_map(
            |(p_repeat, p_noise, hot_fraction, p_dependent, median, scan_run, seed)| WorkloadSpec {
                name: "prop".into(),
                class: WorkloadClass::Web,
                cores: 2,
                accesses: 6_000,
                p_repeat,
                stream_len: LengthDist::pareto_with_median(median, median * 20, 1.2),
                max_pool_streams: 64,
                shared_pool: true,
                p_noise,
                scan_run,
                hot_fraction,
                hot_lines: 256,
                p_dependent,
                mean_gap: 6,
                p_divergence: 0.02,
                p_write: 0.1,
                seed,
            },
        )
}

fn system() -> SystemConfig {
    SystemConfig::tiny_for_tests()
}

fn options() -> SimOptions {
    SimOptions {
        warmup_fraction: 0.1,
        ..SimOptions::default()
    }
}

fn check_result_invariants(r: &SimResult) {
    let classified = r.l1_hits
        + r.l2_hits
        + r.covered_full
        + r.covered_partial
        + r.uncovered_misses
        + r.write_misses;
    assert_eq!(
        classified, r.accesses,
        "every access is classified exactly once"
    );
    assert!(r.coverage() >= 0.0 && r.coverage() <= 1.0);
    assert!(r.accuracy() >= 0.0 && r.accuracy() <= 1.0);
    assert!(r.mlp() >= 1.0);
    assert_eq!(r.prefetches_used, r.covered_full + r.covered_partial);
    assert!(r.prefetches_used <= r.prefetches_issued);
    assert!(r.instructions >= r.accesses);
    // Traffic sanity: every uncovered miss and every issued prefetch moved a
    // 64-byte line.
    assert!(r.traffic.demand_fill >= r.uncovered_misses * 64);
    assert!(r.traffic.prefetch_data >= r.prefetches_issued * 64);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The engine's accounting identities hold for arbitrary workloads under
    /// the baseline, the idealized prefetcher and STMS.
    #[test]
    fn pipeline_invariants_hold_for_arbitrary_workloads(spec in arb_spec()) {
        let trace = generate(&spec);
        let sys = system();

        let baseline = CmpSimulator::new(&sys, options()).run(&trace, &mut NullPrefetcher::new());
        check_result_invariants(&baseline);
        prop_assert_eq!(baseline.prefetches_issued, 0);
        prop_assert_eq!(baseline.traffic.meta_total(), 0);

        let mut ideal = IdealTms::new(IdealTmsConfig { cores: sys.cores, ..Default::default() });
        let ideal_res = CmpSimulator::new(&sys, options()).run(&trace, &mut ideal);
        check_result_invariants(&ideal_res);
        prop_assert_eq!(ideal_res.traffic.meta_total(), 0, "idealized meta-data is on chip");

        let mut stms = Stms::new(StmsConfig {
            cores: sys.cores,
            sampling_probability: 0.25,
            ..StmsConfig::scaled_default()
        });
        let stms_res = CmpSimulator::new(&sys, options()).run(&trace, &mut stms);
        check_result_invariants(&stms_res);
        // STMS that issued any prefetch must have paid meta-data lookups.
        if stms_res.prefetches_issued > 0 {
            prop_assert!(stms_res.traffic.meta_lookup > 0);
        }
        // Both runs replay the same trace, so the baseline miss opportunity
        // is identical up to cache-warming second-order effects.
        let base_opportunity = baseline.base_read_misses() as f64;
        let stms_opportunity = stms_res.base_read_misses() as f64;
        if base_opportunity > 500.0 {
            prop_assert!((base_opportunity - stms_opportunity).abs() / base_opportunity < 0.25);
        }
    }

    /// Trace generation and simulation are fully deterministic in the seed.
    #[test]
    fn generation_and_simulation_are_deterministic(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(&a, &b);
        let sys = system();
        let ra = CmpSimulator::new(&sys, options()).run(&a, &mut NullPrefetcher::new());
        let rb = CmpSimulator::new(&sys, options()).run(&b, &mut NullPrefetcher::new());
        prop_assert_eq!(ra, rb);
    }

    /// The binary trace codec round-trips arbitrary generated traces.
    #[test]
    fn trace_codec_round_trips_generated_traces(spec in arb_spec()) {
        let trace = generate(&spec);
        let decoded = stms::types::Trace::decode(&trace.encode()).expect("decode");
        prop_assert_eq!(decoded, trace);
    }

    /// Both chunk-framed codecs round-trip arbitrary traces under arbitrary
    /// chunk lengths, and the columnar compression never changes content.
    #[test]
    fn chunked_codecs_round_trip_for_arbitrary_chunk_lengths(
        spec in arb_spec(),
        chunk_len in 1usize..700,
    ) {
        use stms::types::stream::{decode_chunked, encode_chunked_with};
        use stms::types::{Fingerprint, TraceCodec};
        let trace = generate(&spec);
        let key = Fingerprint::from_raw(0xfeed);
        for codec in [TraceCodec::V2, TraceCodec::V3] {
            let sealed = encode_chunked_with(&trace, key, chunk_len, codec);
            let decoded = decode_chunked(&sealed, key).expect("chunked decode");
            prop_assert_eq!(&decoded, &trace, "codec {} diverged", codec);
        }
    }

    /// Streamed chunk-by-chunk replay is bit-identical to the materialized
    /// replay for arbitrary workloads, chunkings, and both disk codecs.
    #[test]
    fn streamed_replay_matches_materialized_for_arbitrary_workloads(
        spec in arb_spec(),
        chunk_len in 16usize..500,
    ) {
        use stms::types::stream::{encode_chunked_with, TraceReader};
        use stms::types::{Fingerprint, TraceCodec};
        let trace = generate(&spec);
        let sys = system();
        let materialized =
            CmpSimulator::new(&sys, options()).run(&trace, &mut NullPrefetcher::new());
        let key = Fingerprint::from_raw(0xbeef);
        for codec in [TraceCodec::V2, TraceCodec::V3] {
            let sealed = encode_chunked_with(&trace, key, chunk_len, codec);
            let mut reader = TraceReader::new(std::io::Cursor::new(sealed), key)
                .expect("open sealed stream");
            let streamed = CmpSimulator::new(&sys, options())
                .run_stream(&mut reader, &mut NullPrefetcher::new())
                .expect("clean stream replays");
            prop_assert_eq!(&streamed, &materialized, "codec {} diverged", codec);
        }
    }

    /// A single corrupted byte anywhere in a sealed chunk stream must fail
    /// closed at open or replay time — never decode to different accesses.
    #[test]
    fn corrupt_chunk_streams_fail_closed(
        spec in arb_spec(),
        offset_seed in any::<u64>(),
    ) {
        use stms::types::stream::{decode_chunked, encode_chunked_with};
        use stms::types::{Fingerprint, TraceCodec};
        let trace = generate(&spec);
        let key = Fingerprint::from_raw(0xdead);
        let sealed = encode_chunked_with(&trace, key, 128, TraceCodec::V3);
        let mut garbled = sealed;
        let offset = (offset_seed as usize) % garbled.len();
        garbled[offset] ^= 0x01;
        match decode_chunked(&garbled, key) {
            Err(_) => {}
            // The flip may land in dead padding only if decode reproduces
            // the original exactly; anything else is silent corruption.
            Ok(decoded) => prop_assert_eq!(&decoded, &trace),
        }
    }
}
