//! End-to-end integration tests spanning every crate in the workspace:
//! workload generation -> CMP simulation -> prefetchers -> metrics.

use stms::core::{Stms, StmsConfig};
use stms::mem::{CmpSimulator, NullPrefetcher, SimResult};
use stms::prefetch::{IdealTms, IdealTmsConfig, MissTraceCollector};
use stms::sim::{run_matched, ExperimentConfig, PrefetcherKind};
use stms::stats::analyze_streams_multi;
use stms::workloads::{generate, LengthDist, WorkloadClass, WorkloadSpec};

/// A compact but highly-repetitive workload so that integration tests finish
/// quickly while still exercising stream recurrence through the whole stack.
fn test_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "integration".into(),
        class: WorkloadClass::Web,
        cores: 4,
        accesses: 60_000,
        p_repeat: 0.85,
        stream_len: LengthDist::pareto_with_median(12, 400, 1.1),
        max_pool_streams: 400,
        shared_pool: true,
        p_noise: 0.05,
        scan_run: 1,
        hot_fraction: 0.2,
        hot_lines: 500,
        p_dependent: 0.6,
        mean_gap: 10,
        p_divergence: 0.01,
        p_write: 0.08,
        seed: 20_260_616,
    }
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick().with_accesses(60_000)
}

fn run(kind: &PrefetcherKind) -> SimResult {
    stms::sim::run_workload(&cfg(), &test_spec(), kind)
}

#[test]
fn accounting_identities_hold_for_every_prefetcher() {
    for kind in [
        PrefetcherKind::Baseline,
        PrefetcherKind::ideal(),
        PrefetcherKind::stms_with_sampling(0.125),
        PrefetcherKind::stms_with_sampling(1.0),
    ] {
        let r = run(&kind);
        // Every replayed access is classified exactly once.
        let classified = r.l1_hits
            + r.l2_hits
            + r.covered_full
            + r.covered_partial
            + r.uncovered_misses
            + r.write_misses;
        assert_eq!(
            classified,
            r.accesses,
            "classification mismatch for {}",
            kind.label()
        );
        // Coverage and accuracy are proper fractions.
        assert!((0.0..=1.0).contains(&r.coverage()), "{}", kind.label());
        assert!((0.0..=1.0).contains(&r.accuracy()), "{}", kind.label());
        // Used + unused prefetches never exceed issued prefetches (unused may
        // also include blocks dropped at end of simulation).
        assert!(r.prefetches_used <= r.prefetches_issued);
        assert_eq!(
            r.prefetches_used,
            r.covered_full + r.covered_partial,
            "every used prefetch corresponds to one covered miss ({})",
            kind.label()
        );
        // Cycles and instructions are non-degenerate.
        assert!(r.cycles > 0 && r.instructions > 0);
        assert!(r.mlp() >= 1.0);
    }
}

#[test]
fn baseline_never_prefetches_and_stride_only_traffic() {
    let r = run(&PrefetcherKind::Baseline);
    assert_eq!(r.prefetches_issued, 0);
    assert_eq!(r.coverage(), 0.0);
    assert_eq!(
        r.traffic.meta_total(),
        0,
        "no temporal meta-data traffic in the baseline"
    );
    assert_eq!(r.traffic.prefetch_data, 0);
    assert!(r.traffic.demand_fill > 0);
}

#[test]
fn temporal_prefetchers_cover_the_repetitive_workload() {
    let results = run_matched(
        &cfg(),
        &test_spec(),
        &[
            PrefetcherKind::Baseline,
            PrefetcherKind::ideal(),
            PrefetcherKind::stms_with_sampling(1.0),
        ],
    )
    .expect("no simulation panics");
    let (base, ideal, stms_full) = (&results[0], &results[1], &results[2]);
    assert!(
        ideal.coverage() > 0.3,
        "ideal coverage {}",
        ideal.coverage()
    );
    assert!(ideal.speedup_over(base) > 0.0);
    // With 100% sampling STMS should reach most of the idealized coverage.
    assert!(
        stms_full.coverage() > 0.6 * ideal.coverage(),
        "STMS@100% coverage {} vs ideal {}",
        stms_full.coverage(),
        ideal.coverage()
    );
    // But it pays for it with meta-data traffic, which the ideal design does
    // not have.
    assert!(stms_full.traffic.meta_total() > 0);
    assert_eq!(ideal.traffic.meta_total(), 0);
}

#[test]
fn probabilistic_update_trades_little_coverage_for_much_less_traffic() {
    let results = run_matched(
        &cfg(),
        &test_spec(),
        &[
            PrefetcherKind::stms_with_sampling(1.0),
            PrefetcherKind::stms_with_sampling(0.125),
        ],
    )
    .expect("no simulation panics");
    let (full, sampled) = (&results[0], &results[1]);
    let update_reduction =
        full.traffic.meta_update as f64 / sampled.traffic.meta_update.max(1) as f64;
    assert!(
        update_reduction > 4.0,
        "12.5% sampling should cut index-update traffic by well over 4x, got {update_reduction:.1}x"
    );
    assert!(
        sampled.coverage() > 0.4 * full.coverage(),
        "sampling should retain a large share of coverage: {} vs {}",
        sampled.coverage(),
        full.coverage()
    );
    assert!(sampled.overhead_per_useful_byte() < full.overhead_per_useful_byte());
}

#[test]
fn offline_stream_analysis_bounds_are_consistent() {
    let trace = generate(&test_spec());
    let system = cfg();
    let mut collector = MissTraceCollector::new(system.system.cores);
    let _ = CmpSimulator::new(&system.system, system.sim).run(&trace, &mut collector);
    let analysis = analyze_streams_multi(&collector.all_cores());
    assert!(analysis.total_misses > 1_000);
    assert!(analysis.streamed_blocks() <= analysis.total_misses);
    assert!(
        analysis.max_coverage() > 0.0,
        "the repetitive workload must show temporal streams"
    );
    let cdf = analysis.blocks_by_length_cdf();
    assert!(cdf.fraction_at_or_below(u64::MAX >> 1) >= 0.999);
}

#[test]
fn deterministic_results_for_identical_seeds() {
    let a = run(&PrefetcherKind::stms_with_sampling(0.125));
    let b = run(&PrefetcherKind::stms_with_sampling(0.125));
    assert_eq!(a, b, "the whole pipeline must be deterministic");
}

/// Renders `ids` through a campaign configured by `caches`, asserting no
/// figure fails.
fn render_with_caches(
    ids: &[&str],
    caches: stms::sim::campaign::CampaignCaches,
) -> (Vec<String>, stms::sim::campaign::Campaign) {
    use stms::sim::experiments;
    let campaign = stms::sim::campaign::Campaign::with_caches(
        ExperimentConfig::quick().with_accesses(6_000),
        2,
        caches,
    )
    .expect("open caches");
    let plans = ids
        .iter()
        .map(|id| experiments::plan_for_id(id, campaign.cfg()).expect("known id"))
        .collect();
    let rendered = campaign
        .run_figures(plans)
        .into_iter()
        .map(|figure| figure.expect("no job fails").render())
        .collect();
    (rendered, campaign)
}

#[test]
fn streamed_and_pipelined_campaigns_render_byte_identically() {
    use stms::sim::campaign::CampaignCaches;
    let ids = ["table2", "fig6-left"];
    let (materialized, _) = render_with_caches(&ids, CampaignCaches::default());

    // Out-of-core replay: traces stream chunk by chunk from the generator.
    let (streamed, campaign) = render_with_caches(
        &ids,
        CampaignCaches {
            stream_traces: true,
            ..CampaignCaches::default()
        },
    );
    assert_eq!(streamed, materialized, "streamed replay changed the bytes");
    assert!(campaign.store().stats().stream_replays > 0);

    // Staged pipeline on top of streaming: prefetch/decode overlap replay.
    let (pipelined, campaign) = render_with_caches(
        &ids,
        CampaignCaches {
            stream_traces: true,
            pipeline_depth: 4,
            decode_threads: 2,
            ..CampaignCaches::default()
        },
    );
    assert_eq!(
        pipelined, materialized,
        "pipelined replay changed the bytes"
    );
    assert!(campaign.store().stats().pipeline_chunks > 0);
}

#[test]
fn v2_written_trace_cache_replays_identically_under_a_v3_campaign() {
    use stms::sim::campaign::CampaignCaches;
    use stms::types::TraceCodec;
    let dir = std::env::temp_dir().join(format!("stms-e2e-codec-dispatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ids = ["fig4"];

    // Cold campaign seals its trace files under the legacy row codec.
    let v2 = CampaignCaches {
        trace_dir: Some(dir.clone()),
        stream_traces: true,
        trace_codec: TraceCodec::V2,
        ..CampaignCaches::default()
    };
    let (cold, campaign) = render_with_caches(&ids, v2);
    assert!(
        campaign.store().stats().disk_writes > 0,
        "cold run persists"
    );

    // A v3-configured campaign on the same directory must read the v2
    // files via version dispatch: no regeneration, identical bytes.
    let v3 = CampaignCaches {
        trace_dir: Some(dir.clone()),
        stream_traces: true,
        trace_codec: TraceCodec::V3,
        ..CampaignCaches::default()
    };
    let (warm, campaign) = render_with_caches(&ids, v3);
    assert_eq!(warm, cold, "codec dispatch changed the rendering");
    let stats = campaign.store().stats();
    assert_eq!(stats.generated, 0, "warm run must not regenerate");
    assert!(stats.stream_replays > 0, "warm run streams from disk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn direct_library_use_without_the_driver() {
    // The same flow as examples/quickstart.rs, exercising the public API of
    // the individual crates without going through stms-sim.
    let trace = generate(&test_spec());
    let system = stms::mem::SystemConfig::tiny_for_tests();
    let baseline =
        CmpSimulator::new(&system, Default::default()).run(&trace, &mut NullPrefetcher::new());
    let mut ideal = IdealTms::new(IdealTmsConfig {
        cores: system.cores,
        ..Default::default()
    });
    let ideal_res = CmpSimulator::new(&system, Default::default()).run(&trace, &mut ideal);
    let mut stms = Stms::new(StmsConfig {
        cores: system.cores,
        ..StmsConfig::scaled_default()
    });
    let stms_res = CmpSimulator::new(&system, Default::default()).run(&trace, &mut stms);

    assert!(ideal_res.coverage() > 0.0);
    assert!(stms_res.coverage() > 0.0);
    assert!(baseline.ipc() > 0.0);
    assert!(stms.stats().recorded > 0);
    assert!(stms.index_stats().lookups > 0);
}
