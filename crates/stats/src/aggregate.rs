//! Aggregate statistics: means, geometric means and matched-pair confidence
//! intervals (the SimFlex-style sampling methodology of §5.1).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Geometric mean of strictly positive values (0 if any value is
/// non-positive or the slice is empty). The paper reports the meta-data
/// traffic reduction as a geometric mean across workloads.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A matched-pair comparison between a baseline and an experimental
/// configuration measured on the same sample points (the paper's
/// matched-pair sample comparison of performance changes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchedPair {
    /// Mean of the per-pair differences (experiment − baseline).
    pub mean_diff: f64,
    /// Half-width of the 95% confidence interval of the mean difference.
    pub ci95_half_width: f64,
    /// Number of pairs.
    pub pairs: usize,
}

impl MatchedPair {
    /// Computes a matched-pair comparison.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn compare(baseline: &[f64], experiment: &[f64]) -> Self {
        assert_eq!(
            baseline.len(),
            experiment.len(),
            "matched pairs need equal-length samples"
        );
        let diffs: Vec<f64> = experiment
            .iter()
            .zip(baseline)
            .map(|(e, b)| e - b)
            .collect();
        let m = mean(&diffs);
        let sd = std_dev(&diffs);
        let n = diffs.len();
        let half = if n > 1 {
            1.96 * sd / (n as f64).sqrt()
        } else {
            0.0
        };
        MatchedPair {
            mean_diff: m,
            ci95_half_width: half,
            pairs: n,
        }
    }

    /// Whether the difference is statistically significant at 95%.
    pub fn significant(&self) -> bool {
        self.pairs > 1 && self.mean_diff.abs() > self.ci95_half_width
    }
}

/// Splits a series of per-interval measurements into `batches` batch means
/// (simple batch-means sampling).
pub fn batch_means(values: &[f64], batches: usize) -> Vec<f64> {
    if values.is_empty() || batches == 0 {
        return Vec::new();
    }
    let batch_size = values.len().div_ceil(batches);
    values.chunks(batch_size).map(mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn gmean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[2.0, -1.0]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn matched_pair_detects_consistent_improvement() {
        let base = vec![1.0, 1.1, 0.9, 1.0, 1.05];
        let exp: Vec<f64> = base.iter().map(|v| v + 0.5).collect();
        let mp = MatchedPair::compare(&base, &exp);
        assert!((mp.mean_diff - 0.5).abs() < 1e-9);
        assert!(mp.significant());
    }

    #[test]
    fn matched_pair_noise_is_not_significant() {
        let base = vec![1.0, 2.0, 3.0, 4.0];
        let exp = vec![2.0, 1.0, 4.0, 3.0];
        let mp = MatchedPair::compare(&base, &exp);
        assert!((mp.mean_diff - 0.0).abs() < 1e-9);
        assert!(!mp.significant());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn matched_pair_length_mismatch_panics() {
        let _ = MatchedPair::compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn batch_means_splits_evenly() {
        let values: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let batches = batch_means(&values, 5);
        assert_eq!(batches, vec![1.5, 3.5, 5.5, 7.5, 9.5]);
        assert!(batch_means(&[], 3).is_empty());
        assert!(batch_means(&values, 0).is_empty());
    }

    proptest! {
        /// The geometric mean lies between the min and max of positive values.
        #[test]
        fn prop_gmean_bounded(values in proptest::collection::vec(0.01f64..100.0, 1..50)) {
            let g = geometric_mean(&values);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        }

        /// Matched-pair mean difference equals difference of means.
        #[test]
        fn prop_matched_pair_mean(base in proptest::collection::vec(-10.0f64..10.0, 2..40), delta in -5.0f64..5.0) {
            let exp: Vec<f64> = base.iter().map(|v| v + delta).collect();
            let mp = MatchedPair::compare(&base, &exp);
            prop_assert!((mp.mean_diff - delta).abs() < 1e-9);
        }
    }
}
