//! Metrics and statistics for the STMS reproduction.
//!
//! The simulation engine (`stms-mem`) reports raw counters per run; this
//! crate provides the analyses layered on top of them:
//!
//! * [`Cdf`] — empirical (optionally weighted) distributions, used for the
//!   temporal-stream length distribution of Figure 6 (left);
//! * [`analyze_streams`] — offline temporal-stream run analysis of a miss
//!   sequence;
//! * [`aggregate`] — means, geometric means, batch means and matched-pair
//!   confidence intervals (the paper's SimFlex-style methodology);
//! * [`TextTable`] — aligned text / CSV rendering of every reproduced figure
//!   and table;
//! * [`RunSummary`] — compact cache-hit reporting for campaign run
//!   summaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod cdf;
pub mod streams;
pub mod summary;
pub mod table;

pub use aggregate::{batch_means, geometric_mean, mean, std_dev, MatchedPair};
pub use cdf::Cdf;
pub use streams::{analyze_streams, analyze_streams_multi, StreamAnalysis};
pub use summary::{
    CacheReport, PipelineReport, RunSummary, SchedReport, ServeReport, ShardReport, StreamReport,
    TelemetryReport,
};
pub use table::{pct, ratio, TextTable};
