//! Run summaries: compact cache-hit reporting for campaign drivers.
//!
//! The campaign layer's two persistent tiers (trace files and memoized job
//! outputs) each expose raw counters; this module renders them as the short
//! per-run block the `stms-experiments` binary prints to stderr, so a user
//! can see at a glance whether a run was served from cache ("warm") or had
//! to simulate ("cold") — and CI can assert on the same lines.
//!
//! # Example
//!
//! ```
//! use stms_stats::summary::{CacheReport, RunSummary};
//!
//! let mut summary = RunSummary::new();
//! summary.push(
//!     CacheReport::new("traces", 13, 0)
//!         .with_detail("generated", 0)
//!         .with_detail("disk hits", 8),
//! );
//! let text = summary.render();
//! assert!(text.starts_with("run summary:"));
//! assert!(text.contains("traces: 13 hits, 0 misses (100.0% hit rate, generated 0, disk hits 8)"));
//! ```

use std::fmt::Write as _;

/// Counters of one cache tier, plus optional named detail counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheReport {
    /// Tier name, e.g. `"traces"` or `"results"`.
    pub name: String,
    /// Lookups served without doing the work.
    pub hits: u64,
    /// Lookups that had to do the work.
    pub misses: u64,
    /// Extra `(label, value)` counters appended in order, e.g. evictions.
    pub details: Vec<(String, u64)>,
}

impl CacheReport {
    /// A report with the two core counters.
    pub fn new(name: impl Into<String>, hits: u64, misses: u64) -> Self {
        CacheReport {
            name: name.into(),
            hits,
            misses,
            details: Vec::new(),
        }
    }

    /// Appends a named detail counter (builder style).
    pub fn with_detail(mut self, label: impl Into<String>, value: u64) -> Self {
        self.details.push((label.into(), value));
        self
    }

    /// Fraction of lookups served from cache, `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One summary line, e.g.
    /// `traces: 13 hits, 0 misses (100.0% hit rate, generated 0)`.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "{}: {} hits, {} misses ({:.1}% hit rate",
            self.name,
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        );
        for (label, value) in &self.details {
            let _ = write!(line, ", {label} {value}");
        }
        line.push(')');
        line
    }
}

/// An ordered collection of [`CacheReport`]s rendered as one block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSummary {
    reports: Vec<CacheReport>,
}

impl RunSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one tier's report.
    pub fn push(&mut self, report: CacheReport) {
        self.reports.push(report);
    }

    /// Whether any report was added.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The rendered block: a `run summary:` header plus one indented line
    /// per tier. Empty summaries render as an empty string.
    pub fn render(&self) -> String {
        if self.reports.is_empty() {
            return String::new();
        }
        let mut out = String::from("run summary:\n");
        for report in &self.reports {
            out.push_str("  ");
            out.push_str(&report.render_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_idle_and_full() {
        assert_eq!(CacheReport::new("t", 0, 0).hit_rate(), 0.0);
        assert_eq!(CacheReport::new("t", 5, 0).hit_rate(), 1.0);
        assert!((CacheReport::new("t", 1, 3).hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lines_carry_details_in_order() {
        let line = CacheReport::new("results", 10, 2)
            .with_detail("stores", 2)
            .with_detail("corrupt", 1)
            .render_line();
        assert_eq!(
            line,
            "results: 10 hits, 2 misses (83.3% hit rate, stores 2, corrupt 1)"
        );
    }

    #[test]
    fn summary_renders_header_and_indent() {
        let mut summary = RunSummary::new();
        assert!(summary.is_empty());
        assert_eq!(summary.render(), "");
        summary.push(CacheReport::new("a", 1, 0));
        summary.push(CacheReport::new("b", 0, 1));
        let text = summary.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "run summary:");
        assert!(lines[1].starts_with("  a:"));
        assert!(lines[2].starts_with("  b:"));
    }
}
