//! Run summaries: compact cache-hit reporting for campaign drivers.
//!
//! The campaign layer's two persistent tiers (trace files and memoized job
//! outputs) each expose raw counters; this module renders them as the short
//! per-run block the `stms-experiments` binary prints to stderr, so a user
//! can see at a glance whether a run was served from cache ("warm") or had
//! to simulate ("cold") — and CI can assert on the same lines.
//!
//! # Example
//!
//! ```
//! use stms_stats::summary::{CacheReport, RunSummary};
//!
//! let mut summary = RunSummary::new();
//! summary.push(
//!     CacheReport::new("traces", 13, 0)
//!         .with_detail("generated", 0)
//!         .with_detail("disk hits", 8),
//! );
//! let text = summary.render();
//! assert!(text.starts_with("run summary:"));
//! assert!(text.contains("traces: 13 hits, 0 misses (100.0% hit rate, generated 0, disk hits 8)"));
//! ```

use std::fmt::Write as _;

/// Counters of one cache tier, plus optional named detail counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheReport {
    /// Tier name, e.g. `"traces"` or `"results"`.
    pub name: String,
    /// Lookups served without doing the work.
    pub hits: u64,
    /// Lookups that had to do the work.
    pub misses: u64,
    /// Extra `(label, value)` counters appended in order, e.g. evictions.
    pub details: Vec<(String, u64)>,
}

impl CacheReport {
    /// A report with the two core counters.
    pub fn new(name: impl Into<String>, hits: u64, misses: u64) -> Self {
        CacheReport {
            name: name.into(),
            hits,
            misses,
            details: Vec::new(),
        }
    }

    /// Appends a named detail counter (builder style).
    pub fn with_detail(mut self, label: impl Into<String>, value: u64) -> Self {
        self.details.push((label.into(), value));
        self
    }

    /// Fraction of lookups served from cache, `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One summary line, e.g.
    /// `traces: 13 hits, 0 misses (100.0% hit rate, generated 0)`.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "{}: {} hits, {} misses ({:.1}% hit rate",
            self.name,
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        );
        for (label, value) in &self.details {
            let _ = write!(line, ", {label} {value}");
        }
        line.push(')');
        line
    }
}

/// Counters of one shard execution of a distributed campaign
/// (`--shard I/N`), rendered alongside the cache tiers in the stderr
/// `run summary:` block so CI logs show at a glance which slice of the grid
/// a process ran and whether it completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// 1-based shard index.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
    /// Distinct jobs of the whole campaign grid.
    pub jobs_total: u64,
    /// Distinct jobs this shard owns.
    pub jobs_owned: u64,
    /// Owned jobs that finished and were sealed into the manifest.
    pub jobs_sealed: u64,
    /// Owned jobs that failed (the difference is diagnosable from the
    /// accompanying error lines).
    pub jobs_failed: u64,
    /// Bytes of the sealed manifest written to the shard directory.
    pub manifest_bytes: u64,
}

impl ShardReport {
    /// Whether every owned job was sealed.
    pub fn is_complete(&self) -> bool {
        self.jobs_failed == 0 && self.jobs_sealed == self.jobs_owned
    }

    /// One summary line, e.g.
    /// `shard 1/2: 56 of 113 jobs owned, 56 sealed, 0 failed (manifest 12345 bytes)`.
    pub fn render_line(&self) -> String {
        format!(
            "shard {}/{}: {} of {} jobs owned, {} sealed, {} failed (manifest {} bytes)",
            self.index,
            self.count,
            self.jobs_owned,
            self.jobs_total,
            self.jobs_sealed,
            self.jobs_failed,
            self.manifest_bytes
        )
    }
}

/// What the cost-model scheduler predicted for one run — the `scheduling:`
/// summary line. Covers both the in-process LPT submission (predicted
/// total, calibration quality, predicted-vs-actual error) and a shard run's
/// fleet picture (per-shard predicted cost and spread). Optional fields
/// render only when present, so one type serves every run mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedReport {
    /// Jobs the prediction covered (submitted jobs in-process, owned jobs
    /// for a shard run).
    pub jobs: u64,
    /// Predicted cost of those jobs, in model nanoseconds.
    pub predicted_total_ns: u128,
    /// Submission order of the in-process pool (`"lpt"` or `"plan"`);
    /// `None` for shard runs.
    pub order: Option<String>,
    /// Timing records a `--calibrate-from` fit matched, when one ran.
    pub calibration_samples: Option<u64>,
    /// In-sample mean absolute error of that fit, in per-mille of observed
    /// time (123 renders as `12.3%`).
    pub calibration_error_milli: Option<u64>,
    /// Executed jobs whose measured run time was matched against a
    /// prediction.
    pub actual_jobs: u64,
    /// Mean absolute prediction error against those measurements, in
    /// per-mille of observed time.
    pub actual_error_milli: Option<u64>,
    /// Shard balance mode (`"cost"` or `"count"`); `None` in-process.
    pub balance: Option<String>,
    /// Predicted cost of this shard's slice.
    pub this_shard_ns: Option<u128>,
    /// Predicted cost of the heaviest shard (the fleet makespan estimate).
    pub max_shard_ns: Option<u128>,
    /// Mean predicted cost per shard.
    pub mean_shard_ns: Option<u128>,
}

/// Renders a per-mille value as a percentage with one decimal,
/// e.g. `123` → `12.3%`.
fn milli_percent(milli: u64) -> String {
    format!("{}.{}%", milli / 10, milli % 10)
}

impl SchedReport {
    /// One summary line, e.g.
    /// `scheduling: 24 jobs, predicted 1234 ns, lpt order, calibrated on 24 timings (4.2% error), actual error 12.3% (24 jobs)`
    /// or, for a shard run,
    /// `scheduling: 5 jobs, predicted 1234 ns, balance cost: this shard 1234 ns, max shard 2000 ns, spread 1.200x`.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "scheduling: {} jobs, predicted {} ns",
            self.jobs, self.predicted_total_ns
        );
        if let Some(order) = &self.order {
            let _ = write!(line, ", {order} order");
        }
        if let Some(samples) = self.calibration_samples {
            let error = milli_percent(self.calibration_error_milli.unwrap_or(0));
            let _ = write!(line, ", calibrated on {samples} timings ({error} error)");
        }
        if let Some(error) = self.actual_error_milli {
            let _ = write!(
                line,
                ", actual error {} ({} jobs)",
                milli_percent(error),
                self.actual_jobs
            );
        }
        if let Some(balance) = &self.balance {
            let this = self.this_shard_ns.unwrap_or(0);
            let max = self.max_shard_ns.unwrap_or(0);
            let mean = self.mean_shard_ns.unwrap_or(0);
            let spread_milli = (max * 1000).checked_div(mean).unwrap_or(0);
            let _ = write!(
                line,
                ", balance {balance}: this shard {this} ns, max shard {max} ns, \
                 spread {}.{:03}x",
                spread_milli / 1000,
                spread_milli % 1000
            );
        }
        line
    }
}

/// Counters of the out-of-core replay path (`--stream-traces`): how many
/// replays were served as chunked streams, how many chunks flowed through
/// them, and how many attempts had to fall back to regeneration because a
/// backing file failed mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Replays served chunk by chunk, without a materialized trace.
    pub replays: u64,
    /// Chunks delivered to those replays.
    pub chunks: u64,
    /// Streamed attempts abandoned mid-stream (evicted and retried).
    pub fallbacks: u64,
    /// Bytes read from disk by the replays that completed (compressed
    /// bytes under trace codec v3).
    pub disk_bytes: u64,
    /// Decoded bytes those same replays delivered to the simulator.
    pub decoded_bytes: u64,
}

impl StreamReport {
    /// One summary line, e.g.
    /// `streamed replay: 16 replays, 128 chunks, 0 fallbacks`.
    pub fn render_line(&self) -> String {
        format!(
            "streamed replay: {} replays, {} chunks, {} fallbacks",
            self.replays, self.chunks, self.fallbacks
        )
    }

    /// The on-disk codec's effective compression, e.g.
    /// `compression: 1234567 bytes on disk, 7200000 decoded (5.83x)`.
    /// `None` when no replay touched the disk tier (generator-only
    /// streaming has no on-disk bytes to compare).
    pub fn compression_line(&self) -> Option<String> {
        if self.disk_bytes == 0 {
            return None;
        }
        let ratio = self.decoded_bytes as f64 / self.disk_bytes as f64;
        Some(format!(
            "compression: {} bytes on disk, {} decoded ({ratio:.2}x)",
            self.disk_bytes, self.decoded_bytes
        ))
    }
}

/// Counters of the staged replay pipeline (`--replay-pipeline`): how far
/// the prefetching reader ran ahead, where the stages stalled, and the
/// high-water mark of decoded bytes buffered between them. Stalls are the
/// diagnostic payload: full stalls mean the consumer is the bottleneck,
/// empty stalls mean the disk/decode side is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Configured prefetch depth (chunks the reader may run ahead).
    pub depth: u64,
    /// Configured checksum/decode worker count.
    pub decode_threads: u64,
    /// Chunks the reader stages lifted off their sources.
    pub chunks_prefetched: u64,
    /// Times a reader stalled because every prefetch slot was full or the
    /// shared in-flight byte budget was exhausted.
    pub stalls_full: u64,
    /// Times a consumer stalled waiting for the next in-order chunk.
    pub stalls_empty: u64,
    /// High-water mark of decoded bytes in flight across the pipelines.
    pub peak_bytes_in_flight: u64,
}

impl PipelineReport {
    /// One summary line, e.g.
    /// `pipelined replay: depth 4, 2 decode threads, 128 chunks prefetched, 3 full stalls, 17 empty stalls, peak 2097152 bytes in flight`.
    pub fn render_line(&self) -> String {
        format!(
            "pipelined replay: depth {}, {} decode threads, {} chunks prefetched, \
             {} full stalls, {} empty stalls, peak {} bytes in flight",
            self.depth,
            self.decode_threads,
            self.chunks_prefetched,
            self.stalls_full,
            self.stalls_empty,
            self.peak_bytes_in_flight
        )
    }
}

/// Lifetime counters of one `stms-serve` daemon: how requests fared at the
/// admission gate and how much replay work in-flight dedup and the result
/// memo absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests received (all kinds, including pings and stats probes).
    pub requests: u64,
    /// Run requests admitted past the gate.
    pub accepted: u64,
    /// Run requests refused because the queue was full (or malformed).
    pub rejected: u64,
    /// Run requests abandoned mid-flight by their client.
    pub cancelled: u64,
    /// Figure frames streamed back to clients.
    pub figures_streamed: u64,
    /// Jobs actually executed (singleflight leaders).
    pub jobs_executed: u64,
    /// Jobs that joined another request's in-flight execution.
    pub jobs_shared: u64,
    /// Jobs served from the result memo without executing.
    pub jobs_cached: u64,
}

impl ServeReport {
    /// One summary line, e.g.
    /// `serve: 12 requests (9 accepted, 2 rejected, 1 cancelled), 31 figures streamed, jobs: 24 executed, 40 shared in-flight, 16 memoized`.
    pub fn render_line(&self) -> String {
        format!(
            "serve: {} requests ({} accepted, {} rejected, {} cancelled), \
             {} figures streamed, jobs: {} executed, {} shared in-flight, {} memoized",
            self.requests,
            self.accepted,
            self.rejected,
            self.cancelled,
            self.figures_streamed,
            self.jobs_executed,
            self.jobs_shared,
            self.jobs_cached
        )
    }
}

/// A rendered slice of the process-wide metrics registry: pre-formatted
/// `name: value` pairs, one per metric, in registry order.
///
/// The stats crate does not depend on the registry itself — callers pass
/// the lines (e.g. from `stms_obs::Snapshot::render_lines`) so the summary
/// stays a pure formatter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// `(metric name, rendered value)` pairs, in display order.
    pub lines: Vec<(String, String)>,
}

impl TelemetryReport {
    /// The block rendered under the summary: a `telemetry:` header plus
    /// one indented line per metric. Empty reports render as an empty
    /// string.
    pub fn render_block(&self) -> String {
        if self.lines.is_empty() {
            return String::new();
        }
        let mut out = String::from("  telemetry:\n");
        for (name, value) in &self.lines {
            out.push_str("    ");
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push('\n');
        }
        out
    }
}

/// An ordered collection of [`ServeReport`]s, [`ShardReport`]s,
/// [`StreamReport`]s, [`PipelineReport`]s, [`CacheReport`]s and an
/// optional [`TelemetryReport`] rendered as one block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSummary {
    serves: Vec<ServeReport>,
    shards: Vec<ShardReport>,
    scheds: Vec<SchedReport>,
    streams: Vec<StreamReport>,
    pipelines: Vec<PipelineReport>,
    reports: Vec<CacheReport>,
    telemetry: Option<TelemetryReport>,
}

impl RunSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one tier's report.
    pub fn push(&mut self, report: CacheReport) {
        self.reports.push(report);
    }

    /// Appends one daemon's serving report (rendered first: it frames the
    /// shard/stream/cache lines below it).
    pub fn push_serve(&mut self, report: ServeReport) {
        self.serves.push(report);
    }

    /// Appends one shard's report (rendered before the cache tiers).
    pub fn push_shard(&mut self, report: ShardReport) {
        self.shards.push(report);
    }

    /// Appends the cost-model scheduling report (rendered after the shard
    /// lines, before the stream lines).
    pub fn push_sched(&mut self, report: SchedReport) {
        self.scheds.push(report);
    }

    /// Appends the streamed-replay report (rendered between the shard and
    /// cache lines).
    pub fn push_stream(&mut self, report: StreamReport) {
        self.streams.push(report);
    }

    /// Appends the pipelined-replay report (rendered after the stream
    /// lines, before the cache tiers).
    pub fn push_pipeline(&mut self, report: PipelineReport) {
        self.pipelines.push(report);
    }

    /// Attaches the telemetry block (rendered last, after the cache
    /// tiers). A later call replaces an earlier one — the registry is
    /// process-wide, so there is only ever one current snapshot.
    pub fn push_telemetry(&mut self, report: TelemetryReport) {
        self.telemetry = Some(report);
    }

    /// Whether any report was added.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
            && self.serves.is_empty()
            && self.shards.is_empty()
            && self.scheds.is_empty()
            && self.streams.is_empty()
            && self.pipelines.is_empty()
            && self.telemetry.as_ref().is_none_or(|t| t.lines.is_empty())
    }

    /// The rendered block: a `run summary:` header plus one indented line
    /// per shard, stream and tier. Empty summaries render as an empty
    /// string.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::from("run summary:\n");
        for serve in &self.serves {
            out.push_str("  ");
            out.push_str(&serve.render_line());
            out.push('\n');
        }
        for shard in &self.shards {
            out.push_str("  ");
            out.push_str(&shard.render_line());
            out.push('\n');
        }
        for sched in &self.scheds {
            out.push_str("  ");
            out.push_str(&sched.render_line());
            out.push('\n');
        }
        for stream in &self.streams {
            out.push_str("  ");
            out.push_str(&stream.render_line());
            out.push('\n');
            if let Some(line) = stream.compression_line() {
                out.push_str("    ");
                out.push_str(&line);
                out.push('\n');
            }
        }
        for pipeline in &self.pipelines {
            out.push_str("  ");
            out.push_str(&pipeline.render_line());
            out.push('\n');
        }
        for report in &self.reports {
            out.push_str("  ");
            out.push_str(&report.render_line());
            out.push('\n');
        }
        if let Some(telemetry) = &self.telemetry {
            out.push_str(&telemetry.render_block());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_idle_and_full() {
        assert_eq!(CacheReport::new("t", 0, 0).hit_rate(), 0.0);
        assert_eq!(CacheReport::new("t", 5, 0).hit_rate(), 1.0);
        assert!((CacheReport::new("t", 1, 3).hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lines_carry_details_in_order() {
        let line = CacheReport::new("results", 10, 2)
            .with_detail("stores", 2)
            .with_detail("corrupt", 1)
            .render_line();
        assert_eq!(
            line,
            "results: 10 hits, 2 misses (83.3% hit rate, stores 2, corrupt 1)"
        );
    }

    #[test]
    fn shard_report_renders_all_counters() {
        let report = ShardReport {
            index: 1,
            count: 2,
            jobs_total: 113,
            jobs_owned: 56,
            jobs_sealed: 55,
            jobs_failed: 1,
            manifest_bytes: 9876,
        };
        assert!(!report.is_complete());
        assert_eq!(
            report.render_line(),
            "shard 1/2: 56 of 113 jobs owned, 55 sealed, 1 failed (manifest 9876 bytes)"
        );
        let complete = ShardReport {
            jobs_sealed: 56,
            jobs_failed: 0,
            ..report
        };
        assert!(complete.is_complete());
    }

    #[test]
    fn shard_reports_render_before_cache_tiers() {
        let mut summary = RunSummary::new();
        summary.push(CacheReport::new("traces", 1, 0));
        summary.push_shard(ShardReport {
            index: 2,
            count: 2,
            jobs_total: 10,
            jobs_owned: 5,
            jobs_sealed: 5,
            jobs_failed: 0,
            manifest_bytes: 1,
        });
        assert!(!summary.is_empty());
        let lines: Vec<String> = summary.render().lines().map(str::to_string).collect();
        assert_eq!(lines[0], "run summary:");
        assert!(lines[1].starts_with("  shard 2/2:"), "{}", lines[1]);
        assert!(lines[2].starts_with("  traces:"), "{}", lines[2]);
    }

    #[test]
    fn telemetry_block_renders_last_and_empty_report_stays_empty() {
        let mut summary = RunSummary::new();
        summary.push_telemetry(TelemetryReport::default());
        assert!(summary.is_empty(), "empty telemetry alone renders nothing");
        assert_eq!(summary.render(), "");

        summary.push(CacheReport::new("traces", 1, 0));
        summary.push_telemetry(TelemetryReport {
            lines: vec![
                ("job.run_ns".to_string(), "n=4 mean=1ms".to_string()),
                ("flight.executed".to_string(), "4".to_string()),
            ],
        });
        let lines: Vec<String> = summary.render().lines().map(str::to_string).collect();
        assert!(lines[1].starts_with("  traces:"), "{}", lines[1]);
        assert_eq!(lines[2], "  telemetry:");
        assert_eq!(lines[3], "    job.run_ns: n=4 mean=1ms");
        assert_eq!(lines[4], "    flight.executed: 4");
    }

    #[test]
    fn stream_report_renders_between_shards_and_caches() {
        let report = StreamReport {
            replays: 16,
            chunks: 128,
            fallbacks: 1,
            disk_bytes: 0,
            decoded_bytes: 0,
        };
        assert_eq!(
            report.render_line(),
            "streamed replay: 16 replays, 128 chunks, 1 fallbacks"
        );
        let mut summary = RunSummary::new();
        summary.push(CacheReport::new("traces", 1, 0));
        summary.push_stream(report);
        summary.push_shard(ShardReport {
            index: 1,
            count: 1,
            jobs_total: 2,
            jobs_owned: 2,
            jobs_sealed: 2,
            jobs_failed: 0,
            manifest_bytes: 9,
        });
        let lines: Vec<String> = summary.render().lines().map(str::to_string).collect();
        assert!(lines[1].starts_with("  shard"), "{}", lines[1]);
        assert!(lines[2].starts_with("  streamed replay:"), "{}", lines[2]);
        assert!(lines[3].starts_with("  traces:"), "{}", lines[3]);

        let mut only_stream = RunSummary::new();
        assert!(only_stream.is_empty());
        only_stream.push_stream(StreamReport::default());
        assert!(!only_stream.is_empty());
    }

    #[test]
    fn compression_line_renders_only_for_disk_backed_streams() {
        // Generator-only streaming has no on-disk bytes: no line at all.
        let memory_only = StreamReport {
            replays: 4,
            chunks: 32,
            fallbacks: 0,
            disk_bytes: 0,
            decoded_bytes: 480_000,
        };
        assert_eq!(memory_only.compression_line(), None);

        let warm = StreamReport {
            disk_bytes: 1_000,
            decoded_bytes: 2_500,
            ..memory_only
        };
        assert_eq!(
            warm.compression_line().as_deref(),
            Some("compression: 1000 bytes on disk, 2500 decoded (2.50x)")
        );

        // In the rendered block the ratio hangs under its stream line,
        // indented one level deeper.
        let mut summary = RunSummary::new();
        summary.push_stream(warm);
        let lines: Vec<String> = summary.render().lines().map(str::to_string).collect();
        assert!(lines[1].starts_with("  streamed replay:"), "{}", lines[1]);
        assert_eq!(
            lines[2],
            "    compression: 1000 bytes on disk, 2500 decoded (2.50x)"
        );
    }

    #[test]
    fn pipeline_report_renders_after_streams_before_caches() {
        let report = PipelineReport {
            depth: 4,
            decode_threads: 2,
            chunks_prefetched: 128,
            stalls_full: 3,
            stalls_empty: 17,
            peak_bytes_in_flight: 2_097_152,
        };
        assert_eq!(
            report.render_line(),
            "pipelined replay: depth 4, 2 decode threads, 128 chunks prefetched, \
             3 full stalls, 17 empty stalls, peak 2097152 bytes in flight"
        );
        let mut summary = RunSummary::new();
        summary.push(CacheReport::new("traces", 1, 0));
        summary.push_pipeline(report);
        summary.push_stream(StreamReport::default());
        let lines: Vec<String> = summary.render().lines().map(str::to_string).collect();
        assert!(lines[1].starts_with("  streamed replay:"), "{}", lines[1]);
        assert!(lines[2].starts_with("  pipelined replay:"), "{}", lines[2]);
        assert!(lines[3].starts_with("  traces:"), "{}", lines[3]);

        let mut only_pipeline = RunSummary::new();
        assert!(only_pipeline.is_empty());
        only_pipeline.push_pipeline(PipelineReport::default());
        assert!(!only_pipeline.is_empty());
    }

    #[test]
    fn sched_report_renders_in_process_and_shard_forms() {
        let in_process = SchedReport {
            jobs: 24,
            predicted_total_ns: 1234,
            order: Some("lpt".to_string()),
            calibration_samples: Some(24),
            calibration_error_milli: Some(42),
            actual_jobs: 24,
            actual_error_milli: Some(123),
            balance: None,
            this_shard_ns: None,
            max_shard_ns: None,
            mean_shard_ns: None,
        };
        assert_eq!(
            in_process.render_line(),
            "scheduling: 24 jobs, predicted 1234 ns, lpt order, \
             calibrated on 24 timings (4.2% error), actual error 12.3% (24 jobs)"
        );

        let shard = SchedReport {
            jobs: 5,
            predicted_total_ns: 1234,
            order: None,
            calibration_samples: None,
            calibration_error_milli: None,
            actual_jobs: 0,
            actual_error_milli: None,
            balance: Some("cost".to_string()),
            this_shard_ns: Some(1234),
            max_shard_ns: Some(2000),
            mean_shard_ns: Some(1600),
        };
        assert_eq!(
            shard.render_line(),
            "scheduling: 5 jobs, predicted 1234 ns, balance cost: \
             this shard 1234 ns, max shard 2000 ns, spread 1.250x"
        );

        // The minimal form: no calibration, no actuals, no shards.
        let bare = SchedReport {
            jobs: 2,
            predicted_total_ns: 10,
            order: Some("plan".to_string()),
            calibration_samples: None,
            calibration_error_milli: None,
            actual_jobs: 0,
            actual_error_milli: None,
            balance: None,
            this_shard_ns: None,
            max_shard_ns: None,
            mean_shard_ns: None,
        };
        assert_eq!(
            bare.render_line(),
            "scheduling: 2 jobs, predicted 10 ns, plan order"
        );
    }

    #[test]
    fn sched_reports_render_between_shards_and_streams() {
        let mut summary = RunSummary::new();
        assert!(summary.is_empty());
        summary.push(CacheReport::new("traces", 1, 0));
        summary.push_stream(StreamReport::default());
        summary.push_sched(SchedReport {
            jobs: 3,
            predicted_total_ns: 9,
            order: Some("lpt".to_string()),
            calibration_samples: None,
            calibration_error_milli: None,
            actual_jobs: 0,
            actual_error_milli: None,
            balance: None,
            this_shard_ns: None,
            max_shard_ns: None,
            mean_shard_ns: None,
        });
        summary.push_shard(ShardReport {
            index: 1,
            count: 1,
            jobs_total: 3,
            jobs_owned: 3,
            jobs_sealed: 3,
            jobs_failed: 0,
            manifest_bytes: 1,
        });
        let lines: Vec<String> = summary.render().lines().map(str::to_string).collect();
        assert!(lines[1].starts_with("  shard"), "{}", lines[1]);
        assert!(lines[2].starts_with("  scheduling:"), "{}", lines[2]);
        assert!(lines[3].starts_with("  streamed replay:"), "{}", lines[3]);

        let mut only_sched = RunSummary::new();
        only_sched.push_sched(SchedReport {
            jobs: 1,
            predicted_total_ns: 1,
            order: None,
            calibration_samples: None,
            calibration_error_milli: None,
            actual_jobs: 0,
            actual_error_milli: None,
            balance: None,
            this_shard_ns: None,
            max_shard_ns: None,
            mean_shard_ns: None,
        });
        assert!(!only_sched.is_empty());
    }

    #[test]
    fn summary_renders_header_and_indent() {
        let mut summary = RunSummary::new();
        assert!(summary.is_empty());
        assert_eq!(summary.render(), "");
        summary.push(CacheReport::new("a", 1, 0));
        summary.push(CacheReport::new("b", 0, 1));
        let text = summary.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "run summary:");
        assert!(lines[1].starts_with("  a:"));
        assert!(lines[2].starts_with("  b:"));
    }

    #[test]
    fn serve_report_renders_first() {
        let mut summary = RunSummary::new();
        summary.push(CacheReport::new("traces", 1, 0));
        summary.push_serve(ServeReport {
            requests: 12,
            accepted: 9,
            rejected: 2,
            cancelled: 1,
            figures_streamed: 31,
            jobs_executed: 24,
            jobs_shared: 40,
            jobs_cached: 16,
        });
        assert!(!summary.is_empty());
        let text = summary.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[1],
            "  serve: 12 requests (9 accepted, 2 rejected, 1 cancelled), \
             31 figures streamed, jobs: 24 executed, 40 shared in-flight, 16 memoized"
        );
        assert!(lines[2].starts_with("  traces:"));
    }
}
