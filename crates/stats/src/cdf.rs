//! Empirical distributions (CDFs and weighted CDFs).
//!
//! Used for the temporal-stream-length distribution of Figure 6 (left) and
//! for reporting sweeps.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over `u64` values, optionally
/// weighted.
///
/// # Example
///
/// ```
/// use stms_stats::Cdf;
///
/// let cdf = Cdf::from_values([1u64, 2, 2, 10]);
/// assert_eq!(cdf.fraction_at_or_below(2), 0.75);
/// assert_eq!(cdf.percentile(0.5), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted (value, cumulative weight) points.
    points: Vec<(u64, f64)>,
    total_weight: f64,
}

impl Cdf {
    /// Builds a CDF where every sample has weight one.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        Self::from_weighted(values.into_iter().map(|v| (v, 1.0)))
    }

    /// Builds a CDF from `(value, weight)` samples. The weight lets
    /// "blocks streamed" be attributed to the length of the stream they came
    /// from, as in Figure 6 (left).
    pub fn from_weighted<I: IntoIterator<Item = (u64, f64)>>(samples: I) -> Self {
        let mut raw: Vec<(u64, f64)> = samples.into_iter().collect();
        raw.sort_by_key(|&(v, _)| v);
        let mut points: Vec<(u64, f64)> = Vec::new();
        let mut cumulative = 0.0;
        for (value, weight) in raw {
            cumulative += weight;
            match points.last_mut() {
                Some(last) if last.0 == value => last.1 = cumulative,
                _ => points.push((value, cumulative)),
            }
        }
        Cdf {
            points,
            total_weight: cumulative,
        }
    }

    /// Whether the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of distinct values.
    pub fn distinct_values(&self) -> usize {
        self.points.len()
    }

    /// Total weight of all samples.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Fraction of the total weight at values `<= value` (0 if empty).
    pub fn fraction_at_or_below(&self, value: u64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        match self.points.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(idx) => self.points[idx].1 / self.total_weight,
            Err(0) => 0.0,
            Err(idx) => self.points[idx - 1].1 / self.total_weight,
        }
    }

    /// Smallest value at which the CDF reaches `q` (a fraction in `[0,1]`).
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!(!self.is_empty(), "percentile of an empty distribution");
        let target = q.clamp(0.0, 1.0) * self.total_weight;
        for &(value, cum) in &self.points {
            if cum >= target {
                return value;
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Samples the CDF at the given values, returning `(value, fraction)`
    /// pairs — convenient for plotting / table output.
    pub fn sample_at(&self, values: &[u64]) -> Vec<(u64, f64)> {
        values
            .iter()
            .map(|&v| (v, self.fraction_at_or_below(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unweighted_basics() {
        let cdf = Cdf::from_values([5u64, 1, 3, 3]);
        assert_eq!(cdf.distinct_values(), 3);
        assert_eq!(cdf.total_weight(), 4.0);
        assert_eq!(cdf.fraction_at_or_below(0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1), 0.25);
        assert_eq!(cdf.fraction_at_or_below(3), 0.75);
        assert_eq!(cdf.fraction_at_or_below(100), 1.0);
        assert_eq!(cdf.percentile(0.5), 3);
        assert_eq!(cdf.percentile(1.0), 5);
    }

    #[test]
    fn weighted_attribution() {
        // One stream of length 2 (2 blocks) and one of length 100 (100 blocks).
        let cdf = Cdf::from_weighted([(2u64, 2.0), (100, 100.0)]);
        assert!((cdf.fraction_at_or_below(2) - 2.0 / 102.0).abs() < 1e-9);
        assert_eq!(cdf.fraction_at_or_below(100), 1.0);
        assert_eq!(cdf.percentile(0.5), 100);
    }

    #[test]
    fn empty_distribution() {
        let cdf = Cdf::from_values(Vec::<u64>::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(10), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        let _ = Cdf::from_values(Vec::<u64>::new()).percentile(0.5);
    }

    #[test]
    fn sample_at_returns_pairs() {
        let cdf = Cdf::from_values([1u64, 10, 100]);
        let samples = cdf.sample_at(&[1, 10, 100]);
        assert_eq!(samples.len(), 3);
        assert!((samples[1].1 - 2.0 / 3.0).abs() < 1e-9);
    }

    proptest! {
        /// The CDF is monotonically non-decreasing and reaches 1.0 at the max.
        #[test]
        fn prop_monotone_and_complete(values in proptest::collection::vec(0u64..1000, 1..200)) {
            let cdf = Cdf::from_values(values.clone());
            let mut prev = 0.0;
            for v in 0..1000u64 {
                let f = cdf.fraction_at_or_below(v);
                prop_assert!(f + 1e-12 >= prev);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
                prev = f;
            }
            let max = *values.iter().max().unwrap();
            prop_assert!((cdf.fraction_at_or_below(max) - 1.0).abs() < 1e-9);
        }

        /// The p-quantile always has at least fraction p of weight at or below it.
        #[test]
        fn prop_percentile_consistent(values in proptest::collection::vec(0u64..500, 1..100), q in 0.0f64..1.0) {
            let cdf = Cdf::from_values(values);
            let p = cdf.percentile(q);
            prop_assert!(cdf.fraction_at_or_below(p) + 1e-9 >= q);
        }
    }
}
