//! Offline temporal-stream analysis of a miss-address sequence.
//!
//! Given the off-chip read-miss sequence of one core (captured with
//! `stms_prefetch::MissTraceCollector`), this module identifies the temporal
//! streams an idealized predictor would follow: whenever a miss address
//! recurs, the analyzer walks forward comparing the current miss sequence
//! with the sequence that followed the previous occurrence, and the length of
//! the matching run is the temporal-stream length. This is the analysis
//! behind Figure 6 (left), the cumulative distribution of streamed blocks
//! versus temporal-stream length.

use crate::cdf::Cdf;
use std::collections::HashMap;
use stms_types::LineAddr;

/// Result of analyzing one miss sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamAnalysis {
    /// Length (in blocks) of every temporal stream followed, in occurrence
    /// order. A "stream" is a maximal run of misses that repeats a previously
    /// observed miss sequence; its length counts the repeated successor
    /// blocks (the trigger itself is not counted).
    pub run_lengths: Vec<u64>,
    /// Total number of misses analyzed.
    pub total_misses: u64,
}

impl StreamAnalysis {
    /// Number of misses that were part of some repeated stream (the blocks an
    /// idealized temporal prefetcher could cover).
    pub fn streamed_blocks(&self) -> u64 {
        self.run_lengths.iter().sum()
    }

    /// Upper bound on temporal-streaming coverage implied by the analysis.
    pub fn max_coverage(&self) -> f64 {
        if self.total_misses == 0 {
            0.0
        } else {
            self.streamed_blocks() as f64 / self.total_misses as f64
        }
    }

    /// The weighted CDF of streamed blocks by stream length (Figure 6,
    /// left): each stream of length `L` contributes `L` blocks at length `L`.
    pub fn blocks_by_length_cdf(&self) -> Cdf {
        Cdf::from_weighted(self.run_lengths.iter().map(|&l| (l, l as f64)))
    }

    /// Merges another analysis (e.g. from another core) into this one.
    pub fn merge(&mut self, other: &StreamAnalysis) {
        self.run_lengths.extend_from_slice(&other.run_lengths);
        self.total_misses += other.total_misses;
    }
}

/// Analyzes the temporal streams in one core's miss sequence.
///
/// # Example
///
/// ```
/// use stms_stats::analyze_streams;
/// use stms_types::LineAddr;
///
/// // The sequence A B C D recurs once: one stream of length 3 (B C D).
/// let misses: Vec<LineAddr> = [1u64, 2, 3, 4, 9, 1, 2, 3, 4]
///     .into_iter().map(LineAddr::new).collect();
/// let analysis = analyze_streams(&misses);
/// assert_eq!(analysis.run_lengths, vec![3]);
/// ```
pub fn analyze_streams(misses: &[LineAddr]) -> StreamAnalysis {
    let mut last_occurrence: HashMap<LineAddr, usize> = HashMap::new();
    let mut run_lengths = Vec::new();
    let mut i = 0usize;
    while i < misses.len() {
        let line = misses[i];
        let prior = last_occurrence.get(&line).copied();
        last_occurrence.insert(line, i);
        if let Some(j) = prior {
            // A recurrence: walk forward while the history repeats.
            let mut len = 0u64;
            let mut src = j + 1;
            let mut cur = i + 1;
            while cur < misses.len() && src < i && misses[cur] == misses[src] {
                last_occurrence.insert(misses[cur], cur);
                len += 1;
                src += 1;
                cur += 1;
            }
            if len > 0 {
                run_lengths.push(len);
                i = cur;
                continue;
            }
        }
        i += 1;
    }
    StreamAnalysis {
        run_lengths,
        total_misses: misses.len() as u64,
    }
}

/// Analyzes and merges the miss sequences of several cores.
pub fn analyze_streams_multi(per_core: &[Vec<LineAddr>]) -> StreamAnalysis {
    let mut total = StreamAnalysis::default();
    for seq in per_core {
        total.merge(&analyze_streams(seq));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[u64]) -> Vec<LineAddr> {
        v.iter().copied().map(LineAddr::new).collect()
    }

    #[test]
    fn no_repetition_means_no_streams() {
        let a = analyze_streams(&lines(&[1, 2, 3, 4, 5]));
        assert!(a.run_lengths.is_empty());
        assert_eq!(a.streamed_blocks(), 0);
        assert_eq!(a.max_coverage(), 0.0);
        assert_eq!(a.total_misses, 5);
    }

    #[test]
    fn single_recurrence_counts_successor_blocks() {
        let a = analyze_streams(&lines(&[1, 2, 3, 4, 9, 1, 2, 3, 4]));
        assert_eq!(a.run_lengths, vec![3]);
        assert_eq!(a.streamed_blocks(), 3);
        assert!((a.max_coverage() - 3.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn diverging_recurrence_ends_the_run() {
        // Second occurrence diverges after B.
        let a = analyze_streams(&lines(&[1, 2, 3, 4, 1, 2, 99, 98]));
        assert_eq!(a.run_lengths, vec![1]);
    }

    #[test]
    fn repeated_iterations_produce_long_runs() {
        // Three iterations over the same 4 blocks: two full-length streams.
        let seq = [10u64, 11, 12, 13, 10, 11, 12, 13, 10, 11, 12, 13];
        let a = analyze_streams(&lines(&seq));
        assert_eq!(a.run_lengths, vec![3, 3]);
        assert!((a.max_coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn most_recent_occurrence_is_used() {
        // A appears with successors (2,3) then (7,8); the third occurrence
        // matches the most recent successors.
        let a = analyze_streams(&lines(&[1, 2, 3, 1, 7, 8, 1, 7, 8]));
        assert!(
            a.run_lengths.contains(&2),
            "run lengths {:?}",
            a.run_lengths
        );
    }

    #[test]
    fn cdf_weights_blocks_by_stream_length() {
        let analysis = StreamAnalysis {
            run_lengths: vec![2, 100],
            total_misses: 200,
        };
        let cdf = analysis.blocks_by_length_cdf();
        assert!((cdf.fraction_at_or_below(2) - 2.0 / 102.0).abs() < 1e-9);
        assert_eq!(cdf.fraction_at_or_below(100), 1.0);
    }

    #[test]
    fn multi_core_merge() {
        let per_core = vec![lines(&[1, 2, 3, 1, 2, 3]), lines(&[7, 8, 9, 10])];
        let a = analyze_streams_multi(&per_core);
        assert_eq!(a.total_misses, 10);
        assert_eq!(a.run_lengths, vec![2]);
    }

    #[test]
    fn empty_sequence() {
        let a = analyze_streams(&[]);
        assert_eq!(a.total_misses, 0);
        assert_eq!(a.max_coverage(), 0.0);
    }
}
