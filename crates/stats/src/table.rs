//! Plain-text and CSV rendering of experiment results.
//!
//! The experiment driver prints every figure and table of the paper as an
//! aligned text table (and optionally CSV), so results can be diffed and
//! checked into `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple column-aligned text table builder.
///
/// # Example
///
/// ```
/// use stms_stats::TextTable;
///
/// let mut t = TextTable::new(vec!["workload".into(), "coverage".into()]);
/// t.add_row(vec!["Web Apache".into(), "55.3%".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("Web Apache"));
/// assert!(rendered.contains("coverage"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The title line, if one was set.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// Rebuilds a table from its parts (the inverse of the accessors; used
    /// when deserializing exported results).
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from the header width.
    pub fn from_parts(headers: Vec<String>, rows: Vec<Vec<String>>, title: Option<String>) -> Self {
        let mut t = TextTable::new(headers);
        if let Some(title) = title {
            t = t.with_title(title);
        }
        for row in rows {
            t.add_row(row);
        }
        t
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders an aligned, human-readable table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.553` →
/// `"55.3%"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a ratio with two decimals, e.g. overhead bytes per useful byte.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long header".into()]).with_title("Demo");
        t.add_row(vec!["x".into(), "1".into()]);
        t.add_row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.row_count(), 2);
        // All data lines are equally long (aligned).
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[2].len().max(lines[1].len()));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.add_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn accessors_round_trip_through_from_parts() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]).with_title("T");
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.rows(), [["1", "2"]]);
        assert_eq!(t.title(), Some("T"));
        let rebuilt = TextTable::from_parts(
            t.headers().to_vec(),
            t.rows().to_vec(),
            t.title().map(String::from),
        );
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5534), "55.3%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(ratio(1.2345), "1.23");
    }
}
