//! The synthetic trace generator.
//!
//! Given a [`WorkloadSpec`], the generator produces a multi-core [`Trace`]
//! whose off-chip miss stream has the statistical structure that drives the
//! paper's results: recurring variable-length temporal streams, single-visit
//! scan traffic, cache-resident hot data, pointer-dependence (MLP) and
//! compute gaps.

use crate::dist::sample_gap;
use crate::pool::{SharedStream, StreamPool};
use crate::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stms_types::stream::{AccessChunk, TraceSource, TraceStreamError, DEFAULT_CHUNK_LEN};
use stms_types::{AccessKind, CoreId, LineAddr, MemAccess, Trace, TraceMeta};

/// Base of the region from which unique (never-reused) stream/noise lines are
/// allocated. Kept far away from the hot set (lines `0..hot_lines`).
const FRESH_BASE: u64 = 1 << 33;
/// Base of the region from which sequential scan runs are allocated.
const SCAN_BASE: u64 = 1 << 34;
/// Multiplier of the bijective scrambling applied to fresh line numbers so
/// that consecutive allocations are not at stride-predictable addresses.
const SCRAMBLE: u64 = 0x9E37_79B9_7F4A_7C15;
/// Fresh allocations are scrambled within a 2^32-line (256 GB) region, large
/// enough that they never collide for any realistic trace length.
const FRESH_MASK: u64 = (1 << 32) - 1;

/// What a core is currently doing.
#[derive(Debug, Clone)]
enum Activity {
    /// Nothing queued; the next access picks a new activity.
    Idle,
    /// Replaying a temporal stream (either its first occurrence or a
    /// recurrence) starting at `pos`.
    Stream { stream: SharedStream, pos: usize },
    /// Emitting a sequential cold scan run.
    Scan { next: LineAddr, remaining: u64 },
}

/// Cold accesses are emitted in bursts of this many references before the
/// core returns to its hot (cache-resident) phase; this is what lets
/// independent off-chip misses overlap inside one reorder-buffer window and
/// gives the workloads their memory-level parallelism (Table 2).
const COLD_BURST_LEN: u32 = 8;

/// Alternating hot/cold execution phases of one core.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Emitting cold (temporal-stream / scan) accesses.
    Cold { remaining: u32 },
    /// Emitting hot-set accesses interleaved with the bulk of the compute.
    Hot { remaining: u32 },
}

/// Deterministic synthetic trace generator.
///
/// The generator is a *resumable chunk iterator*: [`TraceGenerator::next_chunk`]
/// produces the trace one bounded chunk at a time (and the generator
/// implements [`stms_types::stream::TraceSource`], so it plugs straight into
/// the streaming simulator), while [`TraceGenerator::generate`] remains the
/// thin collect-everything convenience. Both paths emit the identical access
/// sequence for a given spec.
///
/// # Example
///
/// ```
/// use stms_workloads::{presets, TraceGenerator};
///
/// let spec = presets::web_apache().with_accesses(5_000);
/// let trace = TraceGenerator::new(&spec).generate();
/// assert_eq!(trace.len(), 5_000);
/// assert_eq!(trace.meta().workload, "Web Apache");
///
/// // The same trace, streamed chunk by chunk with bounded memory:
/// let mut chunked = TraceGenerator::new(&spec).with_chunk_len(512);
/// let mut seen = 0;
/// while let Some(chunk) = chunked.next_chunk() {
///     seen += chunk.len();
/// }
/// assert_eq!(seen, 5_000);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    meta: TraceMeta,
    rng: StdRng,
    /// One pool if `shared_pool`, otherwise one pool per core.
    pools: Vec<StreamPool>,
    activities: Vec<Activity>,
    phases: Vec<Phase>,
    fresh_counter: u64,
    scan_counter: u64,
    /// Accesses emitted so far (resumption point of the chunk iterator).
    emitted: u64,
    /// Upper bound on accesses per [`TraceGenerator::next_chunk`] call.
    chunk_len: usize,
    /// Reused storage for the most recent chunk.
    chunk_buf: Vec<MemAccess>,
}

impl TraceGenerator {
    /// Creates a generator for the given specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification fails [`WorkloadSpec::validate`].
    pub fn new(spec: &WorkloadSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid workload spec {}: {e}", spec.name);
        }
        let pool_count = if spec.shared_pool { 1 } else { spec.cores };
        TraceGenerator {
            spec: spec.clone(),
            meta: TraceMeta {
                workload: spec.name.clone(),
                cores: spec.cores,
                seed: spec.seed,
                footprint_lines: spec.approx_footprint_lines(),
            },
            rng: StdRng::seed_from_u64(spec.seed),
            pools: (0..pool_count)
                .map(|_| StreamPool::new(spec.max_pool_streams))
                .collect(),
            activities: vec![Activity::Idle; spec.cores],
            phases: vec![
                Phase::Cold {
                    remaining: COLD_BURST_LEN
                };
                spec.cores
            ],
            fresh_counter: 0,
            scan_counter: 0,
            emitted: 0,
            chunk_len: DEFAULT_CHUNK_LEN,
            chunk_buf: Vec::new(),
        }
    }

    /// Returns the generator with a different chunk size for
    /// [`TraceGenerator::next_chunk`] (chunking never changes the emitted
    /// access sequence).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn with_chunk_len(mut self, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be non-zero");
        self.chunk_len = chunk_len;
        self
    }

    /// Samples the length of a hot phase so that, averaged over many phases,
    /// the requested `hot_fraction` of accesses target the hot set.
    fn sample_hot_phase_len(&mut self) -> u32 {
        let h = self.spec.hot_fraction;
        if h <= 0.0 {
            return 0;
        }
        let mean = (COLD_BURST_LEN as f64 * h / (1.0 - h).max(1e-6)).max(1.0);
        // Uniform in [0.5*mean, 1.5*mean] keeps the mean while adding jitter.
        let lo = (mean * 0.5).max(1.0) as u32;
        let hi = (mean * 1.5).ceil() as u32;
        self.rng.gen_range(lo..=hi.max(lo + 1))
    }

    fn pool_index(&self, core: CoreId) -> usize {
        if self.spec.shared_pool {
            0
        } else {
            core.index()
        }
    }

    /// Generates the trace with the spec's default length — a thin collect
    /// over [`TraceGenerator::next_chunk`].
    pub fn generate(mut self) -> Trace {
        let mut trace = Trace::new(self.meta.clone());
        while let Some(chunk) = self.next_chunk() {
            trace.extend(chunk.iter().copied());
        }
        trace
    }

    /// Produces the next chunk of at most `chunk_len` accesses, or `None`
    /// once the spec's access count has been emitted. The returned slice is
    /// valid until the next call; chunk boundaries never affect the access
    /// sequence.
    pub fn next_chunk(&mut self) -> Option<&[MemAccess]> {
        let total = self.spec.accesses as u64;
        if self.emitted >= total {
            return None;
        }
        let count = (total - self.emitted).min(self.chunk_len as u64) as usize;
        self.chunk_buf.clear();
        self.chunk_buf.reserve(count);
        for _ in 0..count {
            let core = CoreId::new((self.emitted % self.spec.cores as u64) as u16);
            self.emitted += 1;
            let access = self.next_access(core);
            self.chunk_buf.push(access);
        }
        Some(&self.chunk_buf)
    }

    /// Allocates a fresh, never-before-used line at a scrambled address.
    fn fresh_line(&mut self) -> LineAddr {
        let scrambled = (self.fresh_counter.wrapping_mul(SCRAMBLE)) & FRESH_MASK;
        self.fresh_counter += 1;
        LineAddr::new(FRESH_BASE + scrambled)
    }

    /// Allocates the start of a fresh sequential scan region.
    fn fresh_scan_run(&mut self, run: u64) -> LineAddr {
        let start = SCAN_BASE + self.scan_counter;
        self.scan_counter += run + 16; // leave a gap between runs
        LineAddr::new(start)
    }

    /// Builds a brand-new temporal stream of fresh addresses and registers it
    /// in the pool used by `core`.
    fn new_stream(&mut self, core: CoreId) -> SharedStream {
        let len = self.spec.stream_len.sample(&mut self.rng).max(2) as usize;
        let mut addrs = Vec::with_capacity(len);
        for _ in 0..len {
            addrs.push(self.fresh_line());
        }
        let pool = self.pool_index(core);
        self.pools[pool].add(addrs)
    }

    /// Picks a new activity for a core that has finished its previous one.
    fn new_activity(&mut self, core: CoreId) -> Activity {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u < self.spec.p_noise {
            let run = self.spec.scan_run.max(1);
            if run == 1 {
                // A single cold access, emitted immediately as a 1-element scan.
                return Activity::Scan {
                    next: self.fresh_line(),
                    remaining: 1,
                };
            }
            return Activity::Scan {
                next: self.fresh_scan_run(run),
                remaining: run,
            };
        }
        let pool = self.pool_index(core);
        let recur =
            self.rng.gen_range(0.0..1.0) < self.spec.p_repeat && !self.pools[pool].is_empty();
        let stream = if recur {
            // Uniform selection over the retained pool: recurrences reach far
            // back in time, so most of them have aged out of the caches and
            // show up in the off-chip miss stream (where temporal streaming
            // can cover them).
            self.pools[pool]
                .pick(&mut self.rng)
                .expect("pool checked non-empty")
        } else {
            self.new_stream(core)
        };
        Activity::Stream { stream, pos: 0 }
    }

    /// Produces the next access for `core`.
    fn next_access(&mut self, core: CoreId) -> MemAccess {
        // Each core alternates between hot phases (cache-resident accesses
        // carrying the bulk of the compute, `mean_gap` instructions apart)
        // and cold bursts (temporal-stream / scan accesses back to back).
        // Hot accesses carry the same dependence behaviour as the rest of the
        // workload: pointer chasing through cache-resident structures (B-tree
        // upper levels, lock words) is what makes L1/L2 hit latency a
        // first-order bottleneck in commercial workloads (§5.2), while the
        // cold bursts give the off-chip miss stream its memory-level
        // parallelism (Table 2).
        let core_idx = core.index();
        match self.phases[core_idx] {
            Phase::Hot { remaining } => {
                self.phases[core_idx] = if remaining <= 1 {
                    Phase::Cold {
                        remaining: COLD_BURST_LEN,
                    }
                } else {
                    Phase::Hot {
                        remaining: remaining - 1,
                    }
                };
                let line = LineAddr::new(self.rng.gen_range(0..self.spec.hot_lines.max(1)));
                let dependent = self.rng.gen_range(0.0..1.0) < self.spec.p_dependent;
                return self.finish_access(core, line, dependent, self.spec.mean_gap);
            }
            Phase::Cold { remaining } => {
                self.phases[core_idx] = if remaining <= 1 {
                    let hot_len = self.sample_hot_phase_len();
                    if hot_len == 0 {
                        Phase::Cold {
                            remaining: COLD_BURST_LEN,
                        }
                    } else {
                        Phase::Hot { remaining: hot_len }
                    }
                } else {
                    Phase::Cold {
                        remaining: remaining - 1,
                    }
                };
            }
        }
        // Take the activity out to appease the borrow checker.
        let mut activity = std::mem::replace(&mut self.activities[core_idx], Activity::Idle);
        if matches!(activity, Activity::Idle) {
            activity = self.new_activity(core);
        }
        let (line, next_activity) = match activity {
            Activity::Idle => unreachable!("idle replaced above"),
            Activity::Stream { stream, pos } => {
                let line = stream[pos];
                let diverge = self.rng.gen_range(0.0..1.0) < self.spec.p_divergence;
                let next_pos = pos + 1;
                let next = if diverge || next_pos >= stream.len() {
                    Activity::Idle
                } else {
                    Activity::Stream {
                        stream,
                        pos: next_pos,
                    }
                };
                (line, next)
            }
            Activity::Scan { next, remaining } => {
                let line = next;
                let next_activity = if remaining <= 1 {
                    Activity::Idle
                } else {
                    Activity::Scan {
                        next: next.next(),
                        remaining: remaining - 1,
                    }
                };
                (line, next_activity)
            }
        };
        self.activities[core_idx] = next_activity;
        let dependent = self.rng.gen_range(0.0..1.0) < self.spec.p_dependent;
        // Cold (stream/scan) accesses arrive in bursts with little compute in
        // between, so that independent misses can overlap inside one ROB
        // window.
        let burst_gap = self.spec.mean_gap.min(4);
        self.finish_access(core, line, dependent, burst_gap)
    }

    fn finish_access(
        &mut self,
        core: CoreId,
        line: LineAddr,
        dependent: bool,
        gap_mean: u32,
    ) -> MemAccess {
        let gap = sample_gap(&mut self.rng, gap_mean);
        let kind = if self.rng.gen_range(0.0..1.0) < self.spec.p_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        MemAccess {
            core,
            line,
            kind,
            compute_gap: gap,
            dependent,
        }
    }
}

// The generator is itself a streaming trace source, so the simulator can
// replay a workload that is never materialized (out-of-core scale): the
// resident state is one chunk plus the pool of retained temporal streams.
impl TraceSource for TraceGenerator {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn total_accesses(&self) -> u64 {
        self.spec.accesses as u64
    }

    fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
        let first_index = self.emitted;
        Ok(
            TraceGenerator::next_chunk(self).map(|accesses| AccessChunk {
                accesses,
                first_index,
            }),
        )
    }
}

/// Convenience function: generates the trace for a spec.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    TraceGenerator::new(spec).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::LengthDist;
    use crate::spec::WorkloadClass;
    use std::collections::HashMap;

    fn test_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "gen-test".into(),
            class: WorkloadClass::Web,
            cores: 4,
            accesses: 40_000,
            p_repeat: 0.6,
            stream_len: LengthDist::Pareto {
                min: 4,
                max: 200,
                alpha: 1.2,
            },
            max_pool_streams: 200,
            shared_pool: true,
            p_noise: 0.1,
            scan_run: 1,
            hot_fraction: 0.3,
            hot_lines: 256,
            p_dependent: 0.6,
            mean_gap: 8,
            p_divergence: 0.01,
            p_write: 0.1,
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_length_and_meta() {
        let spec = test_spec();
        let t = generate(&spec);
        assert_eq!(t.len(), 40_000);
        assert_eq!(t.meta().workload, "gen-test");
        assert_eq!(t.meta().cores, 4);
        assert_eq!(t.meta().seed, 42);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = test_spec();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        let c = generate(&spec.clone().with_seed(43));
        assert_ne!(a, c);
    }

    #[test]
    fn all_cores_emit_accesses() {
        let t = generate(&test_spec());
        for core in 0..4u16 {
            assert!(
                !t.per_core(CoreId::new(core)).is_empty(),
                "core {core} emitted no accesses"
            );
        }
    }

    #[test]
    fn hot_fraction_produces_hot_accesses() {
        let spec = test_spec();
        let t = generate(&spec);
        let hot = t.iter().filter(|a| a.line.raw() < spec.hot_lines).count();
        let frac = hot as f64 / t.len() as f64;
        assert!(
            (frac - spec.hot_fraction).abs() < 0.05,
            "hot access fraction {frac} should be near {}",
            spec.hot_fraction
        );
    }

    #[test]
    fn repetition_exists_for_repeating_workload() {
        let t = generate(&test_spec());
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for a in t.iter().filter(|a| a.line.raw() >= FRESH_BASE) {
            *counts.entry(a.line.raw()).or_default() += 1;
        }
        let repeated = counts.values().filter(|&&c| c >= 2).count();
        let frac = repeated as f64 / counts.len().max(1) as f64;
        assert!(
            frac > 0.3,
            "a repeating workload should revisit lines, got {frac}"
        );
    }

    #[test]
    fn zero_repeat_workload_has_no_stream_repetition() {
        let mut spec = test_spec();
        spec.p_repeat = 0.0;
        spec.p_divergence = 0.0;
        let t = generate(&spec);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for a in t.iter().filter(|a| a.line.raw() >= FRESH_BASE) {
            *counts.entry(a.line.raw()).or_default() += 1;
        }
        let repeated = counts.values().filter(|&&c| c >= 2).count();
        let frac = repeated as f64 / counts.len().max(1) as f64;
        assert!(
            frac < 0.02,
            "non-repeating workload revisits {frac} of lines"
        );
    }

    #[test]
    fn write_fraction_roughly_matches() {
        let t = generate(&test_spec());
        let writes = t.iter().filter(|a| a.kind == AccessKind::Write).count();
        let frac = writes as f64 / t.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn dependence_fraction_roughly_matches() {
        let spec = test_spec();
        let t = generate(&spec);
        // Only non-hot accesses carry the dependence flag.
        let cold: Vec<_> = t.iter().filter(|a| a.line.raw() >= FRESH_BASE).collect();
        let dep = cold.iter().filter(|a| a.dependent).count();
        let frac = dep as f64 / cold.len() as f64;
        assert!(
            (frac - spec.p_dependent).abs() < 0.07,
            "dependent fraction {frac}"
        );
    }

    #[test]
    fn scan_runs_are_sequential() {
        let mut spec = test_spec();
        spec.p_noise = 1.0;
        spec.scan_run = 32;
        spec.hot_fraction = 0.0;
        spec.accesses = 1000;
        spec.cores = 1;
        let t = generate(&spec);
        // Consecutive accesses within a run differ by exactly one line.
        let unit_steps = t
            .accesses()
            .windows(2)
            .filter(|w| w[1].line.raw() == w[0].line.raw() + 1)
            .count();
        assert!(
            unit_steps > 800,
            "scan workload should be mostly sequential, got {unit_steps}"
        );
    }

    #[test]
    fn fresh_lines_do_not_collide_with_hot_or_scan_regions() {
        let mut g = TraceGenerator::new(&test_spec());
        for _ in 0..10_000 {
            let l = g.fresh_line().raw();
            assert!((FRESH_BASE..SCAN_BASE).contains(&l));
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn invalid_spec_panics() {
        let mut spec = test_spec();
        spec.p_repeat = 2.0;
        let _ = TraceGenerator::new(&spec);
    }

    #[test]
    fn chunked_generation_is_identical_to_collected_generation() {
        let spec = test_spec().with_accesses(10_000);
        let whole = generate(&spec);
        for chunk_len in [1usize, 7, 1024, 10_000, 1 << 20] {
            let mut gen = TraceGenerator::new(&spec).with_chunk_len(chunk_len);
            let mut streamed = Vec::new();
            let mut max_chunk = 0;
            while let Some(chunk) = gen.next_chunk() {
                max_chunk = max_chunk.max(chunk.len());
                streamed.extend_from_slice(chunk);
            }
            assert_eq!(streamed, whole.accesses(), "chunk_len {chunk_len}");
            assert!(max_chunk <= chunk_len);
            assert!(gen.next_chunk().is_none(), "exhausted generators stay done");
        }
    }

    #[test]
    fn generator_is_a_trace_source_with_exact_totals() {
        let spec = test_spec().with_accesses(5_000);
        let mut gen = TraceGenerator::new(&spec).with_chunk_len(777);
        assert_eq!(TraceSource::total_accesses(&gen), 5_000);
        assert_eq!(TraceSource::meta(&gen).workload, "gen-test");
        assert_eq!(TraceSource::meta(&gen).cores, 4);
        let mut next_index = 0u64;
        while let Some(chunk) = TraceSource::next_chunk(&mut gen).unwrap() {
            assert_eq!(chunk.first_index, next_index);
            next_index += chunk.accesses.len() as u64;
        }
        assert_eq!(next_index, 5_000);
        let collected =
            stms_types::stream::collect_trace(&mut TraceGenerator::new(&spec).with_chunk_len(777))
                .expect("generator sources cannot fail");
        assert_eq!(collected, generate(&spec));
    }
}
