//! Synthetic workload (trace) generators for the STMS reproduction.
//!
//! The paper evaluates STMS on commercial server workloads (TPC-C on Oracle
//! and DB2, TPC-H on DB2, SPECweb99 on Apache and Zeus) and scientific codes
//! (em3d, moldyn, ocean) running under FLEXUS full-system simulation. Those
//! applications and traces are not redistributable, so this crate generates
//! synthetic multi-core access traces whose *miss-stream statistics* match
//! what the paper reports for each workload:
//!
//! * recurring, variable-length **temporal streams** (power-law length
//!   distribution for commercial workloads, one long iteration stream for
//!   scientific codes) — the property temporal memory streaming exploits;
//! * single-visit **scan** traffic (dominant in DSS) and cold noise;
//! * a cache-resident **hot set** controlling memory-boundedness;
//! * pointer **dependence** controlling memory-level parallelism (Table 2);
//! * compute gaps and writes.
//!
//! See [`presets`] for the per-workload calibrations and
//! [`TraceGenerator`] for the generation model.
//!
//! # Example
//!
//! ```
//! use stms_workloads::{presets, generate};
//!
//! let spec = presets::oltp_db2().with_accesses(10_000);
//! let trace = generate(&spec);
//! assert_eq!(trace.len(), 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod generator;
pub mod pool;
pub mod presets;
pub mod spec;

pub use dist::LengthDist;
pub use generator::{generate, TraceGenerator};
pub use pool::{SharedStream, StreamPool};
pub use spec::{WorkloadClass, WorkloadSpec};
