//! The shared pool of previously-emitted temporal streams.
//!
//! The generator records every newly-created stream here; recurrences are
//! produced by drawing streams back out of the pool. Bounding the pool's
//! capacity bounds the *reuse distance* of the synthetic workload, which is
//! what the history-buffer-size sweep of Figure 5 (left) measures.

use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;
use stms_types::LineAddr;

/// A temporal stream: a fixed sequence of cache-line addresses that recurs
/// over the course of the synthetic program's execution.
pub type SharedStream = Arc<Vec<LineAddr>>;

/// A bounded FIFO pool of temporal streams shared by all cores.
///
/// # Example
///
/// ```
/// use stms_workloads::StreamPool;
/// use stms_types::LineAddr;
/// use rand::SeedableRng;
///
/// let mut pool = StreamPool::new(2);
/// pool.add(vec![LineAddr::new(1), LineAddr::new(2)]);
/// pool.add(vec![LineAddr::new(3)]);
/// pool.add(vec![LineAddr::new(4)]); // evicts the oldest stream
/// assert_eq!(pool.len(), 2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert!(pool.pick(&mut rng).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct StreamPool {
    streams: VecDeque<SharedStream>,
    capacity: usize,
    total_blocks: u64,
}

impl StreamPool {
    /// Creates a pool retaining at most `capacity` streams.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stream pool capacity must be non-zero");
        StreamPool {
            streams: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_blocks: 0,
        }
    }

    /// Number of streams currently retained.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the pool holds no streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Total number of blocks across retained streams.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Adds a newly-created stream, evicting the oldest stream if the pool is
    /// full. Returns a shared handle to the added stream.
    pub fn add(&mut self, stream: Vec<LineAddr>) -> SharedStream {
        let shared: SharedStream = Arc::new(stream);
        self.total_blocks += shared.len() as u64;
        if self.streams.len() >= self.capacity {
            if let Some(old) = self.streams.pop_front() {
                self.total_blocks -= old.len() as u64;
            }
        }
        self.streams.push_back(Arc::clone(&shared));
        shared
    }

    /// Draws a uniformly random stream from the pool, if any.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SharedStream> {
        if self.streams.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.streams.len());
        Some(Arc::clone(&self.streams[idx]))
    }

    /// Draws a random stream biased towards recently-added streams (smaller
    /// reuse distances), which commercial workloads exhibit for their hottest
    /// data structures.
    pub fn pick_recent_biased<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SharedStream> {
        if self.streams.is_empty() {
            return None;
        }
        // Square the uniform variate: indices near the back (recent) are more
        // likely.
        let u: f64 = rng.gen_range(0.0..1.0);
        let biased = 1.0 - u * u;
        let idx = ((biased * self.streams.len() as f64) as usize).min(self.streams.len() - 1);
        Some(Arc::clone(&self.streams[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lines(v: &[u64]) -> Vec<LineAddr> {
        v.iter().copied().map(LineAddr::new).collect()
    }

    #[test]
    fn add_and_pick() {
        let mut pool = StreamPool::new(4);
        assert!(pool.is_empty());
        pool.add(lines(&[1, 2, 3]));
        pool.add(lines(&[4, 5]));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.total_blocks(), 5);
        let mut rng = StdRng::seed_from_u64(7);
        let s = pool.pick(&mut rng).unwrap();
        assert!(!s.is_empty());
    }

    #[test]
    fn pick_from_empty_pool_is_none() {
        let pool = StreamPool::new(4);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(pool.pick(&mut rng).is_none());
        assert!(pool.pick_recent_biased(&mut rng).is_none());
    }

    #[test]
    fn capacity_bounds_pool_and_block_count() {
        let mut pool = StreamPool::new(2);
        pool.add(lines(&[1, 2, 3, 4]));
        pool.add(lines(&[5, 6]));
        pool.add(lines(&[7]));
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.total_blocks(),
            3,
            "blocks of the evicted stream are not counted"
        );
    }

    #[test]
    fn recent_bias_prefers_newer_streams() {
        let mut pool = StreamPool::new(100);
        for i in 0..100u64 {
            pool.add(lines(&[i]));
        }
        let mut rng = StdRng::seed_from_u64(11);
        let mut newer = 0;
        for _ in 0..2000 {
            let s = pool.pick_recent_biased(&mut rng).unwrap();
            if s[0].raw() >= 50 {
                newer += 1;
            }
        }
        assert!(
            newer > 1200,
            "recent-biased picks should favour newer streams, got {newer}/2000"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = StreamPool::new(0);
    }
}
