//! Workload specifications: the tunable parameters of the synthetic trace
//! generators.

use crate::dist::LengthDist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four workload classes studied by the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Web serving (SPECweb99 on Apache / Zeus).
    Web,
    /// Online transaction processing (TPC-C on Oracle / DB2).
    Oltp,
    /// Decision support (TPC-H on DB2).
    Dss,
    /// Scientific computing (em3d, moldyn, ocean).
    Sci,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadClass::Web => "Web",
            WorkloadClass::Oltp => "OLTP",
            WorkloadClass::Dss => "DSS",
            WorkloadClass::Sci => "Sci",
        };
        f.write_str(s)
    }
}

/// Parameters of the synthetic workload generator.
///
/// The generator models program execution as an interleaving, per core, of:
///
/// * **temporal-stream activity** — replaying either a brand-new stream of
///   fresh addresses (first occurrence) or a stream drawn from the shared
///   pool of previously-emitted streams (a recurrence, which a temporal
///   prefetcher can cover);
/// * **noise / scan activity** — cold accesses visited only once (optionally
///   as sequential runs that the baseline stride prefetcher covers);
/// * **hot-set accesses** — references to a small, cache-resident footprint
///   that produce L1/L2 hits and dilute memory-boundedness.
///
/// The parameters are calibrated per named workload (see
/// [`crate::presets`]) so that the resulting miss streams reproduce the
/// statistics the paper reports: temporal-stream length distribution
/// (Fig. 6 left), memory-level parallelism (Table 2), idealized coverage
/// (Fig. 4 left) and memory-boundedness / speedup potential (Fig. 4 right).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name, e.g. `"OLTP Oracle"`.
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Number of cores emitting accesses.
    pub cores: usize,
    /// Default trace length in accesses.
    pub accesses: usize,
    /// Probability that a new activity replays a stream from the pool rather
    /// than creating a new one.
    pub p_repeat: f64,
    /// Distribution of temporal-stream lengths in blocks.
    pub stream_len: LengthDist,
    /// Maximum number of streams retained in the shared pool (bounds the
    /// meta-data reuse distance).
    pub max_pool_streams: usize,
    /// Whether all cores draw recurrences from one shared stream pool
    /// (commercial workloads, where cores serve similar requests over shared
    /// data) or each core owns a private pool (scientific workloads, where
    /// cores iterate over disjoint partitions).
    pub shared_pool: bool,
    /// Probability that a new activity is a one-off cold access (or scan run)
    /// instead of any stream activity.
    pub p_noise: f64,
    /// Length of cold scan runs; `1` produces isolated cold accesses, larger
    /// values produce sequential runs that the stride prefetcher captures.
    pub scan_run: u64,
    /// Fraction of accesses directed at the hot (cache-resident) set.
    pub hot_fraction: f64,
    /// Number of distinct hot lines.
    pub hot_lines: u64,
    /// Probability that an access is data-dependent on the core's previous
    /// off-chip miss (controls MLP, Table 2).
    pub p_dependent: f64,
    /// Mean number of non-memory instructions between accesses.
    pub mean_gap: u32,
    /// Per-block probability that a stream replay diverges (ends early).
    pub p_divergence: f64,
    /// Fraction of accesses that are writes.
    pub p_write: f64,
    /// Default random seed.
    pub seed: u64,
}

// The campaign trace store keys cached traces by `WorkloadSpec` identity, so
// the spec must be usable as a hash-map key. Float fields are compared (via
// the derived `PartialEq`) and hashed by bit pattern — normalized with
// `+ 0.0` first so that `-0.0` (which `==` considers equal to `0.0`) hashes
// identically and the Hash/Eq contract holds. Two specs alias a cache entry
// exactly when every generator parameter is numerically identical, which is
// the property that makes the cached trace a faithful stand-in for
// regeneration.
impl Eq for WorkloadSpec {}

fn hash_f64<H: std::hash::Hasher>(value: f64, state: &mut H) {
    use std::hash::Hash as _;
    (value + 0.0).to_bits().hash(state);
}

impl std::hash::Hash for WorkloadSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let WorkloadSpec {
            name,
            class,
            cores,
            accesses,
            p_repeat,
            stream_len,
            max_pool_streams,
            shared_pool,
            p_noise,
            scan_run,
            hot_fraction,
            hot_lines,
            p_dependent,
            mean_gap,
            p_divergence,
            p_write,
            seed,
        } = self;
        name.hash(state);
        class.hash(state);
        cores.hash(state);
        accesses.hash(state);
        hash_f64(*p_repeat, state);
        stream_len.hash(state);
        max_pool_streams.hash(state);
        shared_pool.hash(state);
        hash_f64(*p_noise, state);
        scan_run.hash(state);
        hash_f64(*hot_fraction, state);
        hot_lines.hash(state);
        hash_f64(*p_dependent, state);
        mean_gap.hash(state);
        hash_f64(*p_divergence, state);
        hash_f64(*p_write, state);
        seed.hash(state);
    }
}

// The stable counterpart of the Hash impl above, used to key *on-disk*
// cache entries: `Hash` output varies across builds, a fingerprint never
// does. The exhaustive destructuring keeps the two impls honest — adding a
// generator parameter breaks both until it is hashed here too.
impl stms_types::Fingerprintable for WorkloadSpec {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let WorkloadSpec {
            name,
            class,
            cores,
            accesses,
            p_repeat,
            stream_len,
            max_pool_streams,
            shared_pool,
            p_noise,
            scan_run,
            hot_fraction,
            hot_lines,
            p_dependent,
            mean_gap,
            p_divergence,
            p_write,
            seed,
        } = self;
        fp.write_str("WorkloadSpec/v1");
        fp.write_str(name);
        fp.write_u8(match class {
            WorkloadClass::Web => 0,
            WorkloadClass::Oltp => 1,
            WorkloadClass::Dss => 2,
            WorkloadClass::Sci => 3,
        });
        fp.write_usize(*cores);
        fp.write_usize(*accesses);
        fp.write_f64(*p_repeat);
        stream_len.fingerprint_into(fp);
        fp.write_usize(*max_pool_streams);
        fp.write_bool(*shared_pool);
        fp.write_f64(*p_noise);
        fp.write_u64(*scan_run);
        fp.write_f64(*hot_fraction);
        fp.write_u64(*hot_lines);
        fp.write_f64(*p_dependent);
        fp.write_u32(*mean_gap);
        fp.write_f64(*p_divergence);
        fp.write_f64(*p_write);
        fp.write_u64(*seed);
    }
}

impl WorkloadSpec {
    /// Approximate number of distinct lines the workload touches, used to
    /// size predictor structures in the experiments.
    pub fn approx_footprint_lines(&self) -> u64 {
        let stream_lines = self.max_pool_streams as f64 * self.stream_len.mean();
        let noise_lines = self.accesses as f64 * self.p_noise * 0.5;
        (stream_lines + noise_lines) as u64 + self.hot_lines
    }

    /// Returns a copy with a different trace length.
    pub fn with_accesses(mut self, accesses: usize) -> Self {
        self.accesses = accesses;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates that probabilities are in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("p_repeat", self.p_repeat),
            ("p_noise", self.p_noise),
            ("hot_fraction", self.hot_fraction),
            ("p_dependent", self.p_dependent),
            ("p_divergence", self.p_divergence),
            ("p_write", self.p_write),
        ];
        for (name, v) in probs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.cores == 0 {
            return Err("cores must be non-zero".into());
        }
        if self.max_pool_streams == 0 {
            return Err("max_pool_streams must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            class: WorkloadClass::Web,
            cores: 4,
            accesses: 1000,
            p_repeat: 0.5,
            stream_len: LengthDist::Fixed(10),
            max_pool_streams: 100,
            shared_pool: true,
            p_noise: 0.1,
            scan_run: 1,
            hot_fraction: 0.3,
            hot_lines: 500,
            p_dependent: 0.5,
            mean_gap: 10,
            p_divergence: 0.01,
            p_write: 0.1,
            seed: 1,
        }
    }

    #[test]
    fn validate_accepts_sane_spec() {
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut s = spec();
        s.p_repeat = 1.5;
        assert!(s.validate().unwrap_err().contains("p_repeat"));
        let mut s = spec();
        s.hot_fraction = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_cores_or_pool() {
        let mut s = spec();
        s.cores = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.max_pool_streams = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn footprint_estimate_grows_with_pool() {
        let small = spec();
        let mut large = spec();
        large.max_pool_streams = 1000;
        assert!(large.approx_footprint_lines() > small.approx_footprint_lines());
    }

    #[test]
    fn builder_style_setters() {
        let s = spec().with_accesses(5000).with_seed(99);
        assert_eq!(s.accesses, 5000);
        assert_eq!(s.seed, 99);
    }

    #[test]
    fn spec_is_usable_as_a_hash_map_key() {
        use std::collections::HashMap;
        let mut map: HashMap<WorkloadSpec, u32> = HashMap::new();
        map.insert(spec(), 1);
        // Identical parameters hit the same entry...
        assert_eq!(map.get(&spec()), Some(&1));
        // ...while any parameter difference (trace length, seed, a float
        // knob) is a distinct key.
        assert!(!map.contains_key(&spec().with_accesses(2000)));
        assert!(!map.contains_key(&spec().with_seed(2)));
        let mut warped = spec();
        warped.p_repeat += 1e-9;
        assert!(!map.contains_key(&warped));
    }

    #[test]
    fn negative_zero_hashes_like_the_positive_zero_it_equals() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut pos = spec();
        pos.p_noise = 0.0;
        let mut neg = spec();
        neg.p_noise = -0.0;
        assert_eq!(pos, neg, "== treats the zeros as equal");
        let digest = |s: &WorkloadSpec| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&pos), digest(&neg), "so Hash must agree");
    }

    #[test]
    fn fingerprint_tracks_every_generator_parameter() {
        use stms_types::Fingerprintable as _;
        // Identical specs fingerprint identically…
        assert_eq!(spec().fingerprint(), spec().fingerprint());
        // …and any parameter difference is a different key.
        assert_ne!(
            spec().fingerprint(),
            spec().with_accesses(2000).fingerprint()
        );
        assert_ne!(spec().fingerprint(), spec().with_seed(2).fingerprint());
        let mut warped = spec();
        warped.p_repeat += 1e-9;
        assert_ne!(spec().fingerprint(), warped.fingerprint());
        let mut renamed = spec();
        renamed.name = "test2".into();
        assert_ne!(spec().fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn fingerprint_is_pinned_across_builds() {
        use stms_types::Fingerprintable as _;
        // The literal below is the contract with already-written cache
        // directories: if this test fails, the fingerprint layout changed
        // and the `WorkloadSpec/v1` domain tag must be bumped with it.
        assert_eq!(
            spec().fingerprint().to_hex(),
            "8769f30944145c01e8b771e8008e98de"
        );
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::Web.to_string(), "Web");
        assert_eq!(WorkloadClass::Oltp.to_string(), "OLTP");
        assert_eq!(WorkloadClass::Dss.to_string(), "DSS");
        assert_eq!(WorkloadClass::Sci.to_string(), "Sci");
    }
}
