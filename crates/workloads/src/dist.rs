//! Distributions used by the synthetic workload generators.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of temporal-stream lengths (in cache blocks).
///
/// Offline analyses cited by the paper (and its Figure 6) show that temporal
/// streams in commercial workloads vary from two to hundreds of blocks, with
/// about half of the streams shorter than ten blocks, while scientific codes
/// have a single iteration-length stream. Two shapes cover both cases:
///
/// * [`LengthDist::Pareto`] — a bounded power-law, parameterised by its
///   median and maximum, used for commercial workloads;
/// * [`LengthDist::Fixed`] — a constant length, used for the scientific
///   iteration streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Bounded Pareto (power-law) distribution over `[min, max]`.
    Pareto {
        /// Smallest possible stream length.
        min: u64,
        /// Largest possible stream length.
        max: u64,
        /// Tail exponent; larger values concentrate mass near `min`.
        alpha: f64,
    },
    /// All streams have exactly this length.
    Fixed(u64),
}

// Campaign trace stores key cached traces by the full generator
// configuration, so the distribution must be usable as a hash-map key. The
// float parameter is compared and hashed by bit pattern, normalized with
// `+ 0.0` so `-0.0` hashes like the `0.0` it equals: two distributions are
// "the same key" exactly when they were built from numerically identical
// constants (the presets never compute `alpha`, so `0.1 + 0.2`-style drift
// does not arise, and a NaN `alpha` would be a bug everywhere else first).
impl Eq for LengthDist {}

impl std::hash::Hash for LengthDist {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match *self {
            LengthDist::Pareto { min, max, alpha } => {
                0u8.hash(state);
                min.hash(state);
                max.hash(state);
                (alpha + 0.0).to_bits().hash(state);
            }
            LengthDist::Fixed(n) => {
                1u8.hash(state);
                n.hash(state);
            }
        }
    }
}

// The *stable* counterpart of the Hash impl above: same variant tags and
// -0.0 normalization, but over the build-independent `Fingerprinter` so the
// value can key on-disk cache files.
impl stms_types::Fingerprintable for LengthDist {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        match *self {
            LengthDist::Pareto { min, max, alpha } => {
                fp.write_u8(0);
                fp.write_u64(min);
                fp.write_u64(max);
                fp.write_f64(alpha);
            }
            LengthDist::Fixed(n) => {
                fp.write_u8(1);
                fp.write_u64(n);
            }
        }
    }
}

impl LengthDist {
    /// A bounded Pareto whose median is approximately `median`.
    ///
    /// With tail index `alpha`, the median of an (unbounded) Pareto with
    /// scale `min` is `min * 2^(1/alpha)`; this constructor solves for `min`.
    pub fn pareto_with_median(median: u64, max: u64, alpha: f64) -> Self {
        let min = ((median as f64) / 2f64.powf(1.0 / alpha)).max(2.0).round() as u64;
        LengthDist::Pareto {
            min,
            max: max.max(min + 1),
            alpha,
        }
    }

    /// Draws one stream length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LengthDist::Fixed(n) => n.max(1),
            LengthDist::Pareto { min, max, alpha } => {
                // Inverse-CDF sampling of a bounded Pareto.
                let (l, h) = (min as f64, max as f64);
                let u: f64 = rng.gen_range(0.0..1.0);
                let ha = h.powf(-alpha);
                let la = l.powf(-alpha);
                let x = (-(u * (la - ha) - la)).powf(-1.0 / alpha);
                (x.round() as u64).clamp(min, max)
            }
        }
    }

    /// Expected value of the distribution (approximate for the bounded
    /// Pareto), useful for sizing stream pools.
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDist::Fixed(n) => n as f64,
            LengthDist::Pareto { min, max, alpha } => {
                let (l, h) = (min as f64, max as f64);
                if (alpha - 1.0).abs() < 1e-9 {
                    (h / l).ln() * l
                } else {
                    let la = l.powf(alpha);
                    let num = alpha * la / (alpha - 1.0);
                    num * (l.powf(1.0 - alpha) - h.powf(1.0 - alpha)) / (1.0 - (l / h).powf(alpha))
                }
            }
        }
    }
}

/// Samples a compute gap (non-memory instructions between accesses) from a
/// geometric-like distribution with the given mean.
pub fn sample_gap<R: Rng + ?Sized>(rng: &mut R, mean: u32) -> u32 {
    if mean == 0 {
        return 0;
    }
    // A simple two-point mixture keeps the mean while providing variance:
    // mostly `mean`, occasionally a longer pause.
    let r: f64 = rng.gen_range(0.0..1.0);
    if r < 0.8 {
        rng.gen_range(0..=mean)
    } else {
        rng.gen_range(mean..=mean * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_returns_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LengthDist::Fixed(42);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42);
        }
        assert_eq!(d.mean(), 42.0);
        assert_eq!(LengthDist::Fixed(0).sample(&mut rng), 1);
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LengthDist::Pareto {
            min: 2,
            max: 500,
            alpha: 1.2,
        };
        for _ in 0..5000 {
            let x = d.sample(&mut rng);
            assert!((2..=500).contains(&x));
        }
    }

    #[test]
    fn pareto_median_is_approximately_requested() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LengthDist::pareto_with_median(10, 2000, 1.1);
        let mut samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!(
            (6..=16).contains(&median),
            "median {median} should be near 10 for {d:?}"
        );
        // The tail must produce some long streams.
        assert!(*samples.last().unwrap() > 200);
    }

    #[test]
    fn pareto_mean_is_positive_and_above_min() {
        let d = LengthDist::Pareto {
            min: 4,
            max: 1000,
            alpha: 1.3,
        };
        assert!(d.mean() > 4.0);
        assert!(d.mean() < 1000.0);
    }

    #[test]
    fn gap_sampling_stays_in_range_and_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean = 20u32;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| sample_gap(&mut rng, mean) as u64).sum();
        let avg = total as f64 / n as f64;
        assert!(avg > 8.0 && avg < 40.0, "avg gap {avg}");
        assert_eq!(sample_gap(&mut rng, 0), 0);
    }
}
