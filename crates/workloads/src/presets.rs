//! Per-workload generator presets.
//!
//! Each preset is calibrated so that the generated miss stream reproduces the
//! statistics the paper reports for the corresponding workload: idealized
//! temporal-streaming coverage (Fig. 4 left: 40–60% for Web/OLTP, ≤20% for
//! DSS, 80–99% for scientific codes), memory-level parallelism (Table 2),
//! temporal-stream length distribution (Fig. 6 left) and memory-boundedness
//! (which determines the speedup potential of Fig. 4 right).
//!
//! Footprints and stream lengths are scaled down by roughly an order of
//! magnitude relative to the paper's full-system workloads so that a single
//! experiment finishes in seconds; the experiment driver scales predictor
//! capacities by the same factor (see `DESIGN.md`).

use crate::dist::LengthDist;
use crate::spec::{WorkloadClass, WorkloadSpec};

/// Default trace length (accesses across all cores) for experiments.
pub const DEFAULT_ACCESSES: usize = 600_000;

fn base(name: &str, class: WorkloadClass) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        class,
        cores: 4,
        accesses: DEFAULT_ACCESSES,
        p_repeat: 0.6,
        stream_len: LengthDist::pareto_with_median(10, 2000, 1.1),
        max_pool_streams: 2500,
        shared_pool: true,
        p_noise: 0.1,
        scan_run: 1,
        hot_fraction: 0.4,
        hot_lines: 2000,
        p_dependent: 0.6,
        mean_gap: 10,
        p_divergence: 0.01,
        p_write: 0.1,
        seed: 0xC0FFEE,
    }
}

/// SPECweb99 on Apache (Table 1: Apache 2.0, 4K connections, FastCGI).
pub fn web_apache() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 0.92,
        stream_len: LengthDist::pareto_with_median(10, 1500, 1.1),
        max_pool_streams: 450,
        p_noise: 0.30,
        hot_fraction: 0.84,
        hot_lines: 1200,
        p_dependent: 0.60,
        mean_gap: 75,
        ..base("Web Apache", WorkloadClass::Web)
    }
}

/// SPECweb99 on Zeus (Table 1: Zeus v4.3, 4K connections, FastCGI).
pub fn web_zeus() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 0.92,
        stream_len: LengthDist::pareto_with_median(12, 2000, 1.1),
        max_pool_streams: 400,
        p_noise: 0.28,
        hot_fraction: 0.84,
        hot_lines: 1200,
        p_dependent: 0.60,
        mean_gap: 75,
        seed: 0xC0FFEE + 1,
        ..base("Web Zeus", WorkloadClass::Web)
    }
}

/// TPC-C on DB2 (Table 1: DB2 v8, 100 warehouses, 64 clients).
pub fn oltp_db2() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 0.90,
        stream_len: LengthDist::pareto_with_median(8, 1200, 1.15),
        max_pool_streams: 550,
        p_noise: 0.34,
        hot_fraction: 0.82,
        hot_lines: 1300,
        p_dependent: 0.80,
        mean_gap: 60,
        p_write: 0.12,
        seed: 0xC0FFEE + 2,
        ..base("OLTP DB2", WorkloadClass::Oltp)
    }
}

/// TPC-C on Oracle (Table 1: Oracle 10g, 100 warehouses, 16 clients).
///
/// Oracle's dominant bottlenecks are on-chip (L1/L2 hits and coherence), so
/// the hot fraction is high: coverage remains comparable to DB2 but the
/// speedup opportunity is small (§5.2).
pub fn oltp_oracle() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 0.90,
        stream_len: LengthDist::pareto_with_median(8, 1000, 1.15),
        max_pool_streams: 350,
        p_noise: 0.32,
        hot_fraction: 0.90,
        hot_lines: 1500,
        p_dependent: 0.80,
        mean_gap: 70,
        p_write: 0.12,
        seed: 0xC0FFEE + 3,
        ..base("OLTP Oracle", WorkloadClass::Oltp)
    }
}

/// TPC-H query 2 on DB2 (join-dominated): scan traffic visited once, little
/// temporal repetition.
pub fn dss_qry2() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 0.60,
        stream_len: LengthDist::pareto_with_median(6, 300, 1.3),
        max_pool_streams: 800,
        p_noise: 0.62,
        scan_run: 64,
        hot_fraction: 0.72,
        hot_lines: 1200,
        p_dependent: 0.52,
        mean_gap: 160,
        p_write: 0.05,
        seed: 0xC0FFEE + 4,
        ..base("DSS DB2 Qry2", WorkloadClass::Dss)
    }
}

/// TPC-H query 17 on DB2 (balanced scan-join).
pub fn dss_qry17() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 0.62,
        stream_len: LengthDist::pareto_with_median(6, 400, 1.3),
        max_pool_streams: 800,
        p_noise: 0.58,
        scan_run: 64,
        hot_fraction: 0.72,
        hot_lines: 1200,
        p_dependent: 0.52,
        mean_gap: 160,
        p_write: 0.05,
        seed: 0xC0FFEE + 5,
        ..base("DSS DB2", WorkloadClass::Dss)
    }
}

/// em3d (electromagnetic wave propagation): one long iteration stream,
/// strongly memory bound.
pub fn sci_em3d() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 1.0,
        stream_len: LengthDist::Fixed(10_000),
        max_pool_streams: 1,
        shared_pool: false,
        p_noise: 0.02,
        hot_fraction: 0.45,
        hot_lines: 500,
        p_dependent: 0.50,
        mean_gap: 120,
        p_divergence: 0.0,
        p_write: 0.05,
        seed: 0xC0FFEE + 6,
        ..base("Sci em3d", WorkloadClass::Sci)
    }
}

/// moldyn (molecular dynamics): iteration stream with purely dependent
/// (MLP ≈ 1.0) accesses but a large cache-resident working set.
pub fn sci_moldyn() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 1.0,
        stream_len: LengthDist::Fixed(4_500),
        max_pool_streams: 1,
        shared_pool: false,
        p_noise: 0.03,
        hot_fraction: 0.84,
        hot_lines: 1200,
        p_dependent: 0.98,
        mean_gap: 150,
        p_divergence: 0.0,
        p_write: 0.10,
        seed: 0xC0FFEE + 7,
        ..base("Sci moldyn", WorkloadClass::Sci)
    }
}

/// ocean (ocean current simulation): iteration stream of grid sweeps.
pub fn sci_ocean() -> WorkloadSpec {
    WorkloadSpec {
        p_repeat: 1.0,
        stream_len: LengthDist::Fixed(6_000),
        max_pool_streams: 1,
        shared_pool: false,
        p_noise: 0.05,
        hot_fraction: 0.75,
        hot_lines: 1200,
        p_dependent: 0.85,
        mean_gap: 200,
        p_divergence: 0.0,
        p_write: 0.15,
        seed: 0xC0FFEE + 8,
        ..base("Sci ocean", WorkloadClass::Sci)
    }
}

/// The eight workloads shown in the paper's figures (Figures 4, 5, 7, 9):
/// Apache, Zeus, OLTP DB2, OLTP Oracle, DSS DB2, em3d, moldyn, ocean.
pub fn paper_figure_suite() -> Vec<WorkloadSpec> {
    vec![
        web_apache(),
        web_zeus(),
        oltp_db2(),
        oltp_oracle(),
        dss_qry17(),
        sci_em3d(),
        sci_moldyn(),
        sci_ocean(),
    ]
}

/// The commercial workloads only (Web + OLTP + DSS), used by Figure 1 and
/// Figure 6 (left).
pub fn commercial_suite() -> Vec<WorkloadSpec> {
    vec![
        web_apache(),
        web_zeus(),
        oltp_db2(),
        oltp_oracle(),
        dss_qry17(),
    ]
}

/// Every preset defined by this crate (including both DSS queries of
/// Table 1).
pub fn all_presets() -> Vec<WorkloadSpec> {
    vec![
        web_apache(),
        web_zeus(),
        oltp_db2(),
        oltp_oracle(),
        dss_qry2(),
        dss_qry17(),
        sci_em3d(),
        sci_moldyn(),
        sci_ocean(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_valid() {
        for spec in all_presets() {
            assert!(spec.validate().is_ok(), "invalid preset {}", spec.name);
        }
    }

    #[test]
    fn preset_names_are_unique() {
        let names: Vec<String> = all_presets().into_iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn figure_suite_has_eight_workloads() {
        let suite = paper_figure_suite();
        assert_eq!(suite.len(), 8);
        assert_eq!(commercial_suite().len(), 5);
        assert_eq!(all_presets().len(), 9);
    }

    #[test]
    fn classes_are_assigned_correctly() {
        assert_eq!(web_apache().class, WorkloadClass::Web);
        assert_eq!(oltp_oracle().class, WorkloadClass::Oltp);
        assert_eq!(dss_qry2().class, WorkloadClass::Dss);
        assert_eq!(sci_ocean().class, WorkloadClass::Sci);
    }

    #[test]
    fn scientific_presets_use_single_iteration_stream() {
        for spec in [sci_em3d(), sci_moldyn(), sci_ocean()] {
            assert_eq!(spec.max_pool_streams, 1, "{}", spec.name);
            assert_eq!(spec.p_repeat, 1.0, "{}", spec.name);
            assert!(
                matches!(spec.stream_len, LengthDist::Fixed(_)),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn dss_is_scan_dominated() {
        let spec = dss_qry17();
        // DSS spends most of its cold accesses on single-visit scans and
        // repeats far less of its data than the Web/OLTP workloads.
        assert!(spec.p_noise >= 0.5);
        assert!(spec.scan_run > 1);
        assert!(spec.p_repeat < web_apache().p_repeat);
        assert!(spec.p_repeat < oltp_db2().p_repeat);
    }

    #[test]
    fn oracle_is_less_memory_bound_than_db2() {
        assert!(oltp_oracle().hot_fraction > oltp_db2().hot_fraction);
    }

    #[test]
    fn seeds_differ_across_presets() {
        let seeds: Vec<u64> = all_presets().into_iter().map(|s| s.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }
}
