//! Property tests for the `stms-serve` wire codec: arbitrary requests and
//! responses round-trip through framing, and truncated / oversized /
//! corrupted / garbage frames are rejected fail-closed (an error, never a
//! panic, never a silently wrong message).

use proptest::prelude::*;
use stms_types::wire::{
    open_frame, recv_request, recv_response, send_request, send_response, Request, RequestFormat,
    Response, ServeCounters, WireError, MAX_FRAME_LEN,
};

/// Arbitrary UTF-8 text (multi-byte codepoints, newlines, control chars)
/// built from raw u32 seeds: bodies carry rendered tables and whole JSON
/// documents, so anything must survive the trip.
fn text_from(seeds: &[u32]) -> String {
    seeds
        .iter()
        .filter_map(|&s| char::from_u32(s % 0x11_0000))
        .collect()
}

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u32>(), 0..64).prop_map(|seeds| text_from(&seeds))
}

fn arb_figures() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..12), 0..8)
        .prop_map(|ids| ids.iter().map(|id| text_from(id)).collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..4, arb_figures(), any::<bool>()).prop_map(|(variant, figures, json)| match variant {
        0 => Request::Ping,
        1 => Request::Stats,
        2 => Request::Shutdown,
        _ => Request::Run {
            figures,
            format: if json {
                RequestFormat::Json
            } else {
                RequestFormat::Text
            },
        },
    })
}

fn counters_from(v: &[u64]) -> ServeCounters {
    ServeCounters {
        requests: v[0],
        accepted: v[1],
        rejected: v[2],
        cancelled: v[3],
        figures_streamed: v[4],
        jobs_executed: v[5],
        jobs_shared: v[6],
        jobs_cached: v[7],
        traces_generated: v[8],
        stream_replays: v[9],
        stream_fallbacks: v[10],
        active_requests: v[11],
        queued_requests: v[12],
    }
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..8,
        any::<u32>(),
        any::<u32>(),
        arb_text(),
        arb_text(),
        proptest::collection::vec(any::<u64>(), 13),
    )
        .prop_map(|(variant, a, b, id, body, counters)| match variant {
            0 => Response::Pong,
            1 => Response::ShuttingDown,
            2 => Response::Figure { index: a, id, body },
            3 => Response::FigureError {
                index: a,
                id,
                message: body,
            },
            4 => Response::Document { body },
            5 => Response::Done {
                figures: a,
                failed: b,
            },
            6 => Response::Rejected { reason: body },
            _ => Response::Stats(counters_from(&counters)),
        })
}

proptest! {
    /// Any request round-trips bit-exactly through a framed stream, and a
    /// second message on the same stream is read independently.
    #[test]
    fn prop_request_roundtrip(a in arb_request(), b in arb_request()) {
        let mut buf = Vec::new();
        send_request(&mut buf, &a).unwrap();
        send_request(&mut buf, &b).unwrap();
        let mut stream = buf.as_slice();
        prop_assert_eq!(recv_request(&mut stream).unwrap().unwrap(), a);
        prop_assert_eq!(recv_request(&mut stream).unwrap().unwrap(), b);
        prop_assert_eq!(recv_request(&mut stream).unwrap(), None);
    }

    /// Any response round-trips bit-exactly through a framed stream.
    #[test]
    fn prop_response_roundtrip(resp in arb_response()) {
        let mut buf = Vec::new();
        send_response(&mut buf, &resp).unwrap();
        let mut stream = buf.as_slice();
        prop_assert_eq!(recv_response(&mut stream).unwrap().unwrap(), resp);
        prop_assert_eq!(recv_response(&mut stream).unwrap(), None);
    }

    /// Truncating a frame anywhere is an error, never a short message and
    /// never a panic. (Cutting at offset 0 is a clean EOF instead.)
    #[test]
    fn prop_truncated_frame_fails_closed(resp in arb_response(), cut_seed in any::<usize>()) {
        let mut buf = Vec::new();
        send_response(&mut buf, &resp).unwrap();
        let cut = 1 + cut_seed % (buf.len() - 1);
        prop_assert!(recv_response(&mut &buf[..cut]).is_err(), "cut at {} accepted", cut);
    }

    /// Flipping any single bit in a frame is detected: the envelope
    /// checksum, the payload-fingerprint key, or the message decoder must
    /// refuse it. A decoded frame is therefore exactly what was sent.
    #[test]
    fn prop_flipped_bit_fails_closed(
        req in arb_request(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        send_request(&mut buf, &req).unwrap();
        let pos = pos_seed % buf.len();
        buf[pos] ^= 1 << bit;
        if let Ok(got) = recv_request(&mut buf.as_slice()) {
            prop_assert!(false, "corrupt frame decoded as {:?}", got);
        }
    }

    /// Pure garbage bytes never decode and never panic.
    #[test]
    fn prop_garbage_fails_closed(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        // As a raw stream: either clean EOF on empty input or an error;
        // random bytes cannot produce a valid checksummed frame.
        match recv_request(&mut bytes.as_slice()) {
            Ok(None) => prop_assert!(bytes.is_empty()),
            Ok(Some(req)) => prop_assert!(false, "garbage decoded as {:?}", req),
            Err(_) => {}
        }
        // As a sealed frame body: same story.
        prop_assert!(open_frame(&bytes).is_err());
    }

    /// Declared frame lengths beyond the cap are rejected before any
    /// payload is read (or allocated).
    #[test]
    fn prop_oversized_length_rejected(extra in 1u64..u64::from(u32::MAX / 2)) {
        let len = (MAX_FRAME_LEN as u64 + extra).min(u64::from(u32::MAX)) as u32;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let err = recv_request(&mut buf.as_slice()).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

#[test]
fn frame_error_types_are_specific() {
    // Spot-check that the typed errors carry the right diagnosis.
    assert!(matches!(
        open_frame(&[]),
        Err(WireError::FrameLength { .. })
    ));
    let sealed = {
        let mut buf = Vec::new();
        send_request(&mut buf, &Request::Ping).unwrap();
        buf.split_off(4)
    };
    // A payload flip past the envelope header trips either the checksum or
    // the payload-fingerprint key — both are envelope-level rejections.
    let mut bad = sealed.clone();
    let last = bad.len() - 1;
    bad[last] ^= 1;
    assert!(matches!(
        open_frame(&bad),
        Err(WireError::Envelope(_) | WireError::KeyMismatch { .. })
    ));
    assert!(open_frame(&sealed).is_ok());
}
