//! Physical byte addresses and cache-line addresses.
//!
//! The simulator works almost exclusively at cache-line granularity (the
//! paper's history buffer, index table and prefetch buffers all hold line
//! addresses), so [`LineAddr`] is the workhorse type. [`PhysAddr`] is kept
//! distinct so byte-granular trace generation cannot be accidentally mixed
//! with line-granular predictor state.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cache line / memory transfer unit, in bytes (Table 1: 64-byte
/// transfers).
pub const CACHE_LINE_BYTES: usize = 64;

/// Number of low-order bits discarded when converting a byte address to a
/// line address.
pub const CACHE_LINE_SHIFT: u32 = CACHE_LINE_BYTES.trailing_zeros();

/// A physical byte address.
///
/// # Example
///
/// ```
/// use stms_types::PhysAddr;
/// let a = PhysAddr::new(0x1234);
/// assert_eq!(a.raw(), 0x1234);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address containing this byte address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> CACHE_LINE_SHIFT)
    }

    /// Returns the offset of this byte address within its cache line.
    pub const fn line_offset(self) -> usize {
        (self.0 & (CACHE_LINE_BYTES as u64 - 1)) as usize
    }

    /// Returns the address advanced by `bytes` bytes.
    pub const fn add_bytes(self, bytes: u64) -> Self {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> u64 {
        a.0
    }
}

/// A cache-line (block) address: a physical address divided by the line size.
///
/// Line addresses are what the prefetchers predict, what the history buffer
/// logs and what the index table maps.
///
/// # Example
///
/// ```
/// use stms_types::{LineAddr, PhysAddr};
/// let line = PhysAddr::new(0x80).line();
/// assert_eq!(line, LineAddr::new(2));
/// assert_eq!(line.next(), LineAddr::new(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts back to the physical byte address of the first byte of the
    /// line.
    pub const fn to_phys(self) -> PhysAddr {
        PhysAddr(self.0 << CACHE_LINE_SHIFT)
    }

    /// Returns the next sequential line address.
    pub const fn next(self) -> Self {
        LineAddr(self.0 + 1)
    }

    /// Returns this line address offset by `delta` lines (may be negative).
    pub fn offset(self, delta: i64) -> Self {
        LineAddr(self.0.wrapping_add(delta as u64))
    }

    /// Signed distance in lines from `other` to `self`.
    pub fn delta_from(self, other: LineAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl From<LineAddr> for u64 {
    fn from(a: LineAddr) -> u64 {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn line_size_is_power_of_two() {
        assert!(CACHE_LINE_BYTES.is_power_of_two());
        assert_eq!(1usize << CACHE_LINE_SHIFT, CACHE_LINE_BYTES);
    }

    #[test]
    fn phys_to_line_truncates() {
        assert_eq!(PhysAddr::new(0).line(), LineAddr::new(0));
        assert_eq!(PhysAddr::new(63).line(), LineAddr::new(0));
        assert_eq!(PhysAddr::new(64).line(), LineAddr::new(1));
        assert_eq!(PhysAddr::new(130).line(), LineAddr::new(2));
    }

    #[test]
    fn line_offset_within_bounds() {
        assert_eq!(PhysAddr::new(0x41).line_offset(), 1);
        assert_eq!(PhysAddr::new(0x7f).line_offset(), 63);
    }

    #[test]
    fn line_to_phys_round_trips_aligned() {
        let l = LineAddr::new(77);
        assert_eq!(l.to_phys().line(), l);
        assert_eq!(l.to_phys().line_offset(), 0);
    }

    #[test]
    fn next_and_offset_agree() {
        let l = LineAddr::new(10);
        assert_eq!(l.next(), l.offset(1));
        assert_eq!(l.offset(-3), LineAddr::new(7));
        assert_eq!(l.next().delta_from(l), 1);
        assert_eq!(l.delta_from(l.next()), -1);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", PhysAddr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(0x40)), "L0x40");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
    }

    #[test]
    fn conversions_via_from() {
        let a: PhysAddr = 42u64.into();
        assert_eq!(u64::from(a), 42);
        let l: LineAddr = 7u64.into();
        assert_eq!(u64::from(l), 7);
    }

    proptest! {
        #[test]
        fn prop_phys_line_roundtrip(raw in 0u64..u64::MAX / 2) {
            let a = PhysAddr::new(raw);
            let line = a.line();
            // The line's base address is <= the original and within one line.
            prop_assert!(line.to_phys().raw() <= raw);
            prop_assert!(raw - line.to_phys().raw() < CACHE_LINE_BYTES as u64);
            prop_assert_eq!(line.to_phys().raw() + a.line_offset() as u64, raw);
        }

        #[test]
        fn prop_line_delta_inverse(a in 0u64..1u64 << 40, d in -1000i64..1000i64) {
            let base = LineAddr::new(a + 2000);
            let moved = base.offset(d);
            prop_assert_eq!(moved.delta_from(base), d);
        }
    }
}
