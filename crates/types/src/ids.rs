//! Identifiers for hardware contexts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor core in the simulated chip multiprocessor.
///
/// The paper's system has four cores (Table 1); the simulator supports any
/// number, identified densely from zero.
///
/// # Example
///
/// ```
/// use stms_types::CoreId;
/// let cores: Vec<CoreId> = CoreId::all(4).collect();
/// assert_eq!(cores.len(), 4);
/// assert_eq!(cores[2].index(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the dense index of this core.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns an iterator over the first `n` core identifiers.
    pub fn all(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n as u16).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_yields_dense_indices() {
        let ids: Vec<_> = CoreId::all(3).collect();
        assert_eq!(ids, vec![CoreId::new(0), CoreId::new(1), CoreId::new(2)]);
        assert_eq!(ids[1].index(), 1);
    }

    #[test]
    fn all_zero_is_empty() {
        assert_eq!(CoreId::all(0).count(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
    }
}
