//! Simulated time.
//!
//! The simulator is cycle-approximate; all timestamps are expressed in core
//! clock cycles of the simulated processor (4 GHz in the paper's Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles.
///
/// # Example
///
/// ```
/// use stms_types::Cycle;
/// let t = Cycle::new(100) + 20;
/// assert_eq!(t.raw(), 120);
/// assert_eq!(t - Cycle::new(100), 20);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of two time points, returning the elapsed
    /// number of cycles (zero if `earlier` is later than `self`).
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two time points.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two time points.
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Converts a duration in nanoseconds to cycles at the given core
    /// frequency in GHz, rounding up.
    pub fn from_nanos(nanos: f64, freq_ghz: f64) -> u64 {
        (nanos * freq_ghz).ceil() as u64
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let mut t = Cycle::new(10);
        t += 5;
        assert_eq!(t, Cycle::new(15));
        assert_eq!(t + 5, Cycle::new(20));
        assert_eq!(t - Cycle::new(10), 5);
    }

    #[test]
    fn saturating_since_never_underflows() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).saturating_since(Cycle::new(5)), 5);
    }

    #[test]
    fn min_max_order() {
        let a = Cycle::new(3);
        let b = Cycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn nanos_conversion_matches_table1() {
        // 45 ns main memory access at 4 GHz = 180 cycles.
        assert_eq!(Cycle::from_nanos(45.0, 4.0), 180);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(7).to_string(), "7cy");
    }
}
