//! A versioned, self-checking envelope for on-disk cache files.
//!
//! Both persistent cache tiers of the campaign layer (trace blobs and
//! memoized job outputs) store *payload codecs that will evolve* in files
//! *named after cache keys that must never alias*. This module provides the
//! shared wrapper that makes that safe:
//!
//! ```text
//! magic "STMB" | envelope version u16 | payload codec version u16 |
//! key fingerprint u128 | payload length u64 | payload bytes |
//! payload checksum u64 (low half of FNV-1a-128)
//! ```
//!
//! All integers are little-endian. [`open`] verifies every header field and
//! the payload checksum, so a reader can distinguish "not my format", "a
//! newer codec I cannot read", "a hash-collision or renamed file"
//! ([`BlobError::KeyMismatch`]) and plain corruption — and cache tiers treat
//! *every* failure the same way: discard the file and regenerate.
//!
//! # Example
//!
//! ```
//! use stms_types::{blob, Fingerprint};
//!
//! let key = Fingerprint::from_raw(42);
//! let file = blob::seal(3, key, b"payload");
//! assert_eq!(blob::open(&file, 3, key).unwrap(), b"payload");
//!
//! // A different codec version or key refuses to alias:
//! assert!(blob::open(&file, 4, key).is_err());
//! assert!(blob::open(&file, 3, Fingerprint::from_raw(43)).is_err());
//!
//! // Corruption is caught by the payload checksum:
//! let mut bad = file.clone();
//! *bad.last_mut().unwrap() ^= 0xff;
//! assert!(matches!(blob::open(&bad, 3, key), Err(blob::BlobError::ChecksumMismatch)));
//! ```

use crate::fingerprint::{Fingerprint, Fingerprinter};
use std::fmt;

/// Leading magic of every sealed blob: `STMB` ("STMS blob").
const BLOB_MAGIC: [u8; 4] = *b"STMB";

/// Version of the envelope layout itself (not of the payload codec).
const ENVELOPE_VERSION: u16 = 1;

/// Fixed header size: magic + envelope version + codec version + key +
/// payload length. Public so streaming readers/writers ([`crate::stream`])
/// can frame their I/O without materializing a whole file.
pub const HEADER_LEN: usize = 4 + 2 + 2 + 16 + 8;

/// Trailing checksum size of a sealed blob.
pub const CHECKSUM_LEN: usize = 8;

/// Byte offset of the little-endian `payload_len` field inside the fixed
/// header (after magic, envelope version, codec version and key). Streaming
/// writers whose payload length is unknown up front (the columnar chunk
/// codec) seek back here to patch the real length at finish time.
pub(crate) const PAYLOAD_LEN_OFFSET: usize = 4 + 2 + 2 + 16;

/// Why a sealed blob could not be opened.
///
/// Marked `#[non_exhaustive]`: future envelope revisions may detect new
/// failure modes without breaking matches. Cache tiers should treat every
/// variant identically — evict the file and regenerate the artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BlobError {
    /// The buffer ended before the named field.
    Truncated {
        /// Which field was cut off.
        what: &'static str,
    },
    /// The leading magic was not `STMB` — not a sealed blob at all.
    BadMagic,
    /// The envelope layout version is one this build cannot read.
    UnsupportedEnvelope {
        /// Version found in the header.
        found: u16,
    },
    /// The payload was written by a different payload codec version.
    CodecVersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version the reader expected.
        expected: u16,
    },
    /// The header's key fingerprint is not the key the reader derived — a
    /// renamed file or (astronomically unlikely) a fingerprint collision.
    KeyMismatch,
    /// The payload bytes do not match their recorded checksum.
    ChecksumMismatch,
    /// Extra bytes follow the checksum (a partially-overwritten file).
    TrailingData,
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::Truncated { what } => write!(f, "sealed blob truncated at {what}"),
            BlobError::BadMagic => write!(f, "not a sealed blob (bad magic)"),
            BlobError::UnsupportedEnvelope { found } => {
                write!(f, "unsupported blob envelope version {found}")
            }
            BlobError::CodecVersionMismatch { found, expected } => {
                write!(f, "payload codec version {found}, expected {expected}")
            }
            BlobError::KeyMismatch => write!(f, "blob key fingerprint does not match"),
            BlobError::ChecksumMismatch => write!(f, "blob payload checksum mismatch"),
            BlobError::TrailingData => write!(f, "trailing bytes after blob checksum"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Folds an incremental payload hash into the 64-bit checksum recorded at
/// the end of a sealed blob. Streaming writers/readers feed payload bytes
/// through a [`Fingerprinter`] as they go and finish with this, so their
/// checksum is bit-identical to [`seal`]/[`open`] over the same bytes.
pub(crate) fn checksum_finish(fp: &Fingerprinter) -> u64 {
    fp.finish().raw() as u64
}

fn checksum(payload: &[u8]) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_bytes(payload);
    checksum_finish(&fp)
}

/// The decoded fixed-size header of a sealed blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobHeader {
    /// Payload codec version recorded in the header.
    pub codec_version: u16,
    /// Cache-key fingerprint recorded in the header.
    pub key: Fingerprint,
    /// Payload length in bytes (excludes header and trailing checksum).
    pub payload_len: u64,
}

/// Encodes the fixed-size header of a sealed blob (shared by [`seal`] and
/// the streaming writer in [`crate::stream`]).
pub fn encode_header(codec_version: u16, key: Fingerprint, payload_len: u64) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[0..4].copy_from_slice(&BLOB_MAGIC);
    out[4..6].copy_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    out[6..8].copy_from_slice(&codec_version.to_le_bytes());
    out[8..24].copy_from_slice(&key.raw().to_le_bytes());
    out[PAYLOAD_LEN_OFFSET..HEADER_LEN].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Parses and validates the fixed-size header of a sealed blob: the magic
/// and the envelope version are checked here; the payload codec version and
/// key are returned for the caller to check (a streaming reader reports
/// those through its own error type).
///
/// # Errors
///
/// [`BlobError::Truncated`], [`BlobError::BadMagic`] or
/// [`BlobError::UnsupportedEnvelope`].
pub fn parse_header(data: &[u8]) -> Result<BlobHeader, BlobError> {
    // Name the first missing field, so a truncated prefix reads the same as
    // it always has through `open`.
    for (end, what) in [
        (4, "magic"),
        (6, "envelope version"),
        (8, "codec version"),
        (24, "key fingerprint"),
        (HEADER_LEN, "payload length"),
    ] {
        if data.len() < end {
            return Err(BlobError::Truncated { what });
        }
    }
    if data[0..4] != BLOB_MAGIC {
        return Err(BlobError::BadMagic);
    }
    let envelope = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
    if envelope != ENVELOPE_VERSION {
        return Err(BlobError::UnsupportedEnvelope { found: envelope });
    }
    Ok(BlobHeader {
        codec_version: u16::from_le_bytes(data[6..8].try_into().expect("2 bytes")),
        key: Fingerprint::from_raw(u128::from_le_bytes(
            data[8..24].try_into().expect("16 bytes"),
        )),
        payload_len: u64::from_le_bytes(data[24..32].try_into().expect("8 bytes")),
    })
}

/// Total on-disk size of a sealed blob carrying `payload_len` payload
/// bytes (header + payload + checksum), for cache size accounting.
pub fn sealed_len(payload_len: usize) -> usize {
    HEADER_LEN + payload_len + 8
}

/// Wraps `payload` in a sealed envelope for the given payload codec version
/// and cache key.
pub fn seal(codec_version: u16, key: Fingerprint, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&encode_header(codec_version, key, payload.len() as u64));
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out
}

/// Opens a sealed blob, returning the payload slice after verifying the
/// magic, versions, key fingerprint, payload length and checksum.
///
/// # Errors
///
/// Returns the first [`BlobError`] encountered; see the variant docs. Any
/// error means the file is unusable as a cache entry for `key`.
pub fn open(data: &[u8], codec_version: u16, key: Fingerprint) -> Result<&[u8], BlobError> {
    let (found, payload) = open_any(data, codec_version)?;
    if found != key {
        return Err(BlobError::KeyMismatch);
    }
    Ok(payload)
}

/// Opens a sealed blob whose key the reader cannot derive in advance,
/// returning the *recorded* key alongside the verified payload.
///
/// Cache tiers always know their key (it names the file) and should use
/// [`open`]; this variant exists for self-describing artifacts like shard
/// manifests, whose key is a fingerprint of header fields that live inside
/// the payload. Such callers must re-derive the key from the decoded payload
/// and compare it against the returned one themselves.
///
/// # Errors
///
/// Same as [`open`], except that [`BlobError::KeyMismatch`] is never
/// returned (the caller owns that check).
pub fn open_any(data: &[u8], codec_version: u16) -> Result<(Fingerprint, &[u8]), BlobError> {
    let header = parse_header(data)?;
    if header.codec_version != codec_version {
        return Err(BlobError::CodecVersionMismatch {
            found: header.codec_version,
            expected: codec_version,
        });
    }
    let found_key = header.key.raw();
    let len = header.payload_len as usize;
    // The length field is untrusted on-disk data: all arithmetic on it must
    // be checked, so a vandalized length is a clean Truncated error rather
    // than an overflow panic.
    let payload_end = HEADER_LEN
        .checked_add(len)
        .ok_or(BlobError::Truncated { what: "payload" })?;
    let total = payload_end
        .checked_add(CHECKSUM_LEN)
        .ok_or(BlobError::Truncated { what: "checksum" })?;
    let payload = data
        .get(HEADER_LEN..payload_end)
        .ok_or(BlobError::Truncated { what: "payload" })?;
    let recorded = u64::from_le_bytes(
        data.get(payload_end..payload_end + CHECKSUM_LEN)
            .ok_or(BlobError::Truncated { what: "checksum" })?
            .try_into()
            .expect("8 bytes"),
    );
    if recorded != checksum(payload) {
        return Err(BlobError::ChecksumMismatch);
    }
    if data.len() != total {
        return Err(BlobError::TrailingData);
    }
    Ok((Fingerprint::from_raw(found_key), payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Fingerprint {
        Fingerprint::from_raw(0x1234_5678_9abc_def0_1122_3344_5566_7788)
    }

    #[test]
    fn round_trip() {
        let sealed = seal(7, key(), b"hello cache");
        assert_eq!(open(&sealed, 7, key()).unwrap(), b"hello cache");
        // Empty payloads are legal.
        let empty = seal(7, key(), b"");
        assert_eq!(open(&empty, 7, key()).unwrap(), b"");
    }

    #[test]
    fn every_header_field_is_verified() {
        let sealed = seal(7, key(), b"payload");
        assert_eq!(
            open(&[], 7, key()),
            Err(BlobError::Truncated { what: "magic" })
        );
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert_eq!(open(&bad, 7, key()), Err(BlobError::BadMagic));
        let mut bad = sealed.clone();
        bad[4] = 99;
        assert_eq!(
            open(&bad, 7, key()),
            Err(BlobError::UnsupportedEnvelope { found: 99 })
        );
        assert_eq!(
            open(&sealed, 8, key()),
            Err(BlobError::CodecVersionMismatch {
                found: 7,
                expected: 8
            })
        );
        assert_eq!(
            open(&sealed, 7, Fingerprint::from_raw(1)),
            Err(BlobError::KeyMismatch)
        );
    }

    #[test]
    fn corruption_and_truncation_are_caught() {
        let sealed = seal(7, key(), b"payload bytes");
        // Flip one payload byte: checksum mismatch.
        let mut bad = sealed.clone();
        bad[HEADER_LEN] ^= 0x01;
        assert_eq!(open(&bad, 7, key()), Err(BlobError::ChecksumMismatch));
        // Cut the file short anywhere in the payload/checksum: truncated.
        for cut in [HEADER_LEN + 2, sealed.len() - 1] {
            assert!(matches!(
                open(&sealed[..cut], 7, key()),
                Err(BlobError::Truncated { .. })
            ));
        }
        // Extra appended bytes: trailing data.
        let mut long = sealed.clone();
        long.push(0);
        assert_eq!(open(&long, 7, key()), Err(BlobError::TrailingData));
    }

    #[test]
    fn huge_length_field_is_truncation_not_overflow() {
        // A vandalized payload-length near u64::MAX must not overflow the
        // bounds arithmetic (debug builds panic on overflow).
        let mut sealed = seal(7, key(), b"payload");
        sealed[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            open(&sealed, 7, key()),
            Err(BlobError::Truncated { .. })
        ));
        sealed[24..32].copy_from_slice(&(u64::MAX - 8).to_le_bytes());
        assert!(matches!(
            open(&sealed, 7, key()),
            Err(BlobError::Truncated { .. })
        ));
    }

    #[test]
    fn open_any_returns_the_recorded_key_and_still_verifies_content() {
        let sealed = seal(7, key(), b"payload");
        let (found, payload) = open_any(&sealed, 7).unwrap();
        assert_eq!(found, key());
        assert_eq!(payload, b"payload");
        // Everything except the key check still applies.
        assert!(matches!(
            open_any(&sealed, 8),
            Err(BlobError::CodecVersionMismatch { .. })
        ));
        let mut bad = sealed.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        assert_eq!(open_any(&bad, 7), Err(BlobError::ChecksumMismatch));
    }

    #[test]
    fn errors_render_their_cause() {
        assert!(BlobError::ChecksumMismatch.to_string().contains("checksum"));
        assert!(BlobError::CodecVersionMismatch {
            found: 1,
            expected: 2
        }
        .to_string()
        .contains("expected 2"));
    }
}
