//! Memory access records as produced by the workload generators and consumed
//! by the memory-hierarchy simulator.

use crate::{CoreId, LineAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load.
    #[default]
    Read,
    /// A data store.
    Write,
    /// An instruction fetch. Treated like a read by the data-side simulator
    /// but kept distinct so instruction-stream heavy workloads can be
    /// modelled.
    InstrFetch,
}

impl AccessKind {
    /// Whether this access reads data (loads and instruction fetches).
    pub fn is_read(self) -> bool {
        !matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
            AccessKind::InstrFetch => "I",
        };
        f.write_str(s)
    }
}

/// One memory access in a trace.
///
/// Accesses are recorded at cache-line granularity: the generators emit the
/// line address directly because the prefetchers and caches studied by the
/// paper all operate on 64-byte blocks.
///
/// # Example
///
/// ```
/// use stms_types::{AccessKind, CoreId, LineAddr, MemAccess};
/// let a = MemAccess::read(CoreId::new(0), LineAddr::new(42)).with_gap(10);
/// assert_eq!(a.compute_gap, 10);
/// assert!(a.kind.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// The core that issues the access.
    pub core: CoreId,
    /// The cache line touched.
    pub line: LineAddr,
    /// Load, store or instruction fetch.
    pub kind: AccessKind,
    /// Number of non-memory instructions executed by this core since its
    /// previous recorded access (used by the timing model to advance the
    /// clock at one instruction per cycle).
    pub compute_gap: u32,
    /// Whether the address of this access is data-dependent on the result of
    /// the core's previous off-chip miss (pointer chasing). Dependent misses
    /// cannot overlap with their producer and therefore reduce memory-level
    /// parallelism.
    pub dependent: bool,
}

impl MemAccess {
    /// Creates a read access with no compute gap and no dependence.
    pub fn read(core: CoreId, line: LineAddr) -> Self {
        MemAccess {
            core,
            line,
            kind: AccessKind::Read,
            compute_gap: 0,
            dependent: false,
        }
    }

    /// Creates a write access with no compute gap and no dependence.
    pub fn write(core: CoreId, line: LineAddr) -> Self {
        MemAccess {
            core,
            line,
            kind: AccessKind::Write,
            compute_gap: 0,
            dependent: false,
        }
    }

    /// Sets the number of non-memory instructions preceding this access.
    pub fn with_gap(mut self, gap: u32) -> Self {
        self.compute_gap = gap;
        self
    }

    /// Marks this access as data-dependent on the core's previous off-chip
    /// miss.
    pub fn with_dependence(mut self, dependent: bool) -> Self {
        self.dependent = dependent;
        self
    }

    /// Sets the access kind.
    pub fn with_kind(mut self, kind: AccessKind) -> Self {
        self.kind = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_constructors() {
        let c = CoreId::new(1);
        let l = LineAddr::new(5);
        assert_eq!(MemAccess::read(c, l).kind, AccessKind::Read);
        assert_eq!(MemAccess::write(c, l).kind, AccessKind::Write);
        assert!(MemAccess::read(c, l).kind.is_read());
        assert!(!MemAccess::write(c, l).kind.is_read());
        assert!(AccessKind::InstrFetch.is_read());
    }

    #[test]
    fn builder_setters_chain() {
        let a = MemAccess::read(CoreId::new(0), LineAddr::new(1))
            .with_gap(7)
            .with_dependence(true)
            .with_kind(AccessKind::InstrFetch);
        assert_eq!(a.compute_gap, 7);
        assert!(a.dependent);
        assert_eq!(a.kind, AccessKind::InstrFetch);
    }

    #[test]
    fn kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
        assert_eq!(AccessKind::InstrFetch.to_string(), "I");
        assert_eq!(AccessKind::default(), AccessKind::Read);
    }
}
