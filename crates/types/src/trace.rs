//! Trace containers and a compact binary trace encoding.
//!
//! The workload generators produce [`Trace`] values; the simulator replays
//! them. Traces can be serialized with serde (any format) or with the compact
//! fixed-width binary encoding provided by [`Trace::encode`] /
//! [`Trace::decode`], which is convenient for caching generated workloads on
//! disk between experiment runs.

use crate::{AccessKind, CoreId, LineAddr, MemAccess};
use bytes::{Buf, Bytes};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A cheaply-cloneable, immutable handle to a generated trace.
///
/// Traces are large (tens of bytes per access); campaign-style experiment
/// drivers generate each workload trace once and replay it from many worker
/// threads concurrently. `SharedTrace` is the currency of that sharing:
/// cloning is one atomic increment, and the underlying [`Trace`] is immutable
/// for the lifetime of the handle.
pub type SharedTrace = Arc<Trace>;

/// Metadata describing how a trace was produced.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable workload name (e.g. `"OLTP Oracle"`).
    pub workload: String,
    /// Number of cores whose accesses are interleaved in the trace.
    pub cores: usize,
    /// Seed of the generator that produced the trace.
    pub seed: u64,
    /// Approximate number of distinct cache lines touched (data footprint).
    pub footprint_lines: u64,
}

/// A sequence of memory accesses from all cores, in program-interleaved
/// order, together with its metadata.
///
/// # Example
///
/// ```
/// use stms_types::{CoreId, LineAddr, MemAccess, Trace, TraceMeta};
/// let mut trace = Trace::new(TraceMeta { workload: "demo".into(), cores: 1, ..Default::default() });
/// trace.push(MemAccess::read(CoreId::new(0), LineAddr::new(1)));
/// trace.push(MemAccess::read(CoreId::new(0), LineAddr::new(2)));
/// assert_eq!(trace.len(), 2);
/// let bytes = trace.encode();
/// let back = Trace::decode(&bytes).unwrap();
/// assert_eq!(back, trace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    accesses: Vec<MemAccess>,
}

/// Error returned when decoding a binary trace fails.
///
/// Marked `#[non_exhaustive]` so the codec can grow new failure modes (e.g.
/// a future field with its own validity rule) without a breaking change —
/// which is what lets the campaign layer's on-disk trace tier evolve the
/// format while old binaries keep compiling. Callers should treat *any*
/// variant as "this buffer is not a usable trace" and fall back to
/// regeneration:
///
/// ```
/// use stms_types::trace::{DecodeTraceError, Trace};
///
/// match Trace::decode(&[0u8; 3]) {
///     Err(DecodeTraceError::Truncated { what }) => assert_eq!(what, "missing magic"),
///     // A wildcard arm is required: the enum is #[non_exhaustive].
///     other => panic!("a three-byte buffer cannot decode: {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeTraceError {
    /// The buffer ended before the named field was complete.
    Truncated {
        /// Which encoded field was cut off.
        what: &'static str,
    },
    /// The buffer does not start with the `STMS` trace magic.
    BadMagic,
    /// The workload name bytes were not valid UTF-8.
    InvalidName,
    /// An access record carried an access-kind tag the decoder does not
    /// know.
    InvalidAccessKind {
        /// The unknown tag value.
        tag: u8,
    },
    /// A chunk frame of the chunk-framed codec ([`crate::stream`]) declares
    /// an access count inconsistent with the trace header (every frame must
    /// carry exactly `chunk_len` accesses except the last).
    BadChunkFraming {
        /// 0-based index of the inconsistent chunk.
        chunk: u64,
    },
    /// A chunk's record bytes do not match the checksum recorded in its
    /// frame (chunk-framed codec only).
    ChunkChecksumMismatch {
        /// 0-based index of the corrupt chunk.
        chunk: u64,
    },
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::Truncated { what } => {
                write!(f, "malformed binary trace: truncated at {what}")
            }
            DecodeTraceError::BadMagic => write!(f, "malformed binary trace: bad magic"),
            DecodeTraceError::InvalidName => {
                write!(f, "malformed binary trace: workload name not utf-8")
            }
            DecodeTraceError::InvalidAccessKind { tag } => {
                write!(f, "malformed binary trace: invalid access kind {tag}")
            }
            DecodeTraceError::BadChunkFraming { chunk } => {
                write!(
                    f,
                    "malformed binary trace: inconsistent framing of chunk {chunk}"
                )
            }
            DecodeTraceError::ChunkChecksumMismatch { chunk } => {
                write!(
                    f,
                    "malformed binary trace: checksum mismatch in chunk {chunk}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeTraceError {}

const TRACE_MAGIC: u32 = 0x53_54_4d_53; // "STMS"

/// Size in bytes of one encoded access record (row layout: core, line,
/// flags, gap). Shared by the whole-trace codec below and the chunk-framed
/// codec v2 in [`crate::stream`], which is what keeps the two encodings
/// byte-for-byte identical at the record level (and makes chunked payload
/// sizes computable up front). The columnar codec v3 stores the same fields
/// re-laid-out per column, so this is also its *decoded* size per record —
/// the unit the in-flight byte budget accounts in.
pub const ACCESS_RECORD_BYTES: usize = 2 + 8 + 1 + 4;

/// The canonical flag byte of an access: the kind tag in the low bits, the
/// dependence marker in the top bit. Shared by the row codecs and the v3
/// columnar kind column.
pub(crate) fn access_flags(a: &MemAccess) -> u8 {
    let kind = match a.kind {
        AccessKind::Read => 0u8,
        AccessKind::Write => 1,
        AccessKind::InstrFetch => 2,
    };
    kind | if a.dependent { 0x80 } else { 0 }
}

/// Decodes a flag byte back into its kind and dependence marker.
pub(crate) fn parse_flags(flags: u8) -> Result<(AccessKind, bool), DecodeTraceError> {
    let kind = match flags & 0x7f {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        2 => AccessKind::InstrFetch,
        tag => return Err(DecodeTraceError::InvalidAccessKind { tag }),
    };
    Ok((kind, flags & 0x80 != 0))
}

/// Appends the canonical big-endian encoding of one access record.
pub(crate) fn put_access(out: &mut Vec<u8>, a: &MemAccess) {
    out.extend_from_slice(&(a.core.index() as u16).to_be_bytes());
    out.extend_from_slice(&a.line.raw().to_be_bytes());
    out.push(access_flags(a));
    out.extend_from_slice(&a.compute_gap.to_be_bytes());
}

/// Parses one access record from the front of `data`, advancing it.
pub(crate) fn parse_access(data: &mut &[u8]) -> Result<MemAccess, DecodeTraceError> {
    if data.remaining() < ACCESS_RECORD_BYTES {
        return Err(DecodeTraceError::Truncated {
            what: "truncated access",
        });
    }
    let core = CoreId::new(data.get_u16());
    let line = LineAddr::new(data.get_u64());
    let (kind, dependent) = parse_flags(data.get_u8())?;
    let compute_gap = data.get_u32();
    Ok(MemAccess {
        core,
        line,
        kind,
        compute_gap,
        dependent,
    })
}

/// Version of the [`Trace::encode`] payload codec.
///
/// The on-disk trace cache seals encoded traces in a
/// [`crate::blob`] envelope stamped with this version; bumping it when the
/// access record layout changes makes every previously cached file an
/// explicit [`crate::blob::BlobError::CodecVersionMismatch`] instead of a
/// silent misread.
pub const TRACE_CODEC_VERSION: u16 = 1;

impl Trace {
    /// Creates an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Trace {
            meta,
            accesses: Vec::new(),
        }
    }

    /// Creates a trace from already-collected accesses.
    pub fn from_accesses(meta: TraceMeta, accesses: Vec<MemAccess>) -> Self {
        Trace { meta, accesses }
    }

    /// Wraps the trace in a [`SharedTrace`] handle for concurrent replay.
    pub fn into_shared(self) -> SharedTrace {
        Arc::new(self)
    }

    /// Returns the trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Appends one access.
    pub fn push(&mut self, access: MemAccess) {
        self.accesses.push(access);
    }

    /// Number of accesses in the trace.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace contains no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Returns the accesses as a slice.
    pub fn accesses(&self) -> &[MemAccess] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, MemAccess> {
        self.accesses.iter()
    }

    /// Returns the accesses issued by one core, preserving order.
    pub fn per_core(&self, core: CoreId) -> Vec<MemAccess> {
        self.accesses
            .iter()
            .copied()
            .filter(|a| a.core == core)
            .collect()
    }

    /// Total number of instructions represented by the trace (memory accesses
    /// plus compute gaps), used as the numerator of the throughput metric.
    pub fn instruction_count(&self) -> u64 {
        self.accesses.len() as u64
            + self
                .accesses
                .iter()
                .map(|a| a.compute_gap as u64)
                .sum::<u64>()
    }

    /// Encodes the trace into a compact binary representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(
            32 + self.meta.workload.len() + self.accesses.len() * ACCESS_RECORD_BYTES,
        );
        buf.extend_from_slice(&TRACE_MAGIC.to_be_bytes());
        buf.extend_from_slice(&(self.meta.workload.len() as u16).to_be_bytes());
        buf.extend_from_slice(self.meta.workload.as_bytes());
        buf.extend_from_slice(&(self.meta.cores as u16).to_be_bytes());
        buf.extend_from_slice(&self.meta.seed.to_be_bytes());
        buf.extend_from_slice(&self.meta.footprint_lines.to_be_bytes());
        buf.extend_from_slice(&(self.accesses.len() as u64).to_be_bytes());
        for a in &self.accesses {
            put_access(&mut buf, a);
        }
        Bytes::from(buf)
    }

    /// Decodes a trace previously produced by [`Trace::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] if the buffer is truncated, has a wrong
    /// magic number, or contains an invalid access kind. A truncated buffer
    /// names the field that was cut off, and a foreign buffer fails on its
    /// magic before anything else is interpreted:
    ///
    /// ```
    /// use stms_types::trace::{DecodeTraceError, Trace};
    /// use stms_types::{CoreId, LineAddr, MemAccess};
    ///
    /// // Chopping the last byte off a valid encoding truncates an access.
    /// let mut trace = Trace::default();
    /// trace.push(MemAccess::read(CoreId::new(0), LineAddr::new(7)));
    /// let bytes = trace.encode();
    /// let err = Trace::decode(&bytes[..bytes.len() - 1]).unwrap_err();
    /// assert!(matches!(err, DecodeTraceError::Truncated { what: "truncated access" }));
    ///
    /// // A buffer that is not a trace at all is rejected on its magic.
    /// assert_eq!(
    ///     Trace::decode(b"PNG..not a trace").unwrap_err(),
    ///     DecodeTraceError::BadMagic,
    /// );
    /// ```
    pub fn decode(mut data: &[u8]) -> Result<Self, DecodeTraceError> {
        fn need(data: &[u8], n: usize, what: &'static str) -> Result<(), DecodeTraceError> {
            if data.remaining() < n {
                Err(DecodeTraceError::Truncated { what })
            } else {
                Ok(())
            }
        }
        need(data, 4, "missing magic")?;
        if data.get_u32() != TRACE_MAGIC {
            return Err(DecodeTraceError::BadMagic);
        }
        need(data, 2, "missing name length")?;
        let name_len = data.get_u16() as usize;
        need(data, name_len, "truncated name")?;
        let workload = String::from_utf8(data[..name_len].to_vec())
            .map_err(|_| DecodeTraceError::InvalidName)?;
        data.advance(name_len);
        need(data, 2 + 8 + 8 + 8, "truncated header")?;
        let cores = data.get_u16() as usize;
        let seed = data.get_u64();
        let footprint_lines = data.get_u64();
        let count = data.get_u64() as usize;
        let mut accesses = Vec::with_capacity(count);
        for _ in 0..count {
            accesses.push(parse_access(&mut data)?);
        }
        Ok(Trace {
            meta: TraceMeta {
                workload,
                cores,
                seed,
                footprint_lines,
            },
            accesses,
        })
    }
}

impl Extend<MemAccess> for Trace {
    fn extend<T: IntoIterator<Item = MemAccess>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemAccess;
    type IntoIter = std::slice::Iter<'a, MemAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemAccess;
    type IntoIter = std::vec::IntoIter<MemAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let meta = TraceMeta {
            workload: "unit".into(),
            cores: 2,
            seed: 7,
            footprint_lines: 128,
        };
        let mut t = Trace::new(meta);
        t.push(MemAccess::read(CoreId::new(0), LineAddr::new(10)).with_gap(3));
        t.push(MemAccess::write(CoreId::new(1), LineAddr::new(20)).with_dependence(true));
        t.push(
            MemAccess::read(CoreId::new(0), LineAddr::new(11))
                .with_kind(AccessKind::InstrFetch)
                .with_gap(1),
        );
        t
    }

    #[test]
    fn push_len_iter() {
        let t = sample_trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
        assert_eq!(t.clone().into_iter().count(), 3);
    }

    #[test]
    fn per_core_filters() {
        let t = sample_trace();
        assert_eq!(t.per_core(CoreId::new(0)).len(), 2);
        assert_eq!(t.per_core(CoreId::new(1)).len(), 1);
        assert_eq!(t.per_core(CoreId::new(2)).len(), 0);
    }

    #[test]
    #[allow(clippy::identity_op)] // one explicit term per access's gap
    fn instruction_count_includes_gaps() {
        let t = sample_trace();
        assert_eq!(t.instruction_count(), 3 + 3 + 0 + 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample_trace();
        let bytes = t.encode();
        let back = Trace::decode(&bytes).expect("decode");
        assert_eq!(back, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode(&[]).is_err());
        assert!(Trace::decode(&[1, 2, 3]).is_err());
        let mut bytes = sample_trace().encode().to_vec();
        bytes.truncate(bytes.len() - 1);
        assert!(Trace::decode(&bytes).is_err());
        // Corrupt the magic.
        let mut bad = sample_trace().encode().to_vec();
        bad[0] ^= 0xff;
        assert!(Trace::decode(&bad).is_err());
    }

    #[test]
    fn into_shared_is_cheap_to_clone_and_compares_equal() {
        let shared = sample_trace().into_shared();
        let alias = Arc::clone(&shared);
        assert!(Arc::ptr_eq(&shared, &alias));
        assert_eq!(*shared, sample_trace());
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new(TraceMeta::default());
        t.extend(vec![MemAccess::read(CoreId::new(0), LineAddr::new(1))]);
        assert_eq!(t.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(
            lines in proptest::collection::vec(0u64..1 << 40, 0..200),
            seed in any::<u64>(),
        ) {
            let meta = TraceMeta { workload: "prop".into(), cores: 4, seed, footprint_lines: 1000 };
            let mut t = Trace::new(meta);
            for (i, l) in lines.iter().enumerate() {
                let core = CoreId::new((i % 4) as u16);
                let acc = if i % 3 == 0 {
                    MemAccess::write(core, LineAddr::new(*l))
                } else {
                    MemAccess::read(core, LineAddr::new(*l)).with_dependence(i % 5 == 0)
                };
                t.push(acc.with_gap((i % 17) as u32));
            }
            let bytes = t.encode();
            let back = Trace::decode(&bytes).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}
