//! Length-prefixed request/response framing for the `stms-serve` daemon.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! | frame_len: u32 LE | sealed blob (see `blob` module) |
//! ```
//!
//! The sealed blob reuses the exact envelope discipline of the on-disk
//! tiers — magic, codec version ([`WIRE_CODEC_VERSION`]), a 128-bit key,
//! payload length and a trailing checksum — so a frame is rejected for the
//! same reasons a cache blob would be: wrong magic, wrong version, length
//! mismatch, checksum mismatch. The key is the fingerprint of the payload
//! itself (the wire has no external key to compare against), which makes
//! every single-byte corruption detectable twice over.
//!
//! On top of the frame layer sit two small hand-rolled message codecs,
//! [`Request`] and [`Response`]. Both decode **fail-closed**: unknown tags,
//! truncated fields, out-of-range lengths, non-UTF-8 strings and trailing
//! bytes are all hard errors ([`WireError`]), never best-effort guesses.
//!
//! # Example
//!
//! ```
//! use stms_types::wire::{Request, RequestFormat};
//!
//! let req = Request::Run {
//!     figures: vec!["table2".to_string()],
//!     format: RequestFormat::Text,
//! };
//! let mut buf = Vec::new();
//! stms_types::wire::write_frame(&mut buf, &req.encode()).unwrap();
//! let payload = stms_types::wire::read_frame(&mut buf.as_slice()).unwrap().unwrap();
//! assert_eq!(Request::decode(&payload).unwrap(), req);
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::blob::{self, BlobError};
use crate::fingerprint::{Fingerprint, Fingerprinter};

/// Envelope codec version stamped on every serve frame.
pub const WIRE_CODEC_VERSION: u16 = 1;

/// Upper bound on the sealed length of a single frame.
///
/// A declared length above this is rejected *before* any allocation, so a
/// garbage length prefix cannot be used to balloon server memory.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Upper bound on the number of figure ids in one [`Request::Run`].
pub const MAX_FIGURE_IDS: usize = 4096;

const MIN_FRAME_LEN: usize = blob::HEADER_LEN + blob::CHECKSUM_LEN;

/// Why a frame or message failed to decode. Decoding is fail-closed: any
/// variant means the input was discarded, never partially applied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The declared frame length exceeds [`MAX_FRAME_LEN`] (or is shorter
    /// than a sealed envelope can be).
    FrameLength {
        /// Declared sealed length in bytes.
        len: u64,
    },
    /// The sealed envelope failed to open (bad magic/version/checksum…).
    Envelope(BlobError),
    /// The envelope opened but its key is not the payload fingerprint.
    KeyMismatch {
        /// Key stamped in the envelope header.
        stamped: Fingerprint,
        /// Fingerprint recomputed over the received payload.
        computed: Fingerprint,
    },
    /// A message field ended before its declared length.
    Truncated {
        /// Which field was being read.
        what: &'static str,
    },
    /// The message tag byte does not name a known variant.
    UnknownTag {
        /// Offending tag value.
        tag: u8,
    },
    /// A length field exceeds its message-level bound.
    FieldTooLarge {
        /// Which field was being read.
        what: &'static str,
        /// Declared length.
        len: u64,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// Which field was being read.
        what: &'static str,
    },
    /// Bytes remained after the last field of the message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameLength { len } => {
                write!(
                    f,
                    "frame length {len} outside [{MIN_FRAME_LEN}, {MAX_FRAME_LEN}]"
                )
            }
            WireError::Envelope(err) => write!(f, "frame envelope rejected: {err}"),
            WireError::KeyMismatch { stamped, computed } => write!(
                f,
                "frame key mismatch: stamped {} != computed {}",
                stamped.to_hex(),
                computed.to_hex()
            ),
            WireError::Truncated { what } => write!(f, "message truncated reading {what}"),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::FieldTooLarge { what, len } => {
                write!(f, "field {what} too large ({len})")
            }
            WireError::BadUtf8 { what } => write!(f, "field {what} is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
        }
    }
}

impl Error for WireError {}

impl From<BlobError> for WireError {
    fn from(err: BlobError) -> Self {
        WireError::Envelope(err)
    }
}

fn payload_key(payload: &[u8]) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("stms-wire-frame/v1");
    fp.write_bytes(payload);
    fp.finish()
}

/// Seal `payload` into a complete frame (length prefix included).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let sealed = blob::seal(WIRE_CODEC_VERSION, payload_key(payload), payload);
    debug_assert!(sealed.len() <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(4 + sealed.len());
    out.extend_from_slice(
        &u32::try_from(sealed.len())
            .expect("frame fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&sealed);
    out
}

/// Open one sealed frame body (the bytes *after* the length prefix) and
/// return its verified payload.
pub fn open_frame(sealed: &[u8]) -> Result<&[u8], WireError> {
    if sealed.len() < MIN_FRAME_LEN || sealed.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameLength {
            len: sealed.len() as u64,
        });
    }
    let (stamped, payload) = blob::open_any(sealed, WIRE_CODEC_VERSION)?;
    let computed = payload_key(payload);
    if stamped != computed {
        return Err(WireError::KeyMismatch { stamped, computed });
    }
    Ok(payload)
}

/// Write one frame carrying `payload` to `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))
}

fn invalid(err: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err)
}

/// Read one frame from `r` and return its verified payload.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames). EOF *inside* a frame, an out-of-range length prefix, or an
/// envelope/key failure all surface as [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`] errors.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "end of stream inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&len) {
        return Err(invalid(WireError::FrameLength { len: len as u64 }));
    }
    let mut sealed = vec![0u8; len];
    r.read_exact(&mut sealed)?;
    let payload = open_frame(&sealed).map_err(invalid)?;
    Ok(Some(payload.to_vec()))
}

// ---------------------------------------------------------------------------
// Message field primitives.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, u32::try_from(value.len()).expect("string fits u32"));
    out.extend_from_slice(value.as_bytes());
}

struct FieldReader<'a> {
    data: &'a [u8],
}

impl<'a> FieldReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        FieldReader { data }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.data.len() < n {
            return Err(WireError::Truncated { what });
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn take_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn take_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let raw = self.take(4, what)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    fn take_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let raw = self.take(8, what)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn take_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.take_u32(what)? as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FieldTooLarge {
                what,
                len: len as u64,
            });
        }
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.data.len(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// Output format requested for a [`Request::Run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestFormat {
    /// Stream one [`Response::Figure`] rendered table per figure.
    Text,
    /// Stream figures, then close with one [`Response::Document`] holding
    /// the pretty-printed JSON array the one-shot CLI would print.
    Json,
}

const TAG_REQ_PING: u8 = 0;
const TAG_REQ_RUN: u8 = 1;
const TAG_REQ_STATS: u8 = 2;
const TAG_REQ_SHUTDOWN: u8 = 3;
const TAG_REQ_METRICS: u8 = 4;

/// A client-to-server message. One request per connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Run the named figures and stream the results back.
    Run {
        /// Figure ids as accepted by `--figures` (including `all`).
        figures: Vec<String>,
        /// Requested response format.
        format: RequestFormat,
    },
    /// Report serving counters; answered with [`Response::Stats`].
    Stats,
    /// Ask the daemon to stop accepting and exit once idle.
    Shutdown,
    /// Report the daemon's full telemetry registry; answered with
    /// [`Response::Metrics`]. Like [`Request::Stats`], answered without
    /// taking an admission slot, so live introspection never competes with
    /// run traffic.
    Metrics,
}

impl Request {
    /// Encode to a message payload (to be wrapped by [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(TAG_REQ_PING),
            Request::Run { figures, format } => {
                out.push(TAG_REQ_RUN);
                out.push(match format {
                    RequestFormat::Text => 0,
                    RequestFormat::Json => 1,
                });
                put_u32(
                    &mut out,
                    u32::try_from(figures.len()).expect("figure count fits u32"),
                );
                for id in figures {
                    put_str(&mut out, id);
                }
            }
            Request::Stats => out.push(TAG_REQ_STATS),
            Request::Shutdown => out.push(TAG_REQ_SHUTDOWN),
            Request::Metrics => out.push(TAG_REQ_METRICS),
        }
        out
    }

    /// Decode a message payload produced by [`Request::encode`]. Fail-closed.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = FieldReader::new(payload);
        let req = match r.take_u8("request tag")? {
            TAG_REQ_PING => Request::Ping,
            TAG_REQ_RUN => {
                let format = match r.take_u8("run format")? {
                    0 => RequestFormat::Text,
                    1 => RequestFormat::Json,
                    tag => return Err(WireError::UnknownTag { tag }),
                };
                let count = r.take_u32("figure count")? as usize;
                if count > MAX_FIGURE_IDS {
                    return Err(WireError::FieldTooLarge {
                        what: "figure count",
                        len: count as u64,
                    });
                }
                let mut figures = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    figures.push(r.take_str("figure id")?);
                }
                Request::Run { figures, format }
            }
            TAG_REQ_STATS => Request::Stats,
            TAG_REQ_SHUTDOWN => Request::Shutdown,
            TAG_REQ_METRICS => Request::Metrics,
            tag => return Err(WireError::UnknownTag { tag }),
        };
        r.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// Serving counters returned by [`Response::Stats`].
///
/// The first block counts requests as the gate saw them; the second block
/// is the campaign's own view (in-flight dedup, memoization, trace tiers),
/// so a test can prove exactly-once replay from the outside.
///
/// Every field is **cumulative since daemon start and never reset**,
/// except the two instantaneous gate depths (`active_requests`,
/// `queued_requests`): two probes `t1 < t2` always satisfy
/// `counter(t1) <= counter(t2)`, and the daemon's shutdown summary is
/// derived from these same values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests received (all kinds).
    pub requests: u64,
    /// Run requests admitted past the gate.
    pub accepted: u64,
    /// Run requests refused because the queue was full.
    pub rejected: u64,
    /// Run requests abandoned by the client (disconnect / write failure).
    pub cancelled: u64,
    /// Figure frames streamed to clients.
    pub figures_streamed: u64,
    /// Jobs actually executed (singleflight leaders).
    pub jobs_executed: u64,
    /// Jobs that joined another client's in-flight execution.
    pub jobs_shared: u64,
    /// Jobs served from the result memo without executing.
    pub jobs_cached: u64,
    /// Traces generated by the trace store.
    pub traces_generated: u64,
    /// Streamed trace replays.
    pub stream_replays: u64,
    /// Streamed replays that fell back to the generator.
    pub stream_fallbacks: u64,
    /// Run requests currently holding a gate slot.
    pub active_requests: u64,
    /// Run requests currently queued at the gate.
    pub queued_requests: u64,
}

impl ServeCounters {
    const FIELDS: usize = 13;

    fn encode_into(&self, out: &mut Vec<u8>) {
        for value in [
            self.requests,
            self.accepted,
            self.rejected,
            self.cancelled,
            self.figures_streamed,
            self.jobs_executed,
            self.jobs_shared,
            self.jobs_cached,
            self.traces_generated,
            self.stream_replays,
            self.stream_fallbacks,
            self.active_requests,
            self.queued_requests,
        ] {
            put_u64(out, value);
        }
    }

    fn decode_from(r: &mut FieldReader<'_>) -> Result<Self, WireError> {
        let mut fields = [0u64; Self::FIELDS];
        for field in &mut fields {
            *field = r.take_u64("serve counter")?;
        }
        let [requests, accepted, rejected, cancelled, figures_streamed, jobs_executed, jobs_shared, jobs_cached, traces_generated, stream_replays, stream_fallbacks, active_requests, queued_requests] =
            fields;
        Ok(ServeCounters {
            requests,
            accepted,
            rejected,
            cancelled,
            figures_streamed,
            jobs_executed,
            jobs_shared,
            jobs_cached,
            traces_generated,
            stream_replays,
            stream_fallbacks,
            active_requests,
            queued_requests,
        })
    }
}

const TAG_RESP_PONG: u8 = 0;
const TAG_RESP_FIGURE: u8 = 1;
const TAG_RESP_FIGURE_ERROR: u8 = 2;
const TAG_RESP_DOCUMENT: u8 = 3;
const TAG_RESP_DONE: u8 = 4;
const TAG_RESP_REJECTED: u8 = 5;
const TAG_RESP_STATS: u8 = 6;
const TAG_RESP_SHUTTING_DOWN: u8 = 7;
const TAG_RESP_METRICS: u8 = 8;

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// One completed figure, rendered exactly as the one-shot CLI prints it.
    Figure {
        /// Zero-based position in the expanded figure selection.
        index: u32,
        /// Figure id.
        id: String,
        /// Rendered table, byte-identical to `FigureResult::render()`.
        body: String,
    },
    /// One figure that failed; the run continues.
    FigureError {
        /// Zero-based position in the expanded figure selection.
        index: u32,
        /// Figure id.
        id: String,
        /// Campaign error rendering.
        message: String,
    },
    /// The complete JSON document for a [`RequestFormat::Json`] run,
    /// byte-identical to the one-shot CLI's stdout (sans trailing newline).
    Document {
        /// Pretty-printed JSON array.
        body: String,
    },
    /// The run finished; always the final frame of a successful run.
    Done {
        /// Figures attempted.
        figures: u32,
        /// Figures that failed.
        failed: u32,
    },
    /// The request was refused (bad request or server at capacity).
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServeCounters),
    /// Answer to [`Request::Shutdown`]; the daemon exits once idle.
    ShuttingDown,
    /// Answer to [`Request::Metrics`]: the daemon's telemetry registry as
    /// an `stms-metrics/v1` JSON document. Carried as opaque text so the
    /// snapshot schema can grow without another wire-codec bump.
    Metrics {
        /// Pretty-printed metrics snapshot JSON.
        json: String,
    },
}

impl Response {
    /// Encode to a message payload (to be wrapped by [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(TAG_RESP_PONG),
            Response::Figure { index, id, body } => {
                out.push(TAG_RESP_FIGURE);
                put_u32(&mut out, *index);
                put_str(&mut out, id);
                put_str(&mut out, body);
            }
            Response::FigureError { index, id, message } => {
                out.push(TAG_RESP_FIGURE_ERROR);
                put_u32(&mut out, *index);
                put_str(&mut out, id);
                put_str(&mut out, message);
            }
            Response::Document { body } => {
                out.push(TAG_RESP_DOCUMENT);
                put_str(&mut out, body);
            }
            Response::Done { figures, failed } => {
                out.push(TAG_RESP_DONE);
                put_u32(&mut out, *figures);
                put_u32(&mut out, *failed);
            }
            Response::Rejected { reason } => {
                out.push(TAG_RESP_REJECTED);
                put_str(&mut out, reason);
            }
            Response::Stats(counters) => {
                out.push(TAG_RESP_STATS);
                counters.encode_into(&mut out);
            }
            Response::ShuttingDown => out.push(TAG_RESP_SHUTTING_DOWN),
            Response::Metrics { json } => {
                out.push(TAG_RESP_METRICS);
                put_str(&mut out, json);
            }
        }
        out
    }

    /// Decode a message payload produced by [`Response::encode`]. Fail-closed.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = FieldReader::new(payload);
        let resp = match r.take_u8("response tag")? {
            TAG_RESP_PONG => Response::Pong,
            TAG_RESP_FIGURE => Response::Figure {
                index: r.take_u32("figure index")?,
                id: r.take_str("figure id")?,
                body: r.take_str("figure body")?,
            },
            TAG_RESP_FIGURE_ERROR => Response::FigureError {
                index: r.take_u32("figure index")?,
                id: r.take_str("figure id")?,
                message: r.take_str("figure error")?,
            },
            TAG_RESP_DOCUMENT => Response::Document {
                body: r.take_str("document body")?,
            },
            TAG_RESP_DONE => Response::Done {
                figures: r.take_u32("done figures")?,
                failed: r.take_u32("done failed")?,
            },
            TAG_RESP_REJECTED => Response::Rejected {
                reason: r.take_str("rejection reason")?,
            },
            TAG_RESP_STATS => Response::Stats(ServeCounters::decode_from(&mut r)?),
            TAG_RESP_SHUTTING_DOWN => Response::ShuttingDown,
            TAG_RESP_METRICS => Response::Metrics {
                json: r.take_str("metrics json")?,
            },
            tag => return Err(WireError::UnknownTag { tag }),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Frame and send one request.
pub fn send_request<W: Write>(w: &mut W, request: &Request) -> io::Result<()> {
    write_frame(w, &request.encode())
}

/// Receive and decode one request. `Ok(None)` means clean end-of-stream.
pub fn recv_request<R: Read>(r: &mut R) -> io::Result<Option<Request>> {
    match read_frame(r)? {
        Some(payload) => Request::decode(&payload).map(Some).map_err(invalid),
        None => Ok(None),
    }
}

/// Frame and send one response.
pub fn send_response<W: Write>(w: &mut W, response: &Response) -> io::Result<()> {
    write_frame(w, &response.encode())
}

/// Receive and decode one response. `Ok(None)` means clean end-of-stream.
pub fn recv_response<R: Read>(r: &mut R) -> io::Result<Option<Response>> {
    match read_frame(r)? {
        Some(payload) => Response::decode(&payload).map(Some).map_err(invalid),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let mut buf = Vec::new();
        send_request(&mut buf, req).unwrap();
        let got = recv_request(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(&got, req);
    }

    fn roundtrip_response(resp: &Response) {
        let mut buf = Vec::new();
        send_response(&mut buf, resp).unwrap();
        let got = recv_response(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(&got, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
        roundtrip_request(&Request::Metrics);
        roundtrip_request(&Request::Run {
            figures: vec![],
            format: RequestFormat::Text,
        });
        roundtrip_request(&Request::Run {
            figures: vec!["table2".into(), "fig4".into(), "all".into()],
            format: RequestFormat::Json,
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(&Response::Pong);
        roundtrip_response(&Response::ShuttingDown);
        roundtrip_response(&Response::Figure {
            index: 3,
            id: "fig4".into(),
            body: "Figure 4\n=======\n".into(),
        });
        roundtrip_response(&Response::FigureError {
            index: 0,
            id: "table2".into(),
            message: "1 of 8 jobs failed".into(),
        });
        roundtrip_response(&Response::Document {
            body: "[\n  {}\n]".into(),
        });
        roundtrip_response(&Response::Done {
            figures: 13,
            failed: 1,
        });
        roundtrip_response(&Response::Rejected {
            reason: "server at capacity".into(),
        });
        roundtrip_response(&Response::Stats(ServeCounters {
            requests: 1,
            accepted: 2,
            rejected: 3,
            cancelled: 4,
            figures_streamed: 5,
            jobs_executed: 6,
            jobs_shared: 7,
            jobs_cached: 8,
            traces_generated: 9,
            stream_replays: 10,
            stream_fallbacks: 11,
            active_requests: 12,
            queued_requests: 13,
        }));
        roundtrip_response(&Response::Metrics {
            json: "{\n  \"schema\": \"stms-metrics/v1\"\n}\n".into(),
        });
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        assert!(recv_request(&mut [].as_slice()).unwrap().is_none());
        assert!(recv_response(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn eof_inside_frame_is_an_error() {
        let mut buf = Vec::new();
        send_request(&mut buf, &Request::Ping).unwrap();
        for cut in 1..buf.len() {
            let err = recv_request(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let err = recv_request(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn flipped_payload_byte_rejected() {
        let mut buf = Vec::new();
        send_response(
            &mut buf,
            &Response::Figure {
                index: 0,
                id: "table2".into(),
                body: "body".into(),
            },
        )
        .unwrap();
        for pos in 4..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(
                recv_response(&mut bad.as_slice()).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_rejected() {
        assert_eq!(
            Request::decode(&[250]),
            Err(WireError::UnknownTag { tag: 250 })
        );
        assert_eq!(
            Response::decode(&[250]),
            Err(WireError::UnknownTag { tag: 250 })
        );
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        assert_eq!(
            Request::decode(&[]),
            Err(WireError::Truncated {
                what: "request tag"
            })
        );
    }

    #[test]
    fn figure_count_is_bounded() {
        let mut payload = vec![TAG_REQ_RUN, 0];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::FieldTooLarge {
                what: "figure count",
                ..
            })
        ));
    }
}
