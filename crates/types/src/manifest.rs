//! The sealed shard-manifest envelope for distributed campaigns.
//!
//! A campaign split across processes (`--shard I/N`) needs each shard to
//! hand its finished job outputs to a later merge stage as a single sealed
//! artifact. This module defines that artifact's *container*: a
//! [`ShardManifest`] carries the configuration fingerprint the shard ran
//! under, its 1-based `index` out of `count` shards, the
//! [`ShardBalance`] mode the fleet partitioned under, and an ordered list
//! of `(job fingerprint, payload bytes)` entries. The payload bytes are
//! opaque here — the campaign layer stores `JobOutput::encode` blobs — so
//! the envelope stays free of simulator types, exactly like [`crate::blob`].
//!
//! On disk a manifest is the body encoding sealed in the shared
//! [`crate::blob`] envelope under [`MANIFEST_CODEC_VERSION`], keyed by the
//! fingerprint of the manifest's own header (config fingerprint, index,
//! count). A reader cannot predict that key before parsing, so the open
//! path peeks the envelope with [`crate::blob::parse_header`] and then
//! cross-checks the recorded key against the header it decoded — a renamed
//! or spliced file fails closed.
//!
//! # Versions
//!
//! The body layout is versioned through the blob codec field, mirroring the
//! trace chunk codec: [`ShardManifest::open`] and [`ShardManifest::scan`]
//! dispatch on the recorded version, so every historical manifest stays
//! readable with no flags.
//!
//! * **v2** (legacy): a flat run of entries followed by the timing section.
//!   Readable, no longer written (except by [`ShardManifest::seal_v2`],
//!   which exists for cross-version tests). Carries no balance mode; v2
//!   fleets always partitioned by `fingerprint % count`, so readers report
//!   [`ShardBalance::Count`].
//! * **v3** (current): entries are packed into *chunks*, each framed by its
//!   own length and checksum — the same per-chunk framing the columnar
//!   trace codec uses. [`ShardManifest::scan`] exploits the framing to
//!   validate a manifest of any size in bounded memory (one chunk resident
//!   at a time) while handing each entry's absolute payload offset to the
//!   caller, so a merge can index payloads and read them back on demand
//!   instead of materializing every output at once.
//!
//! # Example
//!
//! ```
//! use stms_types::manifest::{ShardBalance, ShardManifest};
//! use stms_types::Fingerprint;
//!
//! let manifest = ShardManifest {
//!     config: Fingerprint::from_raw(7),
//!     index: 1,
//!     count: 2,
//!     balance: ShardBalance::Cost,
//!     entries: vec![(Fingerprint::from_raw(11), b"output".to_vec())],
//!     timings: Vec::new(),
//! };
//! let sealed = manifest.seal();
//! let back = ShardManifest::open(&sealed).unwrap();
//! assert_eq!(back, manifest);
//! ```

use crate::blob::{self, BlobError};
use crate::fingerprint::{Fingerprint, Fingerprinter};
use std::fmt;
use std::io::Read;

/// Version of the manifest body layout written by [`ShardManifest::seal`].
/// Bump when the encoding changes and teach the readers to dispatch; v2
/// appended the per-job timing section, v3 added the balance-mode header
/// byte and chunk-framed entries for bounded-memory streaming reads.
pub const MANIFEST_CODEC_VERSION: u16 = 3;

/// The legacy flat body layout (readable, no longer written).
pub const MANIFEST_CODEC_V2: u16 = 2;

/// Target encoded size of one entry chunk in a v3 manifest. Chunks are
/// packed greedily: an entry larger than the target gets a chunk of its
/// own (entries are never split, so every payload stays contiguous on
/// disk and addressable by one `(offset, len)` pair).
pub const MANIFEST_CHUNK_BYTES: usize = 256 * 1024;

/// How a fleet partitioned the distinct job grid across shards. Sealed
/// into every v3 manifest so a merge can verify all shards agreed on the
/// same partition function before trusting their coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardBalance {
    /// Modulo partition: shard `i` of `n` owns jobs with
    /// `fingerprint % n == i - 1`. Splits job *count* evenly.
    #[default]
    Count,
    /// Greedy LPT bin-packing over predicted job costs: splits predicted
    /// *work* evenly. Deterministic, so every shard computes the same
    /// partition from the same grid and cost model.
    Cost,
}

impl ShardBalance {
    /// The byte this mode encodes to in a v3 manifest header.
    pub fn code(self) -> u8 {
        match self {
            ShardBalance::Count => 0,
            ShardBalance::Cost => 1,
        }
    }

    /// Decodes a v3 header byte; `None` for bytes no known mode uses.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ShardBalance::Count),
            1 => Some(ShardBalance::Cost),
            _ => None,
        }
    }

    /// The CLI spelling of this mode (`count` / `cost`).
    pub fn label(self) -> &'static str {
        match self {
            ShardBalance::Count => "count",
            ShardBalance::Cost => "cost",
        }
    }

    /// Parses the CLI spelling accepted by `--shard-balance`.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "count" => Some(ShardBalance::Count),
            "cost" => Some(ShardBalance::Cost),
            _ => None,
        }
    }
}

impl fmt::Display for ShardBalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Wall-clock phase timings of one job as measured by the shard that ran
/// it, keyed by the same stable job fingerprint as the output entries.
/// Merge folds these into fleet-wide phase histograms — the calibration
/// input for cost-model shard partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJobTiming {
    /// Stable fingerprint of the job the timing belongs to.
    pub fingerprint: Fingerprint,
    /// Nanoseconds the job spent queued in the pool before starting.
    pub queue_ns: u64,
    /// Nanoseconds the job spent executing (including memo lookups).
    pub run_ns: u64,
}

/// One shard's sealed output slice: which configuration and shard it came
/// from, plus every finished job keyed by its stable fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Fingerprint of the campaign configuration the shard ran under; merge
    /// rejects manifests whose configuration disagrees with its own.
    pub config: Fingerprint,
    /// 1-based shard index.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
    /// Partition function the fleet ran under. Merge rejects mixed fleets:
    /// a `cost` shard and a `count` shard of the same campaign computed
    /// different ownership and cannot have consistent coverage.
    pub balance: ShardBalance,
    /// `(job fingerprint, opaque payload)` pairs, in the shard's job order.
    pub entries: Vec<(Fingerprint, Vec<u8>)>,
    /// Per-job phase timings measured on this shard. Independent of
    /// `entries`: a timing may describe a job whose output was deduplicated
    /// away, and an entry may carry no timing (e.g. a pure memo hit).
    pub timings: Vec<ShardJobTiming>,
}

/// One entry surfaced by [`ShardManifest::scan`], with enough position
/// information for the caller to read the payload back later without
/// keeping it in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry<'a> {
    /// Stable fingerprint of the job this output belongs to.
    pub fingerprint: Fingerprint,
    /// Absolute byte offset of the payload within the sealed file.
    pub offset: u64,
    /// The payload bytes (borrowed from the chunk buffer; copy to keep).
    pub payload: &'a [u8],
}

/// Everything [`ShardManifest::scan`] retains after streaming a manifest:
/// the header fields and the (small) timing section, but none of the
/// entry payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestScan {
    /// Fingerprint of the campaign configuration the shard ran under.
    pub config: Fingerprint,
    /// 1-based shard index.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
    /// Partition function the fleet ran under ([`ShardBalance::Count`] for
    /// v2 manifests, which predate the field).
    pub balance: ShardBalance,
    /// Number of entries the scan surfaced.
    pub entry_count: u64,
    /// Per-job phase timings measured on the shard.
    pub timings: Vec<ShardJobTiming>,
}

impl ShardManifest {
    /// The blob key a manifest with this header seals under: the fingerprint
    /// of `(config, index, count)` behind a versioned domain tag.
    pub fn seal_key(config: Fingerprint, index: u32, count: u32) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.write_str("stms-shard-manifest/v1");
        fp.write_u64(config.raw() as u64);
        fp.write_u64((config.raw() >> 64) as u64);
        fp.write_u32(index);
        fp.write_u32(count);
        fp.finish()
    }

    /// The conventional file name of this manifest, e.g.
    /// `shard-1-of-2.stms`.
    pub fn file_name(&self) -> String {
        format!("shard-{}-of-{}.stms", self.index, self.count)
    }

    /// Encodes and seals the manifest into the bytes written to disk
    /// (current layout, [`MANIFEST_CODEC_VERSION`]).
    pub fn seal(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.config.raw().to_le_bytes());
        body.extend_from_slice(&self.index.to_le_bytes());
        body.extend_from_slice(&self.count.to_le_bytes());
        body.push(self.balance.code());
        body.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        // Pack entries greedily into framed chunks. Chunk boundaries never
        // split an entry, so a chunk holding one oversized payload may
        // exceed the target; that keeps every payload contiguous.
        let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0;
        let mut chunk_bytes = 0usize;
        for (i, (_, payload)) in self.entries.iter().enumerate() {
            let encoded = 24 + payload.len();
            if i > start && chunk_bytes + encoded > MANIFEST_CHUNK_BYTES {
                chunks.push(start..i);
                start = i;
                chunk_bytes = 0;
            }
            chunk_bytes += encoded;
        }
        if start < self.entries.len() {
            chunks.push(start..self.entries.len());
        }
        body.extend_from_slice(&(chunks.len() as u64).to_le_bytes());
        let mut chunk_body = Vec::new();
        for chunk in chunks {
            chunk_body.clear();
            for (fingerprint, payload) in &self.entries[chunk] {
                chunk_body.extend_from_slice(&fingerprint.raw().to_le_bytes());
                chunk_body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                chunk_body.extend_from_slice(payload);
            }
            let mut hasher = Fingerprinter::new();
            hasher.write_bytes(&chunk_body);
            body.extend_from_slice(&(chunk_body.len() as u64).to_le_bytes());
            body.extend_from_slice(&chunk_body);
            body.extend_from_slice(&blob::checksum_finish(&hasher).to_le_bytes());
        }
        encode_timings(&mut body, &self.timings);
        blob::seal(
            MANIFEST_CODEC_VERSION,
            Self::seal_key(self.config, self.index, self.count),
            &body,
        )
    }

    /// Encodes the manifest in the legacy v2 flat layout. Kept so
    /// cross-version tests (and tools that must interoperate with v2-era
    /// fleets) can produce historical files; v2 has no balance field, so
    /// reopening always reports [`ShardBalance::Count`].
    pub fn seal_v2(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.config.raw().to_le_bytes());
        body.extend_from_slice(&self.index.to_le_bytes());
        body.extend_from_slice(&self.count.to_le_bytes());
        body.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (fingerprint, payload) in &self.entries {
            body.extend_from_slice(&fingerprint.raw().to_le_bytes());
            body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            body.extend_from_slice(payload);
        }
        encode_timings(&mut body, &self.timings);
        blob::seal(
            MANIFEST_CODEC_V2,
            Self::seal_key(self.config, self.index, self.count),
            &body,
        )
    }

    /// Unseals and decodes a manifest previously produced by
    /// [`ShardManifest::seal`] (or a legacy v2 writer — the recorded codec
    /// version picks the decoder).
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError`] when the blob envelope fails, the body is
    /// malformed, the shard header is inconsistent (`index` outside
    /// `1..=count`), the recorded blob key disagrees with the decoded header,
    /// or an entry fingerprint repeats within the manifest.
    pub fn open(data: &[u8]) -> Result<Self, ManifestError> {
        let mut entries = Vec::new();
        let scan = Self::scan(data, |entry| {
            entries.push((entry.fingerprint, entry.payload.to_vec()));
        })?;
        Ok(ShardManifest {
            config: scan.config,
            index: scan.index,
            count: scan.count,
            balance: scan.balance,
            entries,
            timings: scan.timings,
        })
    }

    /// Streams a sealed manifest from `reader`, invoking `on_entry` once per
    /// entry and returning the header and timing section. Version-dispatched
    /// like [`ShardManifest::open`], with one memory guarantee the eager
    /// path cannot give: for v3 files only one chunk buffer is resident at a
    /// time, so a merge over million-job manifests can validate everything
    /// and index payload offsets without materializing any payload set. (A
    /// v2 file has no chunk framing and is transiently buffered whole.)
    ///
    /// Every validation `open` performs happens here too — envelope, key,
    /// shard coordinates, per-chunk checksums, the whole-payload checksum
    /// (accumulated incrementally), duplicate fingerprints, trailing data.
    ///
    /// # Errors
    ///
    /// Same as [`ShardManifest::open`], plus [`ManifestError::Io`] when the
    /// reader itself fails.
    pub fn scan<R: Read>(
        reader: R,
        mut on_entry: impl FnMut(ManifestEntry<'_>),
    ) -> Result<ManifestScan, ManifestError> {
        let mut reader = reader;
        let mut header_bytes = [0u8; blob::HEADER_LEN];
        let mut got = 0;
        while got < blob::HEADER_LEN {
            match reader.read(&mut header_bytes[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) => {
                    return Err(ManifestError::Io {
                        error: err.to_string(),
                    })
                }
            }
        }
        // On a short file, let `parse_header` name the first missing field
        // so truncated prefixes read exactly as they always have.
        let header = blob::parse_header(&header_bytes[..got])?;
        match header.codec_version {
            MANIFEST_CODEC_V2 => scan_v2(&header_bytes, reader, &mut on_entry),
            MANIFEST_CODEC_VERSION => scan_v3(header, reader, &mut on_entry),
            found => Err(ManifestError::Blob(BlobError::CodecVersionMismatch {
                found,
                expected: MANIFEST_CODEC_VERSION,
            })),
        }
    }
}

fn encode_timings(body: &mut Vec<u8>, timings: &[ShardJobTiming]) {
    body.extend_from_slice(&(timings.len() as u64).to_le_bytes());
    for timing in timings {
        body.extend_from_slice(&timing.fingerprint.raw().to_le_bytes());
        body.extend_from_slice(&timing.queue_ns.to_le_bytes());
        body.extend_from_slice(&timing.run_ns.to_le_bytes());
    }
}

fn read_exact<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), ManifestError> {
    reader.read_exact(buf).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            ManifestError::Truncated { what }
        } else {
            ManifestError::Io {
                error: err.to_string(),
            }
        }
    })
}

/// Decodes the legacy flat layout. The file was already partially consumed
/// (its blob header); the rest is buffered whole — v2 predates chunk
/// framing, so its single trailing checksum can only be verified against
/// the complete payload.
fn scan_v2<R: Read>(
    header_bytes: &[u8; blob::HEADER_LEN],
    mut reader: R,
    on_entry: &mut impl FnMut(ManifestEntry<'_>),
) -> Result<ManifestScan, ManifestError> {
    let mut data = header_bytes.to_vec();
    reader
        .read_to_end(&mut data)
        .map_err(|err| ManifestError::Io {
            error: err.to_string(),
        })?;
    let (recorded_key, body) = blob::open_any(&data, MANIFEST_CODEC_V2)?;
    let mut cursor = Cursor { body, at: 0 };
    let config = Fingerprint::from_raw(u128::from_le_bytes(
        cursor
            .take(16, "config fingerprint")?
            .try_into()
            .expect("16 bytes"),
    ));
    let index = u32::from_le_bytes(cursor.take(4, "shard index")?.try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(cursor.take(4, "shard count")?.try_into().expect("4 bytes"));
    if count == 0 || index == 0 || index > count {
        return Err(ManifestError::BadShard { index, count });
    }
    if recorded_key != ShardManifest::seal_key(config, index, count) {
        return Err(ManifestError::KeyMismatch);
    }
    let entry_count =
        u64::from_le_bytes(cursor.take(8, "entry count")?.try_into().expect("8 bytes")) as usize;
    let mut seen = std::collections::HashSet::with_capacity(entry_count.min(1 << 16));
    for _ in 0..entry_count {
        let fingerprint = Fingerprint::from_raw(u128::from_le_bytes(
            cursor
                .take(16, "entry fingerprint")?
                .try_into()
                .expect("16 bytes"),
        ));
        let len = u64::from_le_bytes(cursor.take(8, "entry length")?.try_into().expect("8 bytes"))
            as usize;
        let payload_offset = (blob::HEADER_LEN + cursor.at) as u64;
        let payload = cursor.take(len, "entry payload")?;
        if !seen.insert(fingerprint) {
            return Err(ManifestError::DuplicateEntry { fingerprint });
        }
        on_entry(ManifestEntry {
            fingerprint,
            offset: payload_offset,
            payload,
        });
    }
    let timing_count =
        u64::from_le_bytes(cursor.take(8, "timing count")?.try_into().expect("8 bytes")) as usize;
    let mut timings = Vec::with_capacity(timing_count.min(1 << 16));
    for _ in 0..timing_count {
        let fingerprint = Fingerprint::from_raw(u128::from_le_bytes(
            cursor
                .take(16, "timing fingerprint")?
                .try_into()
                .expect("16 bytes"),
        ));
        let queue_ns =
            u64::from_le_bytes(cursor.take(8, "timing queue")?.try_into().expect("8 bytes"));
        let run_ns = u64::from_le_bytes(cursor.take(8, "timing run")?.try_into().expect("8 bytes"));
        timings.push(ShardJobTiming {
            fingerprint,
            queue_ns,
            run_ns,
        });
    }
    if cursor.at != cursor.body.len() {
        return Err(ManifestError::TrailingData);
    }
    Ok(ManifestScan {
        config,
        index,
        count,
        balance: ShardBalance::Count,
        entry_count: entry_count as u64,
        timings,
    })
}

/// A bounds-checked cursor over an in-memory manifest body (the v2 path).
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ManifestError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(ManifestError::Truncated { what })?;
        let slice = self
            .body
            .get(self.at..end)
            .ok_or(ManifestError::Truncated { what })?;
        self.at = end;
        Ok(slice)
    }
}

/// Streaming body reader for the v3 path: every read is bounds-checked
/// against the declared payload length, folded into the incremental
/// whole-payload checksum, and tracked so absolute offsets can be
/// reported.
struct BodyReader<R> {
    reader: R,
    consumed: u64,
    payload_len: u64,
    hasher: Fingerprinter,
}

impl<R: Read> BodyReader<R> {
    fn read_body(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), ManifestError> {
        if self.consumed + buf.len() as u64 > self.payload_len {
            return Err(ManifestError::Truncated { what });
        }
        read_exact(&mut self.reader, buf, what)?;
        self.hasher.write_bytes(buf);
        self.consumed += buf.len() as u64;
        Ok(())
    }
}

/// Streams the chunk-framed v3 layout: fixed header, framed entry chunks
/// (validated one at a time), timing section, whole-payload checksum.
fn scan_v3<R: Read>(
    header: blob::BlobHeader,
    reader: R,
    on_entry: &mut impl FnMut(ManifestEntry<'_>),
) -> Result<ManifestScan, ManifestError> {
    let payload_len = header.payload_len;
    let mut body = BodyReader {
        reader,
        consumed: 0,
        payload_len,
        hasher: Fingerprinter::new(),
    };
    let mut fixed = [0u8; 16 + 4 + 4 + 1 + 8 + 8];
    body.read_body(&mut fixed, "manifest header")?;
    let config = Fingerprint::from_raw(u128::from_le_bytes(fixed[0..16].try_into().unwrap()));
    let index = u32::from_le_bytes(fixed[16..20].try_into().unwrap());
    let count = u32::from_le_bytes(fixed[20..24].try_into().unwrap());
    let balance_code = fixed[24];
    let entry_count = u64::from_le_bytes(fixed[25..33].try_into().unwrap());
    let chunk_count = u64::from_le_bytes(fixed[33..41].try_into().unwrap());
    if count == 0 || index == 0 || index > count {
        return Err(ManifestError::BadShard { index, count });
    }
    if header.key != ShardManifest::seal_key(config, index, count) {
        return Err(ManifestError::KeyMismatch);
    }
    let balance = ShardBalance::from_code(balance_code)
        .ok_or(ManifestError::BadBalance { code: balance_code })?;
    // An entry costs at least 24 framing bytes, a chunk at least 16: a
    // vandalized count cannot force an absurd allocation.
    if entry_count.saturating_mul(24) > payload_len || chunk_count.saturating_mul(16) > payload_len
    {
        return Err(ManifestError::Truncated {
            what: "entry count",
        });
    }
    let mut seen = std::collections::HashSet::with_capacity((entry_count as usize).min(1 << 16));
    let mut surfaced: u64 = 0;
    let mut chunk = Vec::new();
    for chunk_index in 0..chunk_count {
        let mut frame = [0u8; 8];
        body.read_body(&mut frame, "chunk length")?;
        let chunk_len = u64::from_le_bytes(frame);
        if body.consumed + chunk_len + 8 > payload_len {
            return Err(ManifestError::Truncated { what: "chunk body" });
        }
        chunk.clear();
        chunk.resize(chunk_len as usize, 0);
        let chunk_start = blob::HEADER_LEN as u64 + body.consumed;
        body.read_body(&mut chunk, "chunk body")?;
        let mut check = [0u8; 8];
        body.read_body(&mut check, "chunk checksum")?;
        let mut chunk_hasher = Fingerprinter::new();
        chunk_hasher.write_bytes(&chunk);
        if u64::from_le_bytes(check) != blob::checksum_finish(&chunk_hasher) {
            return Err(ManifestError::ChunkChecksum { chunk: chunk_index });
        }
        // Walk the entries packed inside this chunk; they must tile it
        // exactly.
        let mut at = 0usize;
        while at < chunk.len() {
            if chunk.len() - at < 24 {
                return Err(ManifestError::Truncated {
                    what: "chunk entry",
                });
            }
            let fingerprint =
                Fingerprint::from_raw(u128::from_le_bytes(chunk[at..at + 16].try_into().unwrap()));
            let len = u64::from_le_bytes(chunk[at + 16..at + 24].try_into().unwrap()) as usize;
            at += 24;
            let payload = chunk.get(at..at + len).ok_or(ManifestError::Truncated {
                what: "chunk entry",
            })?;
            if !seen.insert(fingerprint) {
                return Err(ManifestError::DuplicateEntry { fingerprint });
            }
            on_entry(ManifestEntry {
                fingerprint,
                offset: chunk_start + at as u64,
                payload,
            });
            at += len;
            surfaced += 1;
        }
    }
    if surfaced != entry_count {
        return Err(ManifestError::Truncated {
            what: "declared entries",
        });
    }
    let mut frame = [0u8; 8];
    body.read_body(&mut frame, "timing count")?;
    let timing_count = u64::from_le_bytes(frame);
    if body.consumed + timing_count.saturating_mul(32) > payload_len {
        return Err(ManifestError::Truncated {
            what: "timing count",
        });
    }
    let mut timings = Vec::with_capacity((timing_count as usize).min(1 << 16));
    for _ in 0..timing_count {
        let mut record = [0u8; 32];
        body.read_body(&mut record, "timing record")?;
        timings.push(ShardJobTiming {
            fingerprint: Fingerprint::from_raw(u128::from_le_bytes(
                record[0..16].try_into().unwrap(),
            )),
            queue_ns: u64::from_le_bytes(record[16..24].try_into().unwrap()),
            run_ns: u64::from_le_bytes(record[24..32].try_into().unwrap()),
        });
    }
    if body.consumed != payload_len {
        return Err(ManifestError::TrailingData);
    }
    let mut recorded = [0u8; 8];
    read_exact(&mut body.reader, &mut recorded, "checksum")?;
    if u64::from_le_bytes(recorded) != blob::checksum_finish(&body.hasher) {
        return Err(ManifestError::Blob(BlobError::ChecksumMismatch));
    }
    let mut extra = [0u8; 1];
    match body.reader.read(&mut extra) {
        Ok(0) => {}
        Ok(_) => return Err(ManifestError::Blob(BlobError::TrailingData)),
        Err(err) => {
            return Err(ManifestError::Io {
                error: err.to_string(),
            })
        }
    }
    Ok(ManifestScan {
        config,
        index,
        count,
        balance,
        entry_count,
        timings,
    })
}

/// Why a sealed shard manifest could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The outer sealed-blob envelope failed (corruption, truncation, a
    /// different codec version, not a blob at all).
    Blob(BlobError),
    /// The manifest body ended before the named field.
    Truncated {
        /// Which encoded field was cut off.
        what: &'static str,
    },
    /// The header's shard coordinates are inconsistent.
    BadShard {
        /// Index found in the header (must be `1..=count`).
        index: u32,
        /// Count found in the header (must be non-zero).
        count: u32,
    },
    /// The v3 balance-mode byte is one this build does not know.
    BadBalance {
        /// The unknown byte.
        code: u8,
    },
    /// The blob key does not match the decoded header — a renamed or
    /// spliced file.
    KeyMismatch,
    /// The same job fingerprint appears twice within one manifest.
    DuplicateEntry {
        /// The repeated fingerprint.
        fingerprint: Fingerprint,
    },
    /// A framed entry chunk failed its own checksum.
    ChunkChecksum {
        /// Zero-based index of the corrupt chunk.
        chunk: u64,
    },
    /// Extra bytes follow the last entry.
    TrailingData,
    /// The underlying reader failed (streaming scans only).
    Io {
        /// The I/O error message.
        error: String,
    },
}

impl From<BlobError> for ManifestError {
    fn from(err: BlobError) -> Self {
        ManifestError::Blob(err)
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Blob(err) => write!(f, "shard manifest envelope: {err}"),
            ManifestError::Truncated { what } => {
                write!(f, "shard manifest truncated at {what}")
            }
            ManifestError::BadShard { index, count } => {
                write!(f, "shard manifest claims invalid shard {index}/{count}")
            }
            ManifestError::BadBalance { code } => {
                write!(f, "shard manifest has unknown balance mode byte {code}")
            }
            ManifestError::KeyMismatch => {
                write!(f, "shard manifest key does not match its header")
            }
            ManifestError::DuplicateEntry { fingerprint } => {
                write!(f, "shard manifest repeats job fingerprint {fingerprint}")
            }
            ManifestError::ChunkChecksum { chunk } => {
                write!(f, "shard manifest entry chunk {chunk} failed its checksum")
            }
            ManifestError::TrailingData => write!(f, "trailing bytes after shard manifest"),
            ManifestError::Io { error } => write!(f, "shard manifest read failed: {error}"),
        }
    }
}

impl std::error::Error for ManifestError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            config: Fingerprint::from_raw(0xfeed_beef),
            index: 2,
            count: 3,
            balance: ShardBalance::Count,
            entries: vec![
                (Fingerprint::from_raw(1), vec![1, 2, 3]),
                (Fingerprint::from_raw(2), Vec::new()),
                (Fingerprint::from_raw(u128::MAX), vec![0; 100]),
            ],
            timings: vec![
                ShardJobTiming {
                    fingerprint: Fingerprint::from_raw(1),
                    queue_ns: 1_200,
                    run_ns: 88_000,
                },
                ShardJobTiming {
                    fingerprint: Fingerprint::from_raw(u128::MAX),
                    queue_ns: 0,
                    run_ns: u64::MAX,
                },
            ],
        }
    }

    #[test]
    fn seal_open_round_trips() {
        let manifest = sample();
        assert_eq!(ShardManifest::open(&manifest.seal()).unwrap(), manifest);
        // Empty manifests are legal (a shard may own no jobs).
        let empty = ShardManifest {
            entries: Vec::new(),
            ..sample()
        };
        assert_eq!(ShardManifest::open(&empty.seal()).unwrap(), empty);
        assert_eq!(manifest.file_name(), "shard-2-of-3.stms");
    }

    #[test]
    fn balance_mode_survives_the_round_trip() {
        let manifest = ShardManifest {
            balance: ShardBalance::Cost,
            ..sample()
        };
        let back = ShardManifest::open(&manifest.seal()).unwrap();
        assert_eq!(back.balance, ShardBalance::Cost);
        assert_eq!(back, manifest);
    }

    #[test]
    fn v2_files_stay_readable_and_report_count_balance() {
        // Cross-version: a legacy flat-layout file opens with no flags and
        // decodes identically (v2 predates the balance field, so it reads
        // back as the modulo partition every v2 fleet used).
        let manifest = sample();
        let legacy = manifest.seal_v2();
        let back = ShardManifest::open(&legacy).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.balance, ShardBalance::Count);
        // And the two encodings genuinely differ on disk.
        assert_ne!(legacy, manifest.seal());
    }

    #[test]
    fn unknown_codec_versions_are_rejected() {
        let body = [0u8; 4];
        let sealed = blob::seal(9, Fingerprint::from_raw(1), &body);
        assert!(matches!(
            ShardManifest::open(&sealed),
            Err(ManifestError::Blob(BlobError::CodecVersionMismatch {
                found: 9,
                expected: MANIFEST_CODEC_VERSION,
            }))
        ));
    }

    #[test]
    fn scan_streams_entries_with_their_disk_offsets() {
        // Thirty 10 KiB payloads overflow one 256 KiB chunk target, so this
        // exercises multi-chunk framing; every reported offset must point
        // at the payload bytes inside the sealed file.
        let manifest = ShardManifest {
            entries: (0..30)
                .map(|i| (Fingerprint::from_raw(1000 + i), vec![i as u8; 10 * 1024]))
                .collect(),
            ..sample()
        };
        for sealed in [manifest.seal(), manifest.seal_v2()] {
            let mut seen = Vec::new();
            let scan = ShardManifest::scan(&sealed[..], |entry| {
                let at = entry.offset as usize;
                assert_eq!(&sealed[at..at + entry.payload.len()], entry.payload);
                seen.push((entry.fingerprint, entry.payload.to_vec()));
            })
            .unwrap();
            assert_eq!(seen, manifest.entries);
            assert_eq!(scan.entry_count, 30);
            assert_eq!(scan.timings, manifest.timings);
            assert_eq!(
                (scan.config, scan.index, scan.count),
                (manifest.config, 2, 3)
            );
        }
    }

    #[test]
    fn corruption_and_truncation_fail_closed() {
        for sealed in [sample().seal(), sample().seal_v2()] {
            let mut bad = sealed.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0xff;
            assert!(ShardManifest::open(&bad).is_err());
            assert!(ShardManifest::open(&sealed[..sealed.len() / 2]).is_err());
        }
        assert!(matches!(
            ShardManifest::open(b"not a manifest"),
            Err(ManifestError::Blob(_))
        ));
    }

    #[test]
    fn chunk_corruption_names_the_chunk() {
        // Corrupt one payload byte inside the first framed chunk of a v3
        // manifest: the per-chunk checksum catches it before the trailing
        // whole-payload checksum is even reached by a streaming scan.
        let manifest = ShardManifest {
            entries: vec![(Fingerprint::from_raw(1), vec![7u8; 64])],
            timings: Vec::new(),
            ..sample()
        };
        let mut sealed = manifest.seal();
        // Fixed header is 41 bytes into the body; chunk length frame is 8
        // more; the first entry's payload starts 24 bytes after that.
        let payload_at = blob::HEADER_LEN + 41 + 8 + 24;
        sealed[payload_at] ^= 0xff;
        assert_eq!(
            ShardManifest::scan(&sealed[..], |_| {}),
            Err(ManifestError::ChunkChecksum { chunk: 0 })
        );
    }

    #[test]
    fn unknown_balance_bytes_are_rejected() {
        let manifest = sample();
        let mut sealed = manifest.seal();
        // The balance byte sits 24 bytes into the body. Re-seal so the
        // checksums stay valid and only the mode byte is unknown.
        let (_, body) = blob::open_any(&sealed, MANIFEST_CODEC_VERSION).unwrap();
        let mut body = body.to_vec();
        body[24] = 9;
        sealed = blob::seal(
            MANIFEST_CODEC_VERSION,
            ShardManifest::seal_key(manifest.config, manifest.index, manifest.count),
            &body,
        );
        // The chunk checksums are untouched, so only the mode byte trips.
        assert_eq!(
            ShardManifest::open(&sealed),
            Err(ManifestError::BadBalance { code: 9 })
        );
    }

    #[test]
    fn inconsistent_headers_are_rejected() {
        // index 0, index > count, count 0: all invalid. Build them by
        // sealing a legacy body by hand so the blob layer is satisfied.
        for (index, count) in [(0u32, 2u32), (3, 2), (0, 0)] {
            let mut body = Vec::new();
            body.extend_from_slice(&7u128.to_le_bytes());
            body.extend_from_slice(&index.to_le_bytes());
            body.extend_from_slice(&count.to_le_bytes());
            body.extend_from_slice(&0u64.to_le_bytes()); // entries
            body.extend_from_slice(&0u64.to_le_bytes()); // timings
            let sealed = blob::seal(
                MANIFEST_CODEC_V2,
                ShardManifest::seal_key(Fingerprint::from_raw(7), index, count),
                &body,
            );
            assert_eq!(
                ShardManifest::open(&sealed),
                Err(ManifestError::BadShard { index, count })
            );
        }
    }

    #[test]
    fn spliced_header_fails_the_key_check() {
        // Seal a valid manifest under the WRONG key (as if a shard-1 file
        // body were copied into a shard-2 file's envelope).
        let manifest = sample();
        let mut body = Vec::new();
        body.extend_from_slice(&manifest.config.raw().to_le_bytes());
        body.extend_from_slice(&manifest.index.to_le_bytes());
        body.extend_from_slice(&manifest.count.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes()); // entries
        body.extend_from_slice(&0u64.to_le_bytes()); // timings
        let wrong_key = ShardManifest::seal_key(manifest.config, manifest.index + 1, 9);
        let sealed = blob::seal(MANIFEST_CODEC_V2, wrong_key, &body);
        assert_eq!(
            ShardManifest::open(&sealed),
            Err(ManifestError::KeyMismatch)
        );
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        let manifest = ShardManifest {
            entries: vec![
                (Fingerprint::from_raw(5), vec![1]),
                (Fingerprint::from_raw(5), vec![2]),
            ],
            ..sample()
        };
        for sealed in [manifest.seal(), manifest.seal_v2()] {
            assert_eq!(
                ShardManifest::open(&sealed),
                Err(ManifestError::DuplicateEntry {
                    fingerprint: Fingerprint::from_raw(5)
                })
            );
        }
    }

    #[test]
    fn seal_keys_separate_shard_coordinates() {
        let config = Fingerprint::from_raw(9);
        let base = ShardManifest::seal_key(config, 1, 2);
        assert_eq!(base, ShardManifest::seal_key(config, 1, 2));
        assert_ne!(base, ShardManifest::seal_key(config, 2, 2));
        assert_ne!(base, ShardManifest::seal_key(config, 1, 3));
        assert_ne!(
            base,
            ShardManifest::seal_key(Fingerprint::from_raw(10), 1, 2)
        );
    }

    #[test]
    fn balance_parses_its_cli_spellings() {
        assert_eq!(ShardBalance::parse("count"), Some(ShardBalance::Count));
        assert_eq!(ShardBalance::parse("cost"), Some(ShardBalance::Cost));
        assert_eq!(ShardBalance::parse("weight"), None);
        for mode in [ShardBalance::Count, ShardBalance::Cost] {
            assert_eq!(ShardBalance::from_code(mode.code()), Some(mode));
            assert_eq!(ShardBalance::parse(mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(ShardBalance::from_code(7), None);
    }

    #[test]
    fn errors_render_their_cause() {
        assert!(ManifestError::KeyMismatch.to_string().contains("key"));
        assert!(ManifestError::BadShard { index: 3, count: 2 }
            .to_string()
            .contains("3/2"));
        assert!(ManifestError::BadBalance { code: 9 }
            .to_string()
            .contains("9"));
        assert!(ManifestError::ChunkChecksum { chunk: 4 }
            .to_string()
            .contains("chunk 4"));
        assert!(ManifestError::Io {
            error: "broken pipe".into()
        }
        .to_string()
        .contains("broken pipe"));
        assert!(ManifestError::from(BlobError::BadMagic)
            .to_string()
            .contains("envelope"));
    }
}
