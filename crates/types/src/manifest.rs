//! The sealed shard-manifest envelope for distributed campaigns.
//!
//! A campaign split across processes (`--shard I/N`) needs each shard to
//! hand its finished job outputs to a later merge stage as a single sealed
//! artifact. This module defines that artifact's *container*: a
//! [`ShardManifest`] carries the configuration fingerprint the shard ran
//! under, its 1-based `index` out of `count` shards, and an ordered list of
//! `(job fingerprint, payload bytes)` entries. The payload bytes are opaque
//! here — the campaign layer stores `JobOutput::encode` blobs — so the
//! envelope stays free of simulator types, exactly like [`crate::blob`].
//!
//! On disk a manifest is the body encoding sealed in the shared
//! [`crate::blob`] envelope under [`MANIFEST_CODEC_VERSION`], keyed by the
//! fingerprint of the manifest's own header (config fingerprint, index,
//! count). A reader cannot predict that key before parsing, so
//! [`ShardManifest::open`] unseals with [`crate::blob::open_any`] and then
//! cross-checks the recorded key against the header it decoded — a renamed
//! or spliced file fails closed.
//!
//! # Example
//!
//! ```
//! use stms_types::manifest::ShardManifest;
//! use stms_types::Fingerprint;
//!
//! let manifest = ShardManifest {
//!     config: Fingerprint::from_raw(7),
//!     index: 1,
//!     count: 2,
//!     entries: vec![(Fingerprint::from_raw(11), b"output".to_vec())],
//!     timings: Vec::new(),
//! };
//! let sealed = manifest.seal();
//! let back = ShardManifest::open(&sealed).unwrap();
//! assert_eq!(back, manifest);
//! ```

use crate::blob::{self, BlobError};
use crate::fingerprint::{Fingerprint, Fingerprinter};
use std::fmt;

/// Version of the manifest body layout. Bump when the encoding changes; old
/// files then fail the blob codec check and merge reports them as unusable
/// instead of misreading them. v2 appended the per-job timing section.
pub const MANIFEST_CODEC_VERSION: u16 = 2;

/// Wall-clock phase timings of one job as measured by the shard that ran
/// it, keyed by the same stable job fingerprint as the output entries.
/// Merge folds these into fleet-wide phase histograms — the calibration
/// input for cost-model shard partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJobTiming {
    /// Stable fingerprint of the job the timing belongs to.
    pub fingerprint: Fingerprint,
    /// Nanoseconds the job spent queued in the pool before starting.
    pub queue_ns: u64,
    /// Nanoseconds the job spent executing (including memo lookups).
    pub run_ns: u64,
}

/// One shard's sealed output slice: which configuration and shard it came
/// from, plus every finished job keyed by its stable fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Fingerprint of the campaign configuration the shard ran under; merge
    /// rejects manifests whose configuration disagrees with its own.
    pub config: Fingerprint,
    /// 1-based shard index.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
    /// `(job fingerprint, opaque payload)` pairs, in the shard's job order.
    pub entries: Vec<(Fingerprint, Vec<u8>)>,
    /// Per-job phase timings measured on this shard. Independent of
    /// `entries`: a timing may describe a job whose output was deduplicated
    /// away, and an entry may carry no timing (e.g. a pure memo hit).
    pub timings: Vec<ShardJobTiming>,
}

impl ShardManifest {
    /// The blob key a manifest with this header seals under: the fingerprint
    /// of `(config, index, count)` behind a versioned domain tag.
    pub fn seal_key(config: Fingerprint, index: u32, count: u32) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.write_str("stms-shard-manifest/v1");
        fp.write_u64(config.raw() as u64);
        fp.write_u64((config.raw() >> 64) as u64);
        fp.write_u32(index);
        fp.write_u32(count);
        fp.finish()
    }

    /// The conventional file name of this manifest, e.g.
    /// `shard-1-of-2.stms`.
    pub fn file_name(&self) -> String {
        format!("shard-{}-of-{}.stms", self.index, self.count)
    }

    /// Encodes and seals the manifest into the bytes written to disk.
    pub fn seal(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.config.raw().to_le_bytes());
        body.extend_from_slice(&self.index.to_le_bytes());
        body.extend_from_slice(&self.count.to_le_bytes());
        body.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (fingerprint, payload) in &self.entries {
            body.extend_from_slice(&fingerprint.raw().to_le_bytes());
            body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            body.extend_from_slice(payload);
        }
        body.extend_from_slice(&(self.timings.len() as u64).to_le_bytes());
        for timing in &self.timings {
            body.extend_from_slice(&timing.fingerprint.raw().to_le_bytes());
            body.extend_from_slice(&timing.queue_ns.to_le_bytes());
            body.extend_from_slice(&timing.run_ns.to_le_bytes());
        }
        blob::seal(
            MANIFEST_CODEC_VERSION,
            Self::seal_key(self.config, self.index, self.count),
            &body,
        )
    }

    /// Unseals and decodes a manifest previously produced by
    /// [`ShardManifest::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError`] when the blob envelope fails, the body is
    /// malformed, the shard header is inconsistent (`index` outside
    /// `1..=count`), the recorded blob key disagrees with the decoded header,
    /// or an entry fingerprint repeats within the manifest.
    pub fn open(data: &[u8]) -> Result<Self, ManifestError> {
        let (recorded_key, body) = blob::open_any(data, MANIFEST_CODEC_VERSION)?;
        let mut body = body;
        let truncated = |what| ManifestError::Truncated { what };
        let mut take = |n: usize, what: &'static str| -> Result<&[u8], ManifestError> {
            let (head, rest) = body.split_at_checked(n).ok_or(truncated(what))?;
            body = rest;
            Ok(head)
        };
        let config = Fingerprint::from_raw(u128::from_le_bytes(
            take(16, "config fingerprint")?
                .try_into()
                .expect("16 bytes"),
        ));
        let index = u32::from_le_bytes(take(4, "shard index")?.try_into().expect("4 bytes"));
        let count = u32::from_le_bytes(take(4, "shard count")?.try_into().expect("4 bytes"));
        if count == 0 || index == 0 || index > count {
            return Err(ManifestError::BadShard { index, count });
        }
        if recorded_key != Self::seal_key(config, index, count) {
            return Err(ManifestError::KeyMismatch);
        }
        let entry_count =
            u64::from_le_bytes(take(8, "entry count")?.try_into().expect("8 bytes")) as usize;
        let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
        let mut seen = std::collections::HashSet::with_capacity(entry_count.min(1 << 16));
        for _ in 0..entry_count {
            let fingerprint = Fingerprint::from_raw(u128::from_le_bytes(
                take(16, "entry fingerprint")?.try_into().expect("16 bytes"),
            ));
            let len =
                u64::from_le_bytes(take(8, "entry length")?.try_into().expect("8 bytes")) as usize;
            let payload = take(len, "entry payload")?.to_vec();
            if !seen.insert(fingerprint) {
                return Err(ManifestError::DuplicateEntry { fingerprint });
            }
            entries.push((fingerprint, payload));
        }
        let timing_count =
            u64::from_le_bytes(take(8, "timing count")?.try_into().expect("8 bytes")) as usize;
        let mut timings = Vec::with_capacity(timing_count.min(1 << 16));
        for _ in 0..timing_count {
            let fingerprint = Fingerprint::from_raw(u128::from_le_bytes(
                take(16, "timing fingerprint")?
                    .try_into()
                    .expect("16 bytes"),
            ));
            let queue_ns =
                u64::from_le_bytes(take(8, "timing queue")?.try_into().expect("8 bytes"));
            let run_ns = u64::from_le_bytes(take(8, "timing run")?.try_into().expect("8 bytes"));
            timings.push(ShardJobTiming {
                fingerprint,
                queue_ns,
                run_ns,
            });
        }
        if !body.is_empty() {
            return Err(ManifestError::TrailingData);
        }
        Ok(ShardManifest {
            config,
            index,
            count,
            entries,
            timings,
        })
    }
}

/// Why a sealed shard manifest could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The outer sealed-blob envelope failed (corruption, truncation, a
    /// different codec version, not a blob at all).
    Blob(BlobError),
    /// The manifest body ended before the named field.
    Truncated {
        /// Which encoded field was cut off.
        what: &'static str,
    },
    /// The header's shard coordinates are inconsistent.
    BadShard {
        /// Index found in the header (must be `1..=count`).
        index: u32,
        /// Count found in the header (must be non-zero).
        count: u32,
    },
    /// The blob key does not match the decoded header — a renamed or
    /// spliced file.
    KeyMismatch,
    /// The same job fingerprint appears twice within one manifest.
    DuplicateEntry {
        /// The repeated fingerprint.
        fingerprint: Fingerprint,
    },
    /// Extra bytes follow the last entry.
    TrailingData,
}

impl From<BlobError> for ManifestError {
    fn from(err: BlobError) -> Self {
        ManifestError::Blob(err)
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Blob(err) => write!(f, "shard manifest envelope: {err}"),
            ManifestError::Truncated { what } => {
                write!(f, "shard manifest truncated at {what}")
            }
            ManifestError::BadShard { index, count } => {
                write!(f, "shard manifest claims invalid shard {index}/{count}")
            }
            ManifestError::KeyMismatch => {
                write!(f, "shard manifest key does not match its header")
            }
            ManifestError::DuplicateEntry { fingerprint } => {
                write!(f, "shard manifest repeats job fingerprint {fingerprint}")
            }
            ManifestError::TrailingData => write!(f, "trailing bytes after shard manifest"),
        }
    }
}

impl std::error::Error for ManifestError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            config: Fingerprint::from_raw(0xfeed_beef),
            index: 2,
            count: 3,
            entries: vec![
                (Fingerprint::from_raw(1), vec![1, 2, 3]),
                (Fingerprint::from_raw(2), Vec::new()),
                (Fingerprint::from_raw(u128::MAX), vec![0; 100]),
            ],
            timings: vec![
                ShardJobTiming {
                    fingerprint: Fingerprint::from_raw(1),
                    queue_ns: 1_200,
                    run_ns: 88_000,
                },
                ShardJobTiming {
                    fingerprint: Fingerprint::from_raw(u128::MAX),
                    queue_ns: 0,
                    run_ns: u64::MAX,
                },
            ],
        }
    }

    #[test]
    fn seal_open_round_trips() {
        let manifest = sample();
        assert_eq!(ShardManifest::open(&manifest.seal()).unwrap(), manifest);
        // Empty manifests are legal (a shard may own no jobs).
        let empty = ShardManifest {
            entries: Vec::new(),
            ..sample()
        };
        assert_eq!(ShardManifest::open(&empty.seal()).unwrap(), empty);
        assert_eq!(manifest.file_name(), "shard-2-of-3.stms");
    }

    #[test]
    fn corruption_and_truncation_fail_closed() {
        let sealed = sample().seal();
        let mut bad = sealed.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(
            ShardManifest::open(&bad),
            Err(ManifestError::Blob(_))
        ));
        assert!(matches!(
            ShardManifest::open(&sealed[..sealed.len() / 2]),
            Err(ManifestError::Blob(BlobError::Truncated { .. }))
        ));
        assert!(matches!(
            ShardManifest::open(b"not a manifest"),
            Err(ManifestError::Blob(_))
        ));
    }

    #[test]
    fn inconsistent_headers_are_rejected() {
        // index 0, index > count, count 0: all invalid. Build them by
        // sealing a body by hand so the blob layer is satisfied.
        for (index, count) in [(0u32, 2u32), (3, 2), (0, 0)] {
            let mut body = Vec::new();
            body.extend_from_slice(&7u128.to_le_bytes());
            body.extend_from_slice(&index.to_le_bytes());
            body.extend_from_slice(&count.to_le_bytes());
            body.extend_from_slice(&0u64.to_le_bytes()); // entries
            body.extend_from_slice(&0u64.to_le_bytes()); // timings
            let sealed = blob::seal(
                MANIFEST_CODEC_VERSION,
                ShardManifest::seal_key(Fingerprint::from_raw(7), index, count),
                &body,
            );
            assert_eq!(
                ShardManifest::open(&sealed),
                Err(ManifestError::BadShard { index, count })
            );
        }
    }

    #[test]
    fn spliced_header_fails_the_key_check() {
        // Seal a valid manifest under the WRONG key (as if a shard-1 file
        // body were copied into a shard-2 file's envelope).
        let manifest = sample();
        let mut body = Vec::new();
        body.extend_from_slice(&manifest.config.raw().to_le_bytes());
        body.extend_from_slice(&manifest.index.to_le_bytes());
        body.extend_from_slice(&manifest.count.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes()); // entries
        body.extend_from_slice(&0u64.to_le_bytes()); // timings
        let wrong_key = ShardManifest::seal_key(manifest.config, manifest.index + 1, 9);
        let sealed = blob::seal(MANIFEST_CODEC_VERSION, wrong_key, &body);
        assert_eq!(
            ShardManifest::open(&sealed),
            Err(ManifestError::KeyMismatch)
        );
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        let manifest = ShardManifest {
            entries: vec![
                (Fingerprint::from_raw(5), vec![1]),
                (Fingerprint::from_raw(5), vec![2]),
            ],
            ..sample()
        };
        assert_eq!(
            ShardManifest::open(&manifest.seal()),
            Err(ManifestError::DuplicateEntry {
                fingerprint: Fingerprint::from_raw(5)
            })
        );
    }

    #[test]
    fn seal_keys_separate_shard_coordinates() {
        let config = Fingerprint::from_raw(9);
        let base = ShardManifest::seal_key(config, 1, 2);
        assert_eq!(base, ShardManifest::seal_key(config, 1, 2));
        assert_ne!(base, ShardManifest::seal_key(config, 2, 2));
        assert_ne!(base, ShardManifest::seal_key(config, 1, 3));
        assert_ne!(
            base,
            ShardManifest::seal_key(Fingerprint::from_raw(10), 1, 2)
        );
    }

    #[test]
    fn errors_render_their_cause() {
        assert!(ManifestError::KeyMismatch.to_string().contains("key"));
        assert!(ManifestError::BadShard { index: 3, count: 2 }
            .to_string()
            .contains("3/2"));
        assert!(ManifestError::from(BlobError::BadMagic)
            .to_string()
            .contains("envelope"));
    }
}
