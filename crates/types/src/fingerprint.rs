//! Stable content fingerprints for cache keys that outlive a process.
//!
//! The campaign layer's in-memory [`std::collections::HashMap`] tiers key on
//! [`std::hash::Hash`], whose output is explicitly *not* stable across Rust
//! releases, builds, or platforms — fine for one process, useless as an
//! on-disk cache key. This module provides the stable alternative: a
//! [`Fingerprinter`] that hashes a canonical little-endian byte encoding of a
//! value with 128-bit FNV-1a, and a [`Fingerprintable`] trait that each
//! cache-key type implements field by field (so adding a field to a config
//! struct forces a conscious decision about its fingerprint, via the
//! exhaustive destructuring idiom used for `Hash` in `stms-workloads`).
//!
//! Two values produce the same [`Fingerprint`] exactly when they would
//! generate the same artifact, which is what makes a fingerprint-named cache
//! file a faithful stand-in for regeneration on any machine.
//!
//! # Example
//!
//! ```
//! use stms_types::{Fingerprint, Fingerprintable, Fingerprinter};
//!
//! struct Knobs {
//!     accesses: usize,
//!     bias: f64,
//! }
//!
//! impl Fingerprintable for Knobs {
//!     fn fingerprint_into(&self, fp: &mut Fingerprinter) {
//!         fp.write_str("Knobs/v1"); // domain tag: versions the key layout
//!         fp.write_usize(self.accesses);
//!         fp.write_f64(self.bias);
//!     }
//! }
//!
//! let a = Knobs { accesses: 100, bias: 0.5 }.fingerprint();
//! let b = Knobs { accesses: 100, bias: 0.5 }.fingerprint();
//! let c = Knobs { accesses: 101, bias: 0.5 }.fingerprint();
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! assert_eq!(a.to_hex().len(), 32);
//! ```

use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit stable content fingerprint.
///
/// Produced by [`Fingerprinter::finish`] (usually via
/// [`Fingerprintable::fingerprint`]). The value depends only on the bytes
/// written, never on the build, platform, or process, so it is safe to use
/// as an on-disk cache-file name ([`Fingerprint::to_hex`]) and to embed in
/// cache-file headers ([`crate::blob`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Reconstructs a fingerprint from its raw value (e.g. read back from a
    /// cache-file header).
    pub fn from_raw(raw: u128) -> Self {
        Fingerprint(raw)
    }

    /// The raw 128-bit value.
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Lower-case hexadecimal rendering (32 characters), suitable as a file
    /// name component.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An incremental 128-bit FNV-1a hasher over a canonical byte encoding.
///
/// All multi-byte writes use fixed-width little-endian encodings and strings
/// are length-prefixed, so the stream of bytes — and therefore the resulting
/// [`Fingerprint`] — is unambiguous and identical on every platform.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u128,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprinter {
            state: FNV128_OFFSET,
        }
    }

    /// Hashes raw bytes. Prefer the typed writers for anything structured:
    /// raw byte runs of variable length are ambiguous unless the caller
    /// length-prefixes them (as [`Fingerprinter::write_str`] does).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Hashes one byte.
    pub fn write_u8(&mut self, value: u8) {
        self.write_bytes(&[value]);
    }

    /// Hashes a `u16` (little-endian).
    pub fn write_u16(&mut self, value: u16) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Hashes a `u32` (little-endian).
    pub fn write_u32(&mut self, value: u32) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Hashes a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Hashes a `usize` widened to 64 bits, so 32- and 64-bit builds agree.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Hashes a boolean as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u8(u8::from(value));
    }

    /// Hashes an `f64` by bit pattern, with `-0.0` normalized to `+0.0`
    /// first so the two representations `==` considers equal fingerprint
    /// identically (the same normalization `stms-workloads` applies in its
    /// `Hash` impls).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64((value + 0.0).to_bits());
    }

    /// Hashes a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// cannot collide.
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write_bytes(value.as_bytes());
    }

    /// Hashes an optional `u64` with a presence tag.
    pub fn write_option_u64(&mut self, value: Option<u64>) {
        match value {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_u64(v);
            }
        }
    }

    /// The fingerprint of everything written so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// A type that contributes a stable, build-independent fingerprint.
///
/// Implementations should start with a domain tag ([`Fingerprinter::write_str`]
/// of a `"TypeName/v1"` literal) and bump that tag whenever the field layout
/// changes meaning, so stale cache entries written under an older layout can
/// never alias a current key.
pub trait Fingerprintable {
    /// Writes the value's canonical encoding into `fp`.
    fn fingerprint_into(&self, fp: &mut Fingerprinter);

    /// The value's fingerprint (a fresh hasher over
    /// [`Fingerprintable::fingerprint_into`]).
    fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        self.fingerprint_into(&mut fp);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_the_offset_basis() {
        assert_eq!(Fingerprinter::new().finish().raw(), FNV128_OFFSET);
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a 128 of "a": xor then multiply once.
        let mut fp = Fingerprinter::new();
        fp.write_bytes(b"a");
        let expect = (FNV128_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV128_PRIME);
        assert_eq!(fp.finish().raw(), expect);
    }

    #[test]
    fn typed_writers_are_unambiguous() {
        let digest = |f: &dyn Fn(&mut Fingerprinter)| {
            let mut fp = Fingerprinter::new();
            f(&mut fp);
            fp.finish()
        };
        // Length prefixes keep adjacent strings apart.
        let ab_c = digest(&|fp| {
            fp.write_str("ab");
            fp.write_str("c");
        });
        let a_bc = digest(&|fp| {
            fp.write_str("a");
            fp.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
        // Width matters: a u16 and a u32 of the same value differ.
        assert_ne!(digest(&|fp| fp.write_u16(7)), digest(&|fp| fp.write_u32(7)));
        // Option presence tag keeps None apart from Some(0).
        assert_ne!(
            digest(&|fp| fp.write_option_u64(None)),
            digest(&|fp| fp.write_option_u64(Some(0)))
        );
    }

    #[test]
    fn negative_zero_normalizes() {
        let mut pos = Fingerprinter::new();
        pos.write_f64(0.0);
        let mut neg = Fingerprinter::new();
        neg.write_f64(-0.0);
        assert_eq!(pos.finish(), neg.finish());
    }

    #[test]
    fn hex_rendering_is_32_lowercase_digits() {
        let fp = Fingerprint::from_raw(0xdead_beef);
        assert_eq!(fp.to_hex().len(), 32);
        assert!(fp.to_hex().ends_with("deadbeef"));
        assert_eq!(fp.to_string(), fp.to_hex());
        assert_eq!(Fingerprint::from_raw(fp.raw()), fp);
    }
}
