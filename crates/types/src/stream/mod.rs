//! Chunked trace streaming: the out-of-core currency of the pipeline.
//!
//! The rest of the workspace historically moved traces around as fully
//! materialized [`Trace`] values — fine for paper-scale runs, but it caps
//! trace length at available memory at *every* layer (generation, the disk
//! cache, replay). This module defines the streaming alternative used from
//! the generator all the way to the simulator:
//!
//! * [`AccessChunk`] — a borrowed window of consecutive accesses;
//! * [`TraceSource`] — anything that can hand out a trace chunk by chunk
//!   (a materialized [`Trace`] via [`Trace::chunks`], the resumable
//!   generator in `stms-workloads`, or a disk blob via [`TraceReader`]);
//! * a **chunk-framed codec** that stores access records inside the sealed
//!   [`crate::blob`] envelope, framed into fixed-size chunks each carrying
//!   its own length and checksum — so a reader can verify and replay a
//!   trace without ever holding more than one chunk. Two payload codecs
//!   share this framing (selected by [`TraceCodec`]): **v2**
//!   ([`TRACE_CHUNKED_CODEC_VERSION`]) stores the same big-endian row
//!   records as [`Trace::encode`], and **v3**
//!   ([`TRACE_COLUMNAR_CODEC_VERSION`], the default) re-lays each chunk out
//!   columnarly and compresses per column (see [`columnar`]'s module docs
//!   for the layout);
//! * [`ChunkedTraceWriter`] / [`TraceReader`] — the streaming encoder and
//!   decoder of that format. The v2 writer computes the envelope's payload
//!   length up front (records are fixed width); the v3 writer seeks back
//!   and patches it at finish time (compressed sizes are data-dependent).
//!   Both fold the whole-payload checksum incrementally while chunks flow
//!   through, so sealing never materializes the encoded trace. The reader
//!   dispatches on the codec version in the envelope, so v2 blobs written
//!   by earlier builds stay readable with no flag;
//! * the [`pipeline`] submodule — a staged prefetch→decode engine
//!   ([`pipeline::ChunkPipeline`]) that overlaps reading, checksum/decode
//!   work and simulation across threads while preserving the exact chunk
//!   order and error behaviour of the synchronous path.
//!
//! The reader itself is split into two stages so the pipeline can
//! parallelize them: [`TraceReader::next_raw`] performs the I/O (frame
//! header, record bytes, whole-payload checksum folding) and returns an
//! owned [`RawChunk`]; [`RawChunk::decode_into`] verifies the frame
//! checksum and parses the records. The synchronous
//! [`TraceSource::next_chunk`] path is exactly `next_raw` + `decode_into`
//! on one thread — the depth-0 special case of the pipeline.
//!
//! The classic whole-trace codec ([`Trace::encode`], codec version
//! [`crate::trace::TRACE_CODEC_VERSION`]) remains the single-chunk special
//! case: both codecs share one record encoding, byte for byte.
//!
//! # Example
//!
//! ```
//! use stms_types::{stream, Fingerprint, CoreId, LineAddr, MemAccess, Trace, TraceMeta};
//!
//! let mut trace = Trace::new(TraceMeta { workload: "demo".into(), cores: 1, ..Default::default() });
//! for i in 0..1000u64 {
//!     trace.push(MemAccess::read(CoreId::new(0), LineAddr::new(i * 17)));
//! }
//! let key = Fingerprint::from_raw(42);
//!
//! // Seal chunk-framed (128 accesses per chunk) and replay it chunk by chunk.
//! let sealed = stream::encode_chunked(&trace, key, 128);
//! let mut reader = stream::TraceReader::new(std::io::Cursor::new(&sealed), key).unwrap();
//! let back = stream::collect_trace(&mut reader).unwrap();
//! assert_eq!(back, trace);
//! ```

use crate::blob::{self, BlobError, CHECKSUM_LEN, HEADER_LEN};
use crate::fingerprint::{Fingerprint, Fingerprinter};
use crate::trace::{parse_access, put_access, DecodeTraceError, ACCESS_RECORD_BYTES};
use crate::{MemAccess, Trace, TraceMeta};
use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};

pub mod columnar;
pub mod pipeline;

/// Version of the chunk-framed **row** trace payload codec (fixed-width
/// records), stamped into the sealed [`crate::blob`] envelope. Distinct
/// from [`crate::trace::TRACE_CODEC_VERSION`] (the whole-trace layout), so
/// a cache file written under either codec can never be misread as the
/// other.
pub const TRACE_CHUNKED_CODEC_VERSION: u16 = 2;

/// Version of the chunk-framed **columnar compressed** trace payload codec
/// (see [`columnar`]). Shares the envelope, per-chunk framing and
/// corruption behaviour of v2; only the bytes inside each frame differ.
pub const TRACE_COLUMNAR_CODEC_VERSION: u16 = 3;

/// Which chunk-framed payload codec a writer emits. Readers never need
/// this: they dispatch on the version stamped in the sealed envelope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TraceCodec {
    /// Fixed-width big-endian row records ([`TRACE_CHUNKED_CODEC_VERSION`]).
    /// Kept writable for compatibility checks and cache interchange with
    /// older builds.
    V2,
    /// Columnar per-chunk compression ([`TRACE_COLUMNAR_CODEC_VERSION`]):
    /// several-fold smaller on disk for the same trace, decompressed on the
    /// pipeline's decode workers.
    #[default]
    V3,
}

impl TraceCodec {
    /// The codec version stamped into the sealed envelope.
    pub fn version(self) -> u16 {
        match self {
            TraceCodec::V2 => TRACE_CHUNKED_CODEC_VERSION,
            TraceCodec::V3 => TRACE_COLUMNAR_CODEC_VERSION,
        }
    }

    /// Maps an envelope codec version back to a codec, or `None` for
    /// versions this build cannot read.
    pub fn from_version(version: u16) -> Option<Self> {
        match version {
            TRACE_CHUNKED_CODEC_VERSION => Some(TraceCodec::V2),
            TRACE_COLUMNAR_CODEC_VERSION => Some(TraceCodec::V3),
            _ => None,
        }
    }
}

impl fmt::Display for TraceCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCodec::V2 => f.write_str("v2"),
            TraceCodec::V3 => f.write_str("v3"),
        }
    }
}

/// Default accesses per chunk (64 Ki accesses ≈ 1 MB of encoded records):
/// large enough that per-chunk dispatch cost vanishes against simulation
/// work, small enough that a reader's resident window stays ~megabytes no
/// matter how long the trace is.
pub const DEFAULT_CHUNK_LEN: usize = 1 << 16;

/// Leading magic of the chunk-framed payload: `STMC` ("STMS chunked").
const CHUNKED_MAGIC: u32 = 0x53_54_4d_43;

/// A borrowed window of consecutive trace accesses handed out by a
/// [`TraceSource`].
#[derive(Debug, Clone, Copy)]
pub struct AccessChunk<'a> {
    /// The accesses of this chunk, in trace order.
    pub accesses: &'a [MemAccess],
    /// Index (within the whole trace) of the first access of the chunk.
    pub first_index: u64,
}

/// Why a streaming trace could not be produced or consumed.
///
/// Consumers (the campaign's trace store and job executor) treat every
/// variant the same way: discard the stream, evict the backing file if any,
/// and fall back to regeneration — mirroring how the sealed-blob cache
/// tiers treat [`BlobError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceStreamError {
    /// An underlying I/O operation failed.
    Io {
        /// The rendered I/O error.
        error: String,
    },
    /// The sealed-blob envelope around the stream is unusable (bad magic,
    /// version or key mismatch, truncation, checksum failure).
    Envelope(BlobError),
    /// The chunk-framed trace payload itself is malformed.
    Trace(DecodeTraceError),
}

impl fmt::Display for TraceStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStreamError::Io { error } => write!(f, "trace stream i/o error: {error}"),
            TraceStreamError::Envelope(err) => write!(f, "trace stream envelope: {err}"),
            TraceStreamError::Trace(err) => write!(f, "trace stream payload: {err}"),
        }
    }
}

impl std::error::Error for TraceStreamError {}

impl From<io::Error> for TraceStreamError {
    fn from(err: io::Error) -> Self {
        TraceStreamError::Io {
            error: err.to_string(),
        }
    }
}

impl From<BlobError> for TraceStreamError {
    fn from(err: BlobError) -> Self {
        TraceStreamError::Envelope(err)
    }
}

impl From<DecodeTraceError> for TraceStreamError {
    fn from(err: DecodeTraceError) -> Self {
        TraceStreamError::Trace(err)
    }
}

/// Anything that can hand out a trace chunk by chunk, in trace order.
///
/// The contract mirrors a lending iterator: each returned [`AccessChunk`]
/// borrows from the source and is consumed before the next call. The total
/// access count and metadata are known up front (every implementor knows
/// them from its spec or header), which is what lets the simulator compute
/// its warm-up boundary without a first pass.
pub trait TraceSource {
    /// Metadata of the streamed trace.
    fn meta(&self) -> &TraceMeta;

    /// Total number of accesses the source will yield across all chunks.
    fn total_accesses(&self) -> u64;

    /// The next chunk, or `Ok(None)` once the source is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`TraceStreamError`] when the underlying stream is unusable
    /// (only disk-backed sources fail; in-memory and generator sources are
    /// infallible).
    fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError>;
}

/// [`TraceSource`] over a materialized [`Trace`], yielding borrowed
/// sub-slices (no copies). See [`Trace::chunks`].
#[derive(Debug)]
pub struct TraceChunks<'a> {
    trace: &'a Trace,
    pos: usize,
    chunk_len: usize,
}

impl Trace {
    /// Streams the trace as chunks of at most `chunk_len` accesses — the
    /// adapter that lets every materialized trace flow through the same
    /// [`TraceSource`]-consuming paths as out-of-core streams.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn chunks(&self, chunk_len: usize) -> TraceChunks<'_> {
        assert!(chunk_len > 0, "chunk_len must be non-zero");
        TraceChunks {
            trace: self,
            pos: 0,
            chunk_len,
        }
    }
}

impl TraceSource for TraceChunks<'_> {
    fn meta(&self) -> &TraceMeta {
        self.trace.meta()
    }

    fn total_accesses(&self) -> u64 {
        self.trace.len() as u64
    }

    fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
        let all = self.trace.accesses();
        if self.pos >= all.len() {
            return Ok(None);
        }
        let start = self.pos;
        let end = (start + self.chunk_len).min(all.len());
        self.pos = end;
        Ok(Some(AccessChunk {
            accesses: &all[start..end],
            first_index: start as u64,
        }))
    }
}

/// Collects a whole source into a materialized [`Trace`] (the compatibility
/// bridge back from streaming land).
///
/// # Errors
///
/// Propagates the source's first [`TraceStreamError`].
pub fn collect_trace(source: &mut dyn TraceSource) -> Result<Trace, TraceStreamError> {
    let mut trace = Trace::new(source.meta().clone());
    while let Some(chunk) = source.next_chunk()? {
        trace.extend(chunk.accesses.iter().copied());
    }
    Ok(trace)
}

/// Largest legal `chunk_len` of the chunk-framed codec (4 Mi accesses,
/// a ~60 MB frame). Writers refuse to exceed it and readers reject headers
/// that claim more, bounding the allocation a crafted or vandalized header
/// can make a reader perform before any payload byte is verified.
pub const MAX_CHUNK_LEN: usize = 1 << 22;

/// Byte length of the chunk-framed payload's trace header.
fn payload_header_len(name_len: usize) -> usize {
    4 + 2 + name_len + 2 + 8 + 8 + 8 + 4
}

/// Number of frames a trace of `total` accesses splits into.
fn chunk_count(total: u64, chunk_len: usize) -> u64 {
    if total == 0 {
        0
    } else {
        total.div_ceil(chunk_len as u64)
    }
}

/// Exact payload length of the chunk-framed encoding — computable up front
/// because records are fixed width, which is what lets the streaming writer
/// emit a complete sealed-blob header before the first chunk exists.
///
/// All arithmetic is checked: the reader feeds this *untrusted* header
/// fields, and a vandalized `total` must produce a clean `None` (reported
/// as corruption), never an overflow panic — the same rule
/// [`blob::open_any`] applies to its length field.
fn chunked_payload_len(name_len: usize, total: u64, chunk_len: usize) -> Option<u64> {
    let frames = chunk_count(total, chunk_len).checked_mul(4 + 8)?;
    let records = total.checked_mul(ACCESS_RECORD_BYTES as u64)?;
    (payload_header_len(name_len) as u64)
        .checked_add(frames)?
        .checked_add(records)
}

/// Streaming encoder of the chunk-framed codec: writes a complete sealed
/// blob (envelope + payload + trailing checksum) to `sink` without ever
/// holding more than one chunk of records.
///
/// Feed accesses in trace order through [`ChunkedTraceWriter::push`] (any
/// slicing — the writer reframes internally), then call
/// [`ChunkedTraceWriter::finish`]. The writer enforces that exactly the
/// declared number of accesses flows through.
///
/// The sink must seek: the v3 codec's payload length is data-dependent, so
/// its envelope header is patched at finish time ([`io::Cursor`] for
/// in-memory sinks, `BufWriter<File>` on disk — both seek).
#[derive(Debug)]
pub struct ChunkedTraceWriter<W: Write + Seek> {
    sink: W,
    codec: TraceCodec,
    /// Stream position of the envelope header, for the v3 finish-time
    /// payload-length patch.
    header_start: u64,
    /// Payload bytes emitted so far (excludes envelope and trailing
    /// checksum).
    payload_bytes: u64,
    /// Running whole-payload checksum (identical to what [`blob::seal`]
    /// would record over the same payload bytes).
    payload_fp: Fingerprinter,
    chunk_len: usize,
    total: u64,
    written: u64,
    pending: Vec<MemAccess>,
    scratch: Vec<u8>,
}

impl<W: Write + Seek> ChunkedTraceWriter<W> {
    /// Starts a sealed chunk-framed **v2** stream (see
    /// [`ChunkedTraceWriter::with_codec`]). Kept as the row-codec
    /// constructor because v2's byte layout is pinned by compatibility
    /// tests and cross-build cache interchange.
    ///
    /// # Errors
    ///
    /// See [`ChunkedTraceWriter::with_codec`].
    pub fn new(
        sink: W,
        key: Fingerprint,
        meta: &TraceMeta,
        total_accesses: u64,
        chunk_len: usize,
    ) -> io::Result<Self> {
        Self::with_codec(sink, key, meta, total_accesses, chunk_len, TraceCodec::V2)
    }

    /// Starts a sealed chunk-framed stream under the given payload codec
    /// for a trace of exactly `total_accesses` accesses, writing the
    /// envelope and trace header immediately. For [`TraceCodec::V3`] the
    /// envelope's payload length is a placeholder until
    /// [`ChunkedTraceWriter::finish`] patches it.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error, or `InvalidInput` for a `chunk_len`
    /// outside `1..=MAX_CHUNK_LEN`, an over-long workload name, or a trace
    /// whose encoded size would overflow the length arithmetic.
    ///
    /// # Panics
    ///
    /// Never panics.
    pub fn with_codec(
        mut sink: W,
        key: Fingerprint,
        meta: &TraceMeta,
        total_accesses: u64,
        chunk_len: usize,
        codec: TraceCodec,
    ) -> io::Result<Self> {
        if chunk_len == 0 || chunk_len > MAX_CHUNK_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("chunk_len must be in 1..={MAX_CHUNK_LEN}"),
            ));
        }
        if meta.workload.len() > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "workload name longer than a u16 length prefix",
            ));
        }
        // v2 stamps the exact payload length up front; v3 cannot know it
        // yet, but still refuses totals whose *decoded* size overflows the
        // length arithmetic, so both codecs reject the same degenerate
        // inputs.
        let payload_len = chunked_payload_len(meta.workload.len(), total_accesses, chunk_len)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "trace too large for the chunk-framed length arithmetic",
                )
            })?;
        let header_start = sink.stream_position()?;
        let stamped_len = match codec {
            TraceCodec::V2 => payload_len,
            TraceCodec::V3 => 0,
        };
        sink.write_all(&blob::encode_header(codec.version(), key, stamped_len))?;
        let mut writer = ChunkedTraceWriter {
            sink,
            codec,
            header_start,
            payload_bytes: 0,
            payload_fp: Fingerprinter::new(),
            chunk_len,
            total: total_accesses,
            written: 0,
            pending: Vec::new(),
            scratch: Vec::new(),
        };
        let mut header = Vec::with_capacity(payload_header_len(meta.workload.len()));
        header.extend_from_slice(&CHUNKED_MAGIC.to_be_bytes());
        header.extend_from_slice(&(meta.workload.len() as u16).to_be_bytes());
        header.extend_from_slice(meta.workload.as_bytes());
        header.extend_from_slice(&(meta.cores as u16).to_be_bytes());
        header.extend_from_slice(&meta.seed.to_be_bytes());
        header.extend_from_slice(&meta.footprint_lines.to_be_bytes());
        header.extend_from_slice(&total_accesses.to_be_bytes());
        header.extend_from_slice(&(chunk_len as u32).to_be_bytes());
        writer.emit(&header)?;
        Ok(writer)
    }

    /// Writes payload bytes, folding them into the running checksum and the
    /// running payload length.
    fn emit(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.payload_fp.write_bytes(bytes);
        self.payload_bytes += bytes.len() as u64;
        self.sink.write_all(bytes)
    }

    /// Appends accesses (any slicing; the writer frames them into
    /// `chunk_len`-sized chunks itself).
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error, or `InvalidInput` when more accesses
    /// than declared are pushed.
    pub fn push(&mut self, accesses: &[MemAccess]) -> io::Result<()> {
        let mut rest = accesses;
        if !self.pending.is_empty() {
            let need = self.chunk_len - self.pending.len();
            let take = need.min(rest.len());
            self.pending.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.pending.len() == self.chunk_len {
                let frame = std::mem::take(&mut self.pending);
                self.write_frame(&frame)?;
                self.pending = frame;
                self.pending.clear();
            }
        }
        while rest.len() >= self.chunk_len {
            let (frame, tail) = rest.split_at(self.chunk_len);
            self.write_frame(frame)?;
            rest = tail;
        }
        self.pending.extend_from_slice(rest);
        Ok(())
    }

    fn write_frame(&mut self, accesses: &[MemAccess]) -> io::Result<()> {
        let written = self.written + accesses.len() as u64;
        if written > self.total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more accesses pushed than declared",
            ));
        }
        self.written = written;
        self.scratch.clear();
        match self.codec {
            TraceCodec::V2 => {
                self.scratch
                    .reserve(accesses.len() * ACCESS_RECORD_BYTES + V2_FRAME_HEADER);
                self.scratch
                    .extend_from_slice(&(accesses.len() as u32).to_be_bytes());
                self.scratch.extend_from_slice(&[0u8; 8]); // checksum placeholder
                for a in accesses {
                    put_access(&mut self.scratch, a);
                }
                // The frame checksum covers only the record bytes.
                let mut fp = Fingerprinter::new();
                fp.write_bytes(&self.scratch[V2_FRAME_HEADER..]);
                let checksum = chunk_checksum(&fp).to_be_bytes();
                self.scratch[4..V2_FRAME_HEADER].copy_from_slice(&checksum);
            }
            TraceCodec::V3 => {
                self.scratch
                    .extend_from_slice(&(accesses.len() as u32).to_be_bytes());
                self.scratch.extend_from_slice(&[0u8; 4]); // compressed-length placeholder
                self.scratch.extend_from_slice(&[0u8; 8]); // checksum placeholder
                columnar::encode_columns(accesses, &mut self.scratch);
                let comp_len = (self.scratch.len() - V3_FRAME_HEADER) as u32;
                self.scratch[4..8].copy_from_slice(&comp_len.to_be_bytes());
                // The frame checksum covers the compressed column bytes, so
                // a flipped bit anywhere inside a column fails the frame
                // before decompression is even attempted.
                let mut fp = Fingerprinter::new();
                fp.write_bytes(&self.scratch[V3_FRAME_HEADER..]);
                let checksum = chunk_checksum(&fp).to_be_bytes();
                self.scratch[8..V3_FRAME_HEADER].copy_from_slice(&checksum);
            }
        }
        let frame = std::mem::take(&mut self.scratch);
        let result = self.emit(&frame);
        self.scratch = frame;
        result
    }

    /// Flushes the final partial chunk and the trailing checksum (patching
    /// the envelope's payload length under v3), returning the sink.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error, or `InvalidInput` when fewer accesses
    /// than declared were pushed.
    pub fn finish(mut self) -> io::Result<W> {
        if !self.pending.is_empty() {
            let frame = std::mem::take(&mut self.pending);
            self.write_frame(&frame)?;
        }
        if self.written != self.total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "declared {} accesses but {} were pushed",
                    self.total, self.written
                ),
            ));
        }
        let checksum = payload_checksum(&self.payload_fp);
        self.sink.write_all(&checksum.to_le_bytes())?;
        if self.codec == TraceCodec::V3 {
            // Compressed payload lengths are only known now: patch the
            // envelope's payload-length field in place, then restore the
            // position so the sink ends at end-of-blob like v2.
            let end = self.sink.stream_position()?;
            self.sink.seek(SeekFrom::Start(
                self.header_start + blob::PAYLOAD_LEN_OFFSET as u64,
            ))?;
            self.sink.write_all(&self.payload_bytes.to_le_bytes())?;
            self.sink.seek(SeekFrom::Start(end))?;
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Frame header size of a v2 frame: record count + frame checksum.
const V2_FRAME_HEADER: usize = 4 + 8;

/// Frame header size of a v3 frame: record count + compressed length +
/// frame checksum.
const V3_FRAME_HEADER: usize = 4 + 4 + 8;

/// The frame checksum: the low 64 bits of FNV-1a-128 over the frame's
/// record bytes — deliberately the *same* fold the blob envelope records
/// for whole payloads, so the two can never diverge.
fn chunk_checksum(fp: &Fingerprinter) -> u64 {
    blob::checksum_finish(fp)
}

/// The sealed blob's trailing whole-payload checksum, folded incrementally.
fn payload_checksum(fp: &Fingerprinter) -> u64 {
    blob::checksum_finish(fp)
}

/// One undecoded chunk frame lifted off a chunk-framed stream: the frame's
/// payload bytes (row records under v2, a compressed column block under
/// v3), its record count, and the frame checksum the writer recorded.
///
/// Produced by [`TraceReader::next_raw`] (stage one: I/O). Verification,
/// decompression and parsing happen in [`RawChunk::decode_into`] (stage
/// two: CPU), which is what lets the [`pipeline`] run several decode
/// workers in parallel while a single reader thread owns the file handle —
/// under v3 that includes the per-chunk decompression. A `RawChunk` is
/// fully owned, so it can cross threads freely.
#[derive(Debug, Clone)]
pub struct RawChunk {
    first_index: u64,
    chunk_index: u64,
    checksum: u64,
    codec: TraceCodec,
    count: usize,
    records: Vec<u8>,
}

impl RawChunk {
    /// Number of access records in this frame — the *decoded* count, which
    /// is what the pipeline's in-flight byte budget charges, so the budget
    /// invariant is codec-independent.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the frame carries no records (never produced by a
    /// well-formed stream, but the type does not forbid it).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Index (within the whole trace) of the first access of the frame.
    pub fn first_index(&self) -> u64 {
        self.first_index
    }

    /// Size of the undecoded frame payload held by this frame — the raw
    /// record bytes under v2, the compressed column block under v3.
    pub fn byte_len(&self) -> usize {
        self.records.len()
    }

    /// Verifies the frame checksum, then decompresses (v3) and parses the
    /// records into `out` (cleared first) — stage two of the reader, safe
    /// to run on any thread.
    ///
    /// # Errors
    ///
    /// [`DecodeTraceError::ChunkChecksumMismatch`] when the frame payload
    /// does not match the recorded frame checksum, or a record-level decode
    /// error for malformed records.
    pub fn decode_into(&self, out: &mut Vec<MemAccess>) -> Result<(), TraceStreamError> {
        let mut fp = Fingerprinter::new();
        fp.write_bytes(&self.records);
        if chunk_checksum(&fp) != self.checksum {
            return Err(DecodeTraceError::ChunkChecksumMismatch {
                chunk: self.chunk_index,
            }
            .into());
        }
        match self.codec {
            TraceCodec::V2 => {
                out.clear();
                out.reserve(self.count);
                let mut records: &[u8] = &self.records;
                for _ in 0..self.count {
                    out.push(parse_access(&mut records)?);
                }
                Ok(())
            }
            TraceCodec::V3 => {
                columnar::decode_columns(&self.records, self.count, self.chunk_index, out)
                    .map_err(Into::into)
            }
        }
    }
}

/// A [`TraceSource`] that can additionally hand out *undecoded* frames, so
/// a pipeline can move the checksum/parse work onto worker threads.
/// Implemented by [`TraceReader`]; in-memory and generator sources have no
/// raw form (their chunks are born decoded).
pub trait RawFrameSource: TraceSource {
    /// The next raw frame, or `Ok(None)` once the stream is exhausted (the
    /// trailing whole-payload checksum is verified before `None`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceStreamError`] exactly like [`TraceSource::next_chunk`],
    /// except per-frame checksum mismatches, which surface later from
    /// [`RawChunk::decode_into`].
    fn next_raw(&mut self) -> Result<Option<RawChunk>, TraceStreamError>;
}

/// Streaming decoder of the chunk-framed codec: verifies the envelope
/// header eagerly, then hands out one verified chunk at a time. Memory use
/// is one chunk, regardless of trace length.
///
/// Integrity is end-to-end: each frame's checksum is verified before its
/// accesses are yielded, and after the last chunk the trailing
/// whole-payload checksum and the absence of trailing bytes are verified
/// before the final `Ok(None)`.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    /// Payload codec the envelope declared; frames are read and decoded
    /// accordingly.
    codec: TraceCodec,
    meta: TraceMeta,
    total: u64,
    chunk_len: usize,
    read_accesses: u64,
    chunk_index: u64,
    payload_fp: Fingerprinter,
    payload_remaining: u64,
    accesses: Vec<MemAccess>,
    byte_buf: Vec<u8>,
    finished: bool,
    /// First error returned, if any. A failed reader is poisoned: the
    /// stream position is indeterminate after an error, so every later
    /// call returns the same error instead of misreading frames —
    /// matching the sticky-error contract of the pipelined path.
    failed: Option<TraceStreamError>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a sealed chunk-framed stream, verifying the blob header (magic,
    /// envelope version, codec version, key) and decoding the trace header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceStreamError`] for I/O failures, an unusable envelope
    /// (including a non-chunked codec version and a key mismatch) or a
    /// malformed trace header.
    pub fn new(mut src: R, expected_key: Fingerprint) -> Result<Self, TraceStreamError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact_or_truncated(&mut src, &mut header, "header")?;
        let blob_header = blob::parse_header(&header)?;
        let Some(codec) = TraceCodec::from_version(blob_header.codec_version) else {
            return Err(BlobError::CodecVersionMismatch {
                found: blob_header.codec_version,
                expected: TRACE_CHUNKED_CODEC_VERSION,
            }
            .into());
        };
        if blob_header.key != expected_key {
            return Err(BlobError::KeyMismatch.into());
        }
        let mut reader = TraceReader {
            src,
            codec,
            meta: TraceMeta::default(),
            total: 0,
            chunk_len: 0,
            read_accesses: 0,
            chunk_index: 0,
            payload_fp: Fingerprinter::new(),
            payload_remaining: blob_header.payload_len,
            accesses: Vec::new(),
            byte_buf: Vec::new(),
            finished: false,
            failed: None,
        };
        reader.read_trace_header()?;
        // Untrusted header fields: reject framings a well-formed writer can
        // never produce (zero or oversized chunk length) before any sizing
        // arithmetic, bounding what a crafted header can make us allocate.
        if (reader.chunk_len == 0 && reader.total > 0) || reader.chunk_len > MAX_CHUNK_LEN {
            return Err(DecodeTraceError::BadChunkFraming { chunk: 0 }.into());
        }
        match codec {
            // v2's payload length is implied exactly by the header fields;
            // any mismatch (or an overflowing implied length) is a
            // vandalized length field.
            TraceCodec::V2 => {
                let expected = chunked_payload_len(
                    reader.meta.workload.len(),
                    reader.total,
                    reader.chunk_len.max(1),
                );
                if expected != Some(blob_header.payload_len) {
                    return Err(BlobError::Truncated { what: "payload" }.into());
                }
            }
            // v3 payload lengths are data-dependent, but a well-formed
            // stream can never be shorter than its frame headers alone —
            // so a vandalized total still fails closed here, before any
            // frame-sized allocation.
            TraceCodec::V3 => {
                let min = chunk_count(reader.total, reader.chunk_len.max(1))
                    .checked_mul(V3_FRAME_HEADER as u64)
                    .and_then(|frames| {
                        (payload_header_len(reader.meta.workload.len()) as u64).checked_add(frames)
                    });
                match min {
                    Some(min) if blob_header.payload_len >= min => {}
                    _ => return Err(BlobError::Truncated { what: "payload" }.into()),
                }
            }
        }
        Ok(reader)
    }

    fn read_trace_header(&mut self) -> Result<(), TraceStreamError> {
        let mut fixed = [0u8; 4 + 2];
        self.read_payload(&mut fixed, "trace magic")?;
        if u32::from_be_bytes(fixed[0..4].try_into().expect("4 bytes")) != CHUNKED_MAGIC {
            return Err(DecodeTraceError::BadMagic.into());
        }
        let name_len = u16::from_be_bytes(fixed[4..6].try_into().expect("2 bytes")) as usize;
        let mut name = vec![0u8; name_len];
        self.read_payload(&mut name, "workload name")?;
        let workload = String::from_utf8(name).map_err(|_| DecodeTraceError::InvalidName)?;
        let mut tail = [0u8; 2 + 8 + 8 + 8 + 4];
        self.read_payload(&mut tail, "trace header")?;
        self.meta = TraceMeta {
            workload,
            cores: u16::from_be_bytes(tail[0..2].try_into().expect("2 bytes")) as usize,
            seed: u64::from_be_bytes(tail[2..10].try_into().expect("8 bytes")),
            footprint_lines: u64::from_be_bytes(tail[10..18].try_into().expect("8 bytes")),
        };
        self.total = u64::from_be_bytes(tail[18..26].try_into().expect("8 bytes"));
        self.chunk_len = u32::from_be_bytes(tail[26..30].try_into().expect("4 bytes")) as usize;
        Ok(())
    }

    /// Reads exactly `buf.len()` payload bytes, folding them into the
    /// running whole-payload checksum and the remaining-payload budget.
    fn read_payload(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), TraceStreamError> {
        if (buf.len() as u64) > self.payload_remaining {
            return Err(BlobError::Truncated { what }.into());
        }
        read_exact_or_truncated(&mut self.src, buf, what)?;
        self.payload_remaining -= buf.len() as u64;
        self.payload_fp.write_bytes(buf);
        Ok(())
    }

    /// Metadata decoded from the stream header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Total accesses the stream declares.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Verifies the trailing whole-payload checksum and end-of-file after
    /// the last chunk.
    fn finalize(&mut self) -> Result<(), TraceStreamError> {
        if self.payload_remaining != 0 {
            return Err(BlobError::TrailingData.into());
        }
        let mut recorded = [0u8; CHECKSUM_LEN];
        read_exact_or_truncated(&mut self.src, &mut recorded, "checksum")?;
        if u64::from_le_bytes(recorded) != payload_checksum(&self.payload_fp) {
            return Err(BlobError::ChecksumMismatch.into());
        }
        let mut probe = [0u8; 1];
        match self.src.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(BlobError::TrailingData.into()),
            Err(err) => Err(err.into()),
        }
    }

    /// Stage one of the reader: reads the next frame's header and record
    /// bytes into `records` (reused if large enough), folding them into the
    /// whole-payload checksum, without verifying the frame checksum or
    /// parsing a single record.
    fn next_raw_into(&mut self, records: Vec<u8>) -> Result<Option<RawChunk>, TraceStreamError> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        let result = self.next_raw_inner(records);
        if let Err(err) = &result {
            self.failed = Some(err.clone());
        }
        result
    }

    fn next_raw_inner(
        &mut self,
        mut records: Vec<u8>,
    ) -> Result<Option<RawChunk>, TraceStreamError> {
        if self.finished {
            return Ok(None);
        }
        if self.read_accesses == self.total {
            self.finalize()?;
            self.finished = true;
            return Ok(None);
        }
        let expected = (self.total - self.read_accesses).min(self.chunk_len as u64);
        let (count, recorded) = match self.codec {
            TraceCodec::V2 => {
                let mut frame = [0u8; V2_FRAME_HEADER];
                self.read_payload(&mut frame, "chunk frame")?;
                let count = u32::from_be_bytes(frame[0..4].try_into().expect("4 bytes")) as u64;
                let recorded = u64::from_be_bytes(frame[4..12].try_into().expect("8 bytes"));
                if count != expected {
                    return Err(DecodeTraceError::BadChunkFraming {
                        chunk: self.chunk_index,
                    }
                    .into());
                }
                records.clear();
                records.resize(count as usize * ACCESS_RECORD_BYTES, 0);
                (count, recorded)
            }
            TraceCodec::V3 => {
                let mut frame = [0u8; V3_FRAME_HEADER];
                self.read_payload(&mut frame, "chunk frame")?;
                let count = u32::from_be_bytes(frame[0..4].try_into().expect("4 bytes")) as u64;
                let comp_len =
                    u32::from_be_bytes(frame[4..8].try_into().expect("4 bytes")) as usize;
                let recorded = u64::from_be_bytes(frame[8..16].try_into().expect("8 bytes"));
                // The compressed length is untrusted: bound it by the
                // worst-case column encoding of `expected` records before
                // allocating, mirroring how v2's count is bounded.
                if count != expected
                    || comp_len > expected as usize * columnar::MAX_ENCODED_RECORD_BYTES
                {
                    return Err(DecodeTraceError::BadChunkFraming {
                        chunk: self.chunk_index,
                    }
                    .into());
                }
                records.clear();
                records.resize(comp_len, 0);
                (count, recorded)
            }
        };
        self.read_payload(&mut records, "chunk records")?;
        let raw = RawChunk {
            first_index: self.read_accesses,
            chunk_index: self.chunk_index,
            checksum: recorded,
            codec: self.codec,
            count: count as usize,
            records,
        };
        self.read_accesses += count;
        self.chunk_index += 1;
        Ok(Some(raw))
    }

    /// Stage one + stage two on the calling thread — the synchronous path,
    /// and byte-for-byte the depth-0 special case of the pipeline.
    fn read_one_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
        let buf = std::mem::take(&mut self.byte_buf);
        let raw = match self.next_raw_into(buf)? {
            None => return Ok(None),
            Some(raw) => raw,
        };
        let decoded = raw.decode_into(&mut self.accesses);
        let first_index = raw.first_index;
        self.byte_buf = raw.records;
        if let Err(err) = decoded {
            self.failed = Some(err.clone());
            return Err(err);
        }
        Ok(Some(AccessChunk {
            accesses: &self.accesses,
            first_index,
        }))
    }
}

impl<R: Read> RawFrameSource for TraceReader<R> {
    fn next_raw(&mut self) -> Result<Option<RawChunk>, TraceStreamError> {
        self.next_raw_into(Vec::new())
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn total_accesses(&self) -> u64 {
        self.total
    }

    fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
        self.read_one_chunk()
    }
}

/// Reads exactly `buf.len()` bytes, mapping a premature end of stream to a
/// [`BlobError::Truncated`] naming `what`.
fn read_exact_or_truncated(
    src: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceStreamError> {
    src.read_exact(buf).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            BlobError::Truncated { what }.into()
        } else {
            err.into()
        }
    })
}

/// Seals a materialized trace with the chunk-framed **v2** row codec (the
/// in-memory convenience over [`ChunkedTraceWriter`]; the disk tier streams
/// instead). Stays pinned to v2 because its byte layout is what
/// compatibility tests and older-build cache files rely on; use
/// [`encode_chunked_with`] to pick the codec.
pub fn encode_chunked(trace: &Trace, key: Fingerprint, chunk_len: usize) -> Vec<u8> {
    encode_chunked_with(trace, key, chunk_len, TraceCodec::V2)
}

/// Seals a materialized trace with the chunk-framed codec of choice (the
/// in-memory convenience over [`ChunkedTraceWriter::with_codec`]).
pub fn encode_chunked_with(
    trace: &Trace,
    key: Fingerprint,
    chunk_len: usize,
    codec: TraceCodec,
) -> Vec<u8> {
    let mut writer = ChunkedTraceWriter::with_codec(
        io::Cursor::new(Vec::new()),
        key,
        trace.meta(),
        trace.len() as u64,
        chunk_len,
        codec,
    )
    .expect("in-memory sink cannot fail");
    writer
        .push(trace.accesses())
        .expect("in-memory sink cannot fail");
    writer
        .finish()
        .expect("declared count matches")
        .into_inner()
}

/// Opens and fully decodes a sealed chunk-framed trace (the in-memory
/// convenience over [`TraceReader`]).
///
/// # Errors
///
/// See [`TraceReader::new`] and [`TraceSource::next_chunk`].
pub fn decode_chunked(data: &[u8], key: Fingerprint) -> Result<Trace, TraceStreamError> {
    let mut reader = TraceReader::new(io::Cursor::new(data), key)?;
    collect_trace(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, CoreId, LineAddr};
    use proptest::prelude::*;

    fn key() -> Fingerprint {
        Fingerprint::from_raw(0xabc0_1234_5678_9def)
    }

    fn sample_trace(len: usize) -> Trace {
        let meta = TraceMeta {
            workload: "stream-unit".into(),
            cores: 4,
            seed: 99,
            footprint_lines: 4096,
        };
        let mut t = Trace::new(meta);
        for i in 0..len as u64 {
            let core = CoreId::new((i % 4) as u16);
            let mut a = MemAccess::read(core, LineAddr::new(i * 31 % 10_000))
                .with_gap((i % 13) as u32)
                .with_dependence(i % 5 == 0);
            if i % 7 == 0 {
                a = a.with_kind(AccessKind::Write);
            }
            t.push(a);
        }
        t
    }

    #[test]
    fn trace_chunks_cover_the_trace_in_order() {
        let t = sample_trace(250);
        let mut source = t.chunks(64);
        assert_eq!(source.total_accesses(), 250);
        assert_eq!(source.meta().workload, "stream-unit");
        let mut seen = Vec::new();
        let mut sizes = Vec::new();
        while let Some(chunk) = source.next_chunk().unwrap() {
            assert_eq!(chunk.first_index as usize, seen.len());
            sizes.push(chunk.accesses.len());
            seen.extend_from_slice(chunk.accesses);
        }
        assert_eq!(seen, t.accesses());
        assert_eq!(sizes, vec![64, 64, 64, 58]);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new(TraceMeta {
            workload: "empty".into(),
            ..Default::default()
        });
        let sealed = encode_chunked(&t, key(), 16);
        assert_eq!(decode_chunked(&sealed, key()).unwrap(), t);
        let mut source = t.chunks(16);
        assert!(source.next_chunk().unwrap().is_none());
    }

    #[test]
    fn collect_trace_rebuilds_the_original() {
        let t = sample_trace(1000);
        let back = collect_trace(&mut t.chunks(100)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn writer_reframes_arbitrary_push_slicings() {
        let t = sample_trace(500);
        let reference = encode_chunked(&t, key(), 128);
        // Push in awkward slices: 1, then 200, then the rest one by one.
        let mut writer = ChunkedTraceWriter::new(
            io::Cursor::new(Vec::new()),
            key(),
            t.meta(),
            t.len() as u64,
            128,
        )
        .unwrap();
        let all = t.accesses();
        writer.push(&all[..1]).unwrap();
        writer.push(&all[1..201]).unwrap();
        for a in &all[201..] {
            writer.push(std::slice::from_ref(a)).unwrap();
        }
        let sealed = writer.finish().unwrap().into_inner();
        assert_eq!(sealed, reference, "framing is independent of push slicing");
    }

    #[test]
    fn writer_enforces_the_declared_count() {
        let t = sample_trace(10);
        for codec in [TraceCodec::V2, TraceCodec::V3] {
            let sink = || io::Cursor::new(Vec::new());
            let mut writer =
                ChunkedTraceWriter::with_codec(sink(), key(), t.meta(), 11, 4, codec).unwrap();
            writer.push(t.accesses()).unwrap();
            assert!(writer.finish().is_err(), "one access short ({codec})");

            let mut writer =
                ChunkedTraceWriter::with_codec(sink(), key(), t.meta(), 9, 5, codec).unwrap();
            assert!(writer.push(t.accesses()).is_err(), "one access over");
            assert!(ChunkedTraceWriter::with_codec(sink(), key(), t.meta(), 10, 0, codec).is_err());
        }
    }

    #[test]
    fn reader_rejects_wrong_key_and_wrong_codec() {
        let t = sample_trace(50);
        let sealed = encode_chunked(&t, key(), 16);
        match decode_chunked(&sealed, Fingerprint::from_raw(1)) {
            Err(TraceStreamError::Envelope(BlobError::KeyMismatch)) => {}
            other => panic!("expected key mismatch, got {other:?}"),
        }
        // A whole-trace (v1) sealed blob is refused by codec version.
        let v1 = blob::seal(crate::trace::TRACE_CODEC_VERSION, key(), &t.encode());
        match decode_chunked(&v1, key()) {
            Err(TraceStreamError::Envelope(BlobError::CodecVersionMismatch {
                found: 1,
                expected: TRACE_CHUNKED_CODEC_VERSION,
            })) => {}
            other => panic!("expected codec mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_chunks_are_detected_before_their_accesses_are_yielded() {
        let t = sample_trace(300);
        let sealed = encode_chunked(&t, key(), 64);
        // Flip one record byte in the middle of the payload (third chunk).
        let mut bad = sealed.clone();
        let offset = HEADER_LEN + payload_header_len("stream-unit".len()) + 2 * (12 + 64 * 15) + 40;
        bad[offset] ^= 0x01;
        let mut reader = TraceReader::new(io::Cursor::new(&bad), key()).unwrap();
        let mut yielded = 0u64;
        let err = loop {
            match reader.next_chunk() {
                Ok(Some(chunk)) => yielded += chunk.accesses.len() as u64,
                Ok(None) => panic!("corruption must surface"),
                Err(err) => break err,
            }
        };
        assert_eq!(yielded, 128, "only the intact chunks were yielded");
        assert!(
            matches!(
                err,
                TraceStreamError::Trace(DecodeTraceError::ChunkChecksumMismatch { chunk: 2 })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn truncated_and_padded_streams_fail_closed() {
        let t = sample_trace(100);
        let sealed = encode_chunked(&t, key(), 32);
        // Truncation anywhere fails with a Truncated error.
        for cut in [
            HEADER_LEN - 1,
            HEADER_LEN + 5,
            sealed.len() - 9,
            sealed.len() - 1,
        ] {
            let result = TraceReader::new(io::Cursor::new(&sealed[..cut]), key())
                .and_then(|mut reader| collect_trace(&mut reader));
            assert!(
                matches!(
                    result,
                    Err(TraceStreamError::Envelope(BlobError::Truncated { .. }))
                ),
                "cut at {cut}: {result:?}"
            );
        }
        // Appended bytes are trailing data.
        let mut long = sealed.clone();
        long.push(0);
        let result = TraceReader::new(io::Cursor::new(&long), key())
            .and_then(|mut reader| collect_trace(&mut reader));
        assert!(
            matches!(
                result,
                Err(TraceStreamError::Envelope(BlobError::TrailingData))
            ),
            "{result:?}"
        );
    }

    #[test]
    fn vandalized_header_fields_fail_cleanly_not_by_overflow_or_allocation() {
        let t = sample_trace(100);
        let sealed = encode_chunked(&t, key(), 32);
        // Offsets inside the payload's trace header ("stream-unit" = 11).
        let total_at = HEADER_LEN + 4 + 2 + 11 + 2 + 8 + 8;
        let chunk_len_at = total_at + 8;

        // A total near u64::MAX must not overflow the payload-length
        // arithmetic (debug builds panic on overflow) — clean error.
        let mut bad = sealed.clone();
        bad[total_at..total_at + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        let result = TraceReader::new(io::Cursor::new(&bad), key());
        assert!(
            matches!(
                result,
                Err(TraceStreamError::Envelope(BlobError::Truncated { .. }))
            ),
            "{result:?}"
        );

        // A chunk_len beyond MAX_CHUNK_LEN is rejected before any sizing
        // arithmetic or allocation.
        let mut bad = sealed.clone();
        bad[chunk_len_at..chunk_len_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let result = TraceReader::new(io::Cursor::new(&bad), key());
        assert!(
            matches!(
                result,
                Err(TraceStreamError::Trace(DecodeTraceError::BadChunkFraming {
                    chunk: 0
                }))
            ),
            "{result:?}"
        );

        // And the writer refuses to produce such framings in the first
        // place, under either codec.
        for codec in [TraceCodec::V2, TraceCodec::V3] {
            let sink = || io::Cursor::new(Vec::new());
            assert!(ChunkedTraceWriter::with_codec(
                sink(),
                key(),
                t.meta(),
                10,
                MAX_CHUNK_LEN + 1,
                codec
            )
            .is_err());
            assert!(ChunkedTraceWriter::with_codec(
                sink(),
                key(),
                t.meta(),
                u64::MAX,
                MAX_CHUNK_LEN,
                codec
            )
            .is_err());
        }
    }

    #[test]
    fn v3_round_trips_shrinks_and_reads_with_no_flag() {
        let t = sample_trace(5000);
        let v2 = encode_chunked_with(&t, key(), 256, TraceCodec::V2);
        let v3 = encode_chunked_with(&t, key(), 256, TraceCodec::V3);
        // The reader dispatches on the envelope version: both decode with
        // the same call, no flag, to the same trace.
        assert_eq!(decode_chunked(&v2, key()).unwrap(), t);
        assert_eq!(decode_chunked(&v3, key()).unwrap(), t);
        assert!(
            v3.len() * 2 <= v2.len(),
            "columnar codec must at least halve this trace: v2={} v3={}",
            v2.len(),
            v3.len()
        );
        // The patched envelope payload length is the real payload length.
        let header = blob::parse_header(&v3).unwrap();
        assert_eq!(
            header.payload_len as usize,
            v3.len() - HEADER_LEN - CHECKSUM_LEN
        );
        assert_eq!(header.codec_version, TRACE_COLUMNAR_CODEC_VERSION);
    }

    #[test]
    fn v3_writer_reframes_arbitrary_push_slicings() {
        let t = sample_trace(500);
        let reference = encode_chunked_with(&t, key(), 128, TraceCodec::V3);
        let mut writer = ChunkedTraceWriter::with_codec(
            io::Cursor::new(Vec::new()),
            key(),
            t.meta(),
            t.len() as u64,
            128,
            TraceCodec::V3,
        )
        .unwrap();
        let all = t.accesses();
        writer.push(&all[..7]).unwrap();
        writer.push(&all[7..300]).unwrap();
        for a in &all[300..] {
            writer.push(std::slice::from_ref(a)).unwrap();
        }
        let sealed = writer.finish().unwrap().into_inner();
        assert_eq!(sealed, reference, "framing is independent of push slicing");
    }

    #[test]
    fn v3_empty_trace_round_trips() {
        let t = Trace::new(TraceMeta {
            workload: "empty".into(),
            ..Default::default()
        });
        let sealed = encode_chunked_with(&t, key(), 16, TraceCodec::V3);
        assert_eq!(decode_chunked(&sealed, key()).unwrap(), t);
    }

    #[test]
    fn unknown_codec_versions_are_rejected() {
        let t = sample_trace(20);
        let future = blob::seal(9, key(), &t.encode());
        match decode_chunked(&future, key()) {
            Err(TraceStreamError::Envelope(BlobError::CodecVersionMismatch {
                found: 9,
                expected: TRACE_CHUNKED_CODEC_VERSION,
            })) => {}
            other => panic!("expected codec mismatch, got {other:?}"),
        }
    }

    #[test]
    fn v3_corrupt_compressed_column_fails_the_frame_checksum_in_order() {
        let t = sample_trace(300);
        let sealed = encode_chunked_with(&t, key(), 64, TraceCodec::V3);
        // Walk the variable-length frames to the third one and flip a byte
        // in the middle of its compressed column block.
        let mut at = HEADER_LEN + payload_header_len("stream-unit".len());
        for _ in 0..2 {
            let comp_len = u32::from_be_bytes(sealed[at + 4..at + 8].try_into().unwrap()) as usize;
            at += V3_FRAME_HEADER + comp_len;
        }
        let comp_len = u32::from_be_bytes(sealed[at + 4..at + 8].try_into().unwrap()) as usize;
        let mut bad = sealed.clone();
        bad[at + V3_FRAME_HEADER + comp_len / 2] ^= 0x01;
        let mut reader = TraceReader::new(io::Cursor::new(&bad), key()).unwrap();
        let mut yielded = 0u64;
        let err = loop {
            match reader.next_chunk() {
                Ok(Some(chunk)) => yielded += chunk.accesses.len() as u64,
                Ok(None) => panic!("corruption must surface"),
                Err(err) => break err,
            }
        };
        assert_eq!(yielded, 128, "only the intact chunks were yielded");
        assert!(
            matches!(
                err,
                TraceStreamError::Trace(DecodeTraceError::ChunkChecksumMismatch { chunk: 2 })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn v3_truncated_and_padded_streams_fail_closed() {
        let t = sample_trace(100);
        let sealed = encode_chunked_with(&t, key(), 32, TraceCodec::V3);
        for cut in [
            HEADER_LEN - 1,
            HEADER_LEN + 5,
            sealed.len() - 9,
            sealed.len() - 1,
        ] {
            let result = TraceReader::new(io::Cursor::new(&sealed[..cut]), key())
                .and_then(|mut reader| collect_trace(&mut reader));
            assert!(
                matches!(
                    result,
                    Err(TraceStreamError::Envelope(BlobError::Truncated { .. }))
                ),
                "cut at {cut}: {result:?}"
            );
        }
        let mut long = sealed.clone();
        long.push(0);
        let result = TraceReader::new(io::Cursor::new(&long), key())
            .and_then(|mut reader| collect_trace(&mut reader));
        assert!(
            matches!(
                result,
                Err(TraceStreamError::Envelope(BlobError::TrailingData))
            ),
            "{result:?}"
        );
    }

    #[test]
    fn v3_vandalized_frame_length_fails_before_allocation() {
        let t = sample_trace(100);
        let sealed = encode_chunked_with(&t, key(), 32, TraceCodec::V3);
        // Blow up the first frame's compressed length beyond the worst-case
        // bound: rejected as framing corruption, not attempted as a
        // gigantic read.
        let frame_at = HEADER_LEN + payload_header_len("stream-unit".len());
        let mut bad = sealed.clone();
        bad[frame_at + 4..frame_at + 8].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut reader = TraceReader::new(io::Cursor::new(&bad), key()).unwrap();
        let result = reader.next_chunk();
        assert!(
            matches!(
                result,
                Err(TraceStreamError::Trace(DecodeTraceError::BadChunkFraming {
                    chunk: 0
                }))
            ),
            "{result:?}"
        );
        // A vandalized total fails the minimum-length check cleanly.
        let total_at = HEADER_LEN + 4 + 2 + 11 + 2 + 8 + 8;
        let mut bad = sealed.clone();
        bad[total_at..total_at + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        let result = TraceReader::new(io::Cursor::new(&bad), key());
        assert!(
            matches!(
                result,
                Err(TraceStreamError::Envelope(BlobError::Truncated { .. }))
            ),
            "{result:?}"
        );
    }

    #[test]
    fn errors_render_their_cause() {
        let io: TraceStreamError = io::Error::other("disk gone").into();
        assert!(io.to_string().contains("disk gone"));
        let env: TraceStreamError = BlobError::ChecksumMismatch.into();
        assert!(env.to_string().contains("checksum"));
        let tr: TraceStreamError = DecodeTraceError::ChunkChecksumMismatch { chunk: 3 }.into();
        assert!(tr.to_string().contains("chunk 3"));
    }

    proptest! {
        /// The chunk-framed codec round-trips any trace at any chunking, and
        /// the decoded trace is byte-for-byte the same as the whole-trace
        /// codec's view of it.
        #[test]
        fn prop_chunked_roundtrip_matches_whole_trace_codec(
            lines in proptest::collection::vec(0u64..1 << 40, 0..300),
            chunk_len in 1usize..70,
            seed in any::<u64>(),
        ) {
            let meta = TraceMeta { workload: "prop".into(), cores: 4, seed, footprint_lines: 7 };
            let mut t = Trace::new(meta);
            for (i, l) in lines.iter().enumerate() {
                let core = CoreId::new((i % 4) as u16);
                let acc = if i % 3 == 0 {
                    MemAccess::write(core, LineAddr::new(*l))
                } else {
                    MemAccess::read(core, LineAddr::new(*l)).with_dependence(i % 5 == 0)
                };
                t.push(acc.with_gap((i % 17) as u32));
            }
            let sealed = encode_chunked(&t, key(), chunk_len);
            let back = decode_chunked(&sealed, key()).unwrap();
            prop_assert_eq!(&back, &t);
            // Cross-codec identity: decoding the chunked stream and decoding
            // the whole-trace codec agree byte for byte on re-encode.
            prop_assert_eq!(back.encode(), Trace::decode(&t.encode()).unwrap().encode());
            // v2 ↔ v3 cross-decode equality: the columnar codec over the
            // same trace and chunking decodes to the identical trace.
            let columnar = encode_chunked_with(&t, key(), chunk_len, TraceCodec::V3);
            prop_assert_eq!(decode_chunked(&columnar, key()).unwrap(), back);
        }

        /// Record-level byte identity: the concatenated record bytes of the
        /// chunked stream equal the record region of `Trace::encode`,
        /// regardless of chunking — the whole-trace codec really is the
        /// single-chunk special case.
        #[test]
        fn prop_record_bytes_identical_across_codecs(
            lines in proptest::collection::vec(0u64..1 << 30, 1..120),
            chunk_len in 1usize..40,
        ) {
            let meta = TraceMeta { workload: "rec".into(), cores: 2, seed: 1, footprint_lines: 1 };
            let mut t = Trace::new(meta);
            for (i, l) in lines.iter().enumerate() {
                t.push(MemAccess::read(CoreId::new((i % 2) as u16), LineAddr::new(*l)));
            }
            // Record region of the whole-trace codec: everything after its
            // fixed header.
            let whole = t.encode();
            let whole_records = &whole[4 + 2 + 3 + 2 + 8 + 8 + 8..];
            // Record region of the chunked codec: strip envelope, trace
            // header, frame headers and trailing checksum.
            let sealed = encode_chunked(&t, key(), chunk_len);
            let mut chunked_records = Vec::new();
            let mut at = HEADER_LEN + payload_header_len(3);
            let mut remaining = t.len();
            while remaining > 0 {
                let n = remaining.min(chunk_len);
                at += 12; // frame count + checksum
                chunked_records.extend_from_slice(&sealed[at..at + n * ACCESS_RECORD_BYTES]);
                at += n * ACCESS_RECORD_BYTES;
                remaining -= n;
            }
            prop_assert_eq!(chunked_records.as_slice(), whole_records);
        }
    }
}
