//! Staged prefetch→decode→simulate replay pipeline.
//!
//! The synchronous replay path reads, checksums, decodes and simulates
//! every chunk on one thread, so disk latency and decode cost serialize
//! with simulation. [`ChunkPipeline`] breaks that serialization into the
//! classic bounded-buffer shape:
//!
//! ```text
//!             ┌────────────┐   raw frames    ┌──────────────┐
//!  disk ────▶ │  reader    │ ──────────────▶ │ decode worker│──┐
//!  (or gen)   │  (1 thread)│   work queue    │   × N        │  │ ordered
//!             └────────────┘                 └──────────────┘  │ chunks
//!                   │ depth slots + global byte budget         ▼
//!                   │                              ┌──────────────────┐
//!                   └────── decoded chunks ──────▶ │ reorder → source │──▶ simulator
//!                          (sources without a      └──────────────────┘
//!                           raw form skip the workers)
//! ```
//!
//! * The **reader stage** owns the underlying [`TraceSource`] and
//!   prefetches up to `depth` chunks ahead of the consumer ([`MIN_PIPELINE_DEPTH`]
//!   = double buffering at minimum). Depth 0 means *no threads at all*:
//!   the consumer is handed the source directly, which is the existing
//!   synchronous path — not a reimplementation of it.
//! * **Decode workers** (for [`RawFrameSource`] inputs, i.e. disk streams)
//!   verify frame checksums and parse records in parallel; a reorder
//!   buffer delivers chunks strictly in trace order, so consumers see the
//!   exact sequence the synchronous path yields.
//! * **Errors travel in-band**: a mid-stream failure (corrupt frame,
//!   truncated file, even a panic in a stage) is delivered *at its
//!   position* after every preceding good chunk, as the same
//!   [`TraceStreamError`] the synchronous reader would return — so the
//!   evict/regenerate/fallback logic layered on top keeps firing
//!   unchanged.
//! * An optional [`InflightBudget`] caps the total bytes of decoded chunks
//!   in flight across *all* pipelines sharing it (a campaign-global cap,
//!   not per-job). The budget always admits a pipeline holding nothing —
//!   see the invariant on [`InflightBudget`] — so progress is guaranteed
//!   no matter how small the budget or how many pipelines share it.
//!
//! Shutdown is unconditional: dropping the consumer-side source (early
//! exit, simulator error, panic) cancels the stages, wakes every blocked
//! thread, and the scope join reclaims them — no detached threads, no
//! deadlock.

use super::{AccessChunk, RawChunk, RawFrameSource, TraceSource, TraceStreamError};
use crate::{MemAccess, TraceMeta};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Smallest useful pipeline depth: one chunk being consumed while the next
/// is prefetched (double buffering). [`PipelineConfig::with_depth`] clamps
/// non-zero depths up to this.
pub const MIN_PIPELINE_DEPTH: usize = 2;

/// How a replay pipeline is shaped. `depth == 0` is the synchronous path
/// (no threads); any other depth runs the staged engine with that many
/// prefetch slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of chunks the reader stage may run ahead of the consumer.
    /// Zero disables the pipeline entirely.
    pub depth: usize,
    /// Number of checksum/decode workers (only effective for raw-frame
    /// inputs; decoded inputs have nothing to decode). At least 1.
    pub decode_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::serial()
    }
}

impl PipelineConfig {
    /// The synchronous configuration: no threads, no buffering.
    pub fn serial() -> Self {
        PipelineConfig {
            depth: 0,
            decode_threads: 1,
        }
    }

    /// A pipelined configuration of the given depth. Zero stays serial;
    /// non-zero depths are clamped up to [`MIN_PIPELINE_DEPTH`] (a depth-1
    /// "pipeline" could never overlap anything).
    pub fn with_depth(depth: usize) -> Self {
        let depth = if depth == 0 {
            0
        } else {
            depth.max(MIN_PIPELINE_DEPTH)
        };
        PipelineConfig {
            depth,
            decode_threads: 1,
        }
    }

    /// Sets the number of decode workers (clamped to at least 1).
    pub fn with_decode_threads(mut self, threads: usize) -> Self {
        self.decode_threads = threads.max(1);
        self
    }

    /// Whether this configuration bypasses the staged engine.
    pub fn is_serial(&self) -> bool {
        self.depth == 0
    }
}

/// Which pipeline stage a [`StageObserver`] sample describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeStage {
    /// Reader stage: one `next_chunk`/`next_raw` call against the wrapped
    /// source (disk read or generator step).
    Prefetch,
    /// Decode worker: checksum verification + record parsing of one raw
    /// frame.
    Decode,
    /// Time the reader spent blocked on the shared [`InflightBudget`]
    /// before a chunk was admitted (only recorded when it actually
    /// stalled).
    BudgetStall,
}

/// Per-stage timing sink for a pipeline run. The pipeline calls
/// [`StageObserver::record`] once per chunk per stage with the stage's
/// service time in nanoseconds; implementations must be cheap and
/// non-blocking (the campaign layer forwards into lock-free telemetry
/// histograms). The serial (depth-0) path runs no stages and records
/// nothing.
pub trait StageObserver: std::fmt::Debug + Sync {
    /// Records one stage execution of `nanos` nanoseconds.
    fn record(&self, stage: PipeStage, nanos: u64);
}

/// Runs `f`, reporting its wall time to `observer` (when present) under
/// `stage`. `keep` filters the sample — budget acquisitions report only
/// when they actually stalled.
fn timed<T>(
    observer: Option<&dyn StageObserver>,
    stage: PipeStage,
    keep: impl FnOnce(&T) -> bool,
    f: impl FnOnce() -> T,
) -> T {
    match observer {
        None => f(),
        Some(obs) => {
            let start = std::time::Instant::now();
            let out = f();
            if keep(&out) {
                let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                obs.record(stage, nanos);
            }
            out
        }
    }
}

/// Counters describing one pipeline run, for the run summary's
/// `PipelineReport`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Chunks the reader stage lifted off the source.
    pub chunks_prefetched: u64,
    /// Times the reader stage blocked because every prefetch slot was full
    /// or the shared byte budget was exhausted.
    pub stalls_full: u64,
    /// Times the consumer blocked waiting for the next in-order chunk.
    pub stalls_empty: u64,
    /// High-water mark of decoded bytes buffered by this pipeline.
    pub peak_bytes_in_flight: u64,
}

impl PipelineStats {
    /// Folds another run's counters into this one (peak = max of peaks).
    pub fn absorb(&mut self, other: &PipelineStats) {
        self.chunks_prefetched = self
            .chunks_prefetched
            .saturating_add(other.chunks_prefetched);
        self.stalls_full = self.stalls_full.saturating_add(other.stalls_full);
        self.stalls_empty = self.stalls_empty.saturating_add(other.stalls_empty);
        self.peak_bytes_in_flight = self.peak_bytes_in_flight.max(other.peak_bytes_in_flight);
    }
}

/// A shared cap on the total decoded bytes buffered by every pipeline that
/// carries a reference to it — the campaign-global scheduler's tool for
/// keeping N concurrent replays from multiplying N × depth × chunk bytes
/// of memory.
///
/// # Invariant (progress)
///
/// A pipeline that currently holds **zero** in-flight bytes is always
/// admitted, even when the budget is exhausted — so every pipeline can
/// keep at least one chunk moving and no budget setting can deadlock the
/// fleet. The cap is therefore soft by up to one chunk per pipeline, which
/// is the classic bounded-buffer progress rule.
#[derive(Debug)]
pub struct InflightBudget {
    max_bytes: u64,
    used: Mutex<u64>,
    freed: Condvar,
}

impl InflightBudget {
    /// A budget capping shared in-flight bytes at `max_bytes` (at least 1).
    pub fn new(max_bytes: u64) -> Self {
        InflightBudget {
            max_bytes: max_bytes.max(1),
            used: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// A budget that never blocks anyone.
    pub fn unlimited() -> Self {
        InflightBudget::new(u64::MAX)
    }

    /// The configured cap.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Bytes currently admitted across all sharing pipelines.
    pub fn in_use(&self) -> u64 {
        *self.used.lock().expect("budget lock")
    }

    /// Blocks until `bytes` fit under the cap (or the holder qualifies for
    /// the at-least-one rule). Returns `Some(stalled)` once admitted, or
    /// `None` if `cancel` was raised while waiting.
    fn acquire(&self, bytes: u64, held: &AtomicU64, cancel: &AtomicBool) -> Option<bool> {
        let mut used = self.used.lock().expect("budget lock");
        let mut stalled = false;
        loop {
            if cancel.load(Ordering::Acquire) {
                return None;
            }
            let admit =
                held.load(Ordering::Acquire) == 0 || used.saturating_add(bytes) <= self.max_bytes;
            if admit {
                *used = used.saturating_add(bytes);
                held.fetch_add(bytes, Ordering::AcqRel);
                return Some(stalled);
            }
            stalled = true;
            // Timed wait as lost-wakeup insurance; correctness only needs
            // the re-check.
            let (guard, _) = self
                .freed
                .wait_timeout(used, Duration::from_millis(50))
                .expect("budget lock");
            used = guard;
        }
    }

    /// Returns `bytes` to the budget and wakes waiters.
    fn release(&self, bytes: u64, held: &AtomicU64) {
        if bytes == 0 {
            return;
        }
        let mut used = self.used.lock().expect("budget lock");
        *used = used.saturating_sub(bytes);
        let _ = held.fetch_update(Ordering::AcqRel, Ordering::Acquire, |h| {
            Some(h.saturating_sub(bytes))
        });
        drop(used);
        self.freed.notify_all();
    }

    /// Wakes every waiter so it can observe a raised cancel flag. Locking
    /// first makes the wakeup reliable against the check-then-wait window.
    fn wake_all(&self) {
        drop(self.used.lock().expect("budget lock"));
        self.freed.notify_all();
    }
}

/// What flows into a pipeline: chunks that are born decoded (generators,
/// in-memory traces) or raw frames a disk reader lifts off a sealed file.
pub enum PipelineInput<'a> {
    /// The source yields decoded chunks; the reader stage copies them into
    /// owned buffers and no decode workers run.
    Decoded(&'a mut (dyn TraceSource + Send)),
    /// The source yields raw frames; decode workers verify and parse them
    /// in parallel.
    Frames(&'a mut (dyn RawFrameSource + Send)),
}

impl std::fmt::Debug for PipelineInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            PipelineInput::Decoded(_) => "Decoded",
            PipelineInput::Frames(_) => "Frames",
        };
        f.debug_struct("PipelineInput")
            .field("kind", &kind)
            .field("workload", &self.meta().workload)
            .finish()
    }
}

impl PipelineInput<'_> {
    fn meta(&self) -> &TraceMeta {
        match self {
            PipelineInput::Decoded(src) => src.meta(),
            PipelineInput::Frames(src) => src.meta(),
        }
    }

    fn total_accesses(&self) -> u64 {
        match self {
            PipelineInput::Decoded(src) => src.total_accesses(),
            PipelineInput::Frames(src) => src.total_accesses(),
        }
    }
}

/// The staged prefetch→decode engine over any [`TraceSource`].
///
/// Construct one per replay, then call [`ChunkPipeline::run`] with the
/// consumer. The consumer receives a `&mut dyn TraceSource` that yields
/// the same chunks, in the same order, with the same errors, as the
/// wrapped source — the only observable difference is that reading and
/// decoding happen ahead of it on other threads.
///
/// # Example
///
/// ```
/// use stms_types::stream::pipeline::{ChunkPipeline, PipelineConfig, PipelineInput};
/// use stms_types::{stream, CoreId, LineAddr, MemAccess, Trace, TraceMeta};
///
/// let mut trace = Trace::new(TraceMeta { workload: "demo".into(), cores: 1, ..Default::default() });
/// for i in 0..1000u64 {
///     trace.push(MemAccess::read(CoreId::new(0), LineAddr::new(i)));
/// }
/// let mut chunks = trace.chunks(128);
/// let pipeline = ChunkPipeline::new(PipelineInput::Decoded(&mut chunks), PipelineConfig::with_depth(4));
/// let (copy, stats) = pipeline.run(|source| stream::collect_trace(source));
/// assert_eq!(copy.unwrap(), trace);
/// assert_eq!(stats.chunks_prefetched, 8);
/// ```
#[derive(Debug)]
pub struct ChunkPipeline<'a> {
    input: PipelineInput<'a>,
    config: PipelineConfig,
    budget: Option<&'a InflightBudget>,
    observer: Option<&'a dyn StageObserver>,
}

impl<'a> ChunkPipeline<'a> {
    /// Wraps `input` in a pipeline of the given shape.
    pub fn new(input: PipelineInput<'a>, config: PipelineConfig) -> Self {
        ChunkPipeline {
            input,
            config,
            budget: None,
            observer: None,
        }
    }

    /// Shares an in-flight byte budget with other pipelines (the
    /// campaign-global cap).
    pub fn with_budget(mut self, budget: &'a InflightBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a per-stage timing sink (see [`StageObserver`]).
    pub fn with_observer(mut self, observer: &'a dyn StageObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs `consume` against the pipelined view of the source and returns
    /// its result plus the pipeline's counters.
    ///
    /// With a serial config this calls `consume` directly on the wrapped
    /// source — the depth-0 special case *is* the synchronous path. The
    /// stage threads are scoped: by the time `run` returns they have all
    /// been joined, even if `consume` exits early or panics.
    pub fn run<T>(self, consume: impl FnOnce(&mut dyn TraceSource) -> T) -> (T, PipelineStats) {
        if self.config.is_serial() {
            let out = match self.input {
                PipelineInput::Decoded(src) => consume(src),
                PipelineInput::Frames(src) => consume(src as &mut dyn TraceSource),
            };
            return (out, PipelineStats::default());
        }
        let meta = self.input.meta().clone();
        let total = self.input.total_accesses();
        let depth = self.config.depth.max(MIN_PIPELINE_DEPTH);
        let workers = match self.input {
            // Decoded chunks have nothing to verify or parse.
            PipelineInput::Decoded(_) => 0,
            PipelineInput::Frames(_) => self.config.decode_threads.max(1),
        };
        let shared = PipeShared::new(depth);
        let budget = self.budget;
        let observer = self.observer;
        let input = self.input;
        let out = std::thread::scope(|scope| {
            scope.spawn(|| reader_stage(input, &shared, budget, observer));
            for _ in 0..workers {
                scope.spawn(|| worker_stage(&shared, observer));
            }
            let mut source = PipedSource {
                shared: &shared,
                budget,
                meta,
                total,
                current: Vec::new(),
                current_first: 0,
                current_cost: None,
                failed: None,
                finished: false,
            };
            consume(&mut source)
            // `source` drops here: cancels the stages and wakes every
            // blocked thread, so the scope's implicit joins cannot hang.
        });
        // Stages are joined; return whatever the consumer never popped.
        if let Some(budget) = budget {
            let residual = shared.held_bytes.swap(0, Ordering::AcqRel);
            if residual > 0 {
                let mut used = budget.used.lock().expect("budget lock");
                *used = used.saturating_sub(residual);
                drop(used);
                budget.freed.notify_all();
            }
        }
        let stats = shared.stats();
        (out, stats)
    }
}

/// Approximate decoded footprint of a chunk, the unit the slot bytes and
/// the shared budget are accounted in. At least 1 so progress accounting
/// never divides into nothing.
fn chunk_cost(accesses: usize) -> u64 {
    (accesses * std::mem::size_of::<MemAccess>()).max(1) as u64
}

fn panic_error(stage: &str) -> TraceStreamError {
    TraceStreamError::Io {
        error: format!("panic in pipeline {stage} stage"),
    }
}

/// A decoded chunk owned by the pipeline, en route to the consumer.
#[derive(Debug)]
struct OwnedChunk {
    first_index: u64,
    accesses: Vec<MemAccess>,
}

/// What the reorder buffer delivers for one sequence number.
#[derive(Debug)]
enum StageItem {
    Chunk(OwnedChunk),
    Err(TraceStreamError),
}

/// A delivered item plus the slot bytes it holds (released by the
/// consumer, chunk and error alike, so accounting never leaks).
#[derive(Debug)]
struct Delivered {
    item: StageItem,
    cost: u64,
}

#[derive(Debug)]
struct GateState {
    depth: usize,
    slots_used: usize,
    bytes_in_flight: u64,
    peak_bytes: u64,
    stalls_full: u64,
    chunks_read: u64,
}

#[derive(Debug)]
struct ReorderState {
    next: u64,
    end: Option<u64>,
    slots: BTreeMap<u64, Delivered>,
    stalls_empty: u64,
}

#[derive(Debug)]
struct WorkState {
    queue: VecDeque<(u64, RawChunk, u64)>,
    closed: bool,
}

/// Everything the stages share. One per pipeline run; lives on the
/// `run` stack frame and is borrowed by the scoped threads.
#[derive(Debug)]
struct PipeShared {
    gate: Mutex<GateState>,
    gate_cv: Condvar,
    reorder: Mutex<ReorderState>,
    ready_cv: Condvar,
    work: Mutex<WorkState>,
    work_cv: Condvar,
    cancel: AtomicBool,
    /// Bytes this pipeline currently holds out of the shared budget
    /// (drives the at-least-one admission rule and residual release).
    held_bytes: AtomicU64,
}

impl PipeShared {
    fn new(depth: usize) -> Self {
        PipeShared {
            gate: Mutex::new(GateState {
                depth,
                slots_used: 0,
                bytes_in_flight: 0,
                peak_bytes: 0,
                stalls_full: 0,
                chunks_read: 0,
            }),
            gate_cv: Condvar::new(),
            reorder: Mutex::new(ReorderState {
                next: 0,
                end: None,
                slots: BTreeMap::new(),
                stalls_empty: 0,
            }),
            ready_cv: Condvar::new(),
            work: Mutex::new(WorkState {
                queue: VecDeque::new(),
                closed: false,
            }),
            work_cv: Condvar::new(),
            cancel: AtomicBool::new(false),
            held_bytes: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> PipelineStats {
        let gate = self.gate.lock().expect("gate lock");
        let reorder = self.reorder.lock().expect("reorder lock");
        PipelineStats {
            chunks_prefetched: gate.chunks_read,
            stalls_full: gate.stalls_full,
            stalls_empty: reorder.stalls_empty,
            peak_bytes_in_flight: gate.peak_bytes,
        }
    }

    /// Raises the cancel flag and wakes every stage, whatever it is
    /// blocked on.
    fn cancel_all(&self, budget: Option<&InflightBudget>) {
        self.cancel.store(true, Ordering::Release);
        drop(self.gate.lock().expect("gate lock"));
        self.gate_cv.notify_all();
        drop(self.work.lock().expect("work lock"));
        self.work_cv.notify_all();
        drop(self.reorder.lock().expect("reorder lock"));
        self.ready_cv.notify_all();
        if let Some(budget) = budget {
            budget.wake_all();
        }
    }
}

/// Blocks until a prefetch slot frees up. Returns false when cancelled.
fn acquire_slot(shared: &PipeShared) -> bool {
    let mut gate = shared.gate.lock().expect("gate lock");
    let mut stalled = false;
    loop {
        if shared.cancel.load(Ordering::Acquire) {
            return false;
        }
        if gate.slots_used < gate.depth {
            gate.slots_used += 1;
            return true;
        }
        if !stalled {
            stalled = true;
            gate.stalls_full += 1;
        }
        gate = shared.gate_cv.wait(gate).expect("gate lock");
    }
}

/// Returns one slot (and its bytes) to the gate.
fn release_slot(shared: &PipeShared, cost: u64) {
    let mut gate = shared.gate.lock().expect("gate lock");
    gate.slots_used = gate.slots_used.saturating_sub(1);
    gate.bytes_in_flight = gate.bytes_in_flight.saturating_sub(cost);
    drop(gate);
    shared.gate_cv.notify_all();
}

/// Records a freshly prefetched chunk's bytes against the gate.
fn note_chunk_read(shared: &PipeShared, cost: u64, budget_stalled: bool) {
    let mut gate = shared.gate.lock().expect("gate lock");
    gate.chunks_read += 1;
    gate.bytes_in_flight = gate.bytes_in_flight.saturating_add(cost);
    gate.peak_bytes = gate.peak_bytes.max(gate.bytes_in_flight);
    if budget_stalled {
        gate.stalls_full += 1;
    }
}

/// Acquires `cost` bytes from the shared budget (no-op without one).
/// Returns `None` when cancelled, else whether the acquisition blocked.
fn acquire_budget(shared: &PipeShared, budget: Option<&InflightBudget>, cost: u64) -> Option<bool> {
    match budget {
        None => Some(false),
        Some(budget) => budget.acquire(cost, &shared.held_bytes, &shared.cancel),
    }
}

fn release_budget(shared: &PipeShared, budget: Option<&InflightBudget>, cost: u64) {
    if let Some(budget) = budget {
        budget.release(cost, &shared.held_bytes);
    }
}

/// Inserts a delivered item at its sequence position.
fn deliver(shared: &PipeShared, seq: u64, delivered: Delivered) {
    let mut reorder = shared.reorder.lock().expect("reorder lock");
    reorder.slots.insert(seq, delivered);
    drop(reorder);
    shared.ready_cv.notify_all();
}

/// Marks the stream as ending at `end` items (no seq ≥ `end` will arrive).
fn finish_stream(shared: &PipeShared, end: u64) {
    let mut reorder = shared.reorder.lock().expect("reorder lock");
    reorder.end = Some(end);
    drop(reorder);
    shared.ready_cv.notify_all();
}

/// Closes the decode work queue so idle workers exit.
fn close_work(shared: &PipeShared) {
    let mut work = shared.work.lock().expect("work lock");
    work.closed = true;
    drop(work);
    shared.work_cv.notify_all();
}

/// The reader stage: prefetches chunks (or raw frames) under the slot and
/// budget caps. Panics are converted into an in-band stream error at the
/// panicking position — the consumer sees them exactly like a corrupt
/// chunk.
fn reader_stage(
    input: PipelineInput<'_>,
    shared: &PipeShared,
    budget: Option<&InflightBudget>,
    observer: Option<&dyn StageObserver>,
) {
    let mut seq = 0u64;
    let outcome = catch_unwind(AssertUnwindSafe(|| match input {
        PipelineInput::Decoded(source) => read_decoded(source, shared, budget, &mut seq, observer),
        PipelineInput::Frames(source) => read_frames(source, shared, budget, &mut seq, observer),
    }));
    if outcome.is_err() {
        deliver(
            shared,
            seq,
            Delivered {
                item: StageItem::Err(panic_error("reader")),
                cost: 0,
            },
        );
        seq += 1;
    }
    finish_stream(shared, seq);
    close_work(shared);
}

/// Reader body for decoded inputs: copy each chunk into an owned buffer
/// and deliver it straight to the reorder buffer (there is nothing for
/// decode workers to do).
fn read_decoded(
    source: &mut (dyn TraceSource + Send),
    shared: &PipeShared,
    budget: Option<&InflightBudget>,
    seq: &mut u64,
    observer: Option<&dyn StageObserver>,
) {
    loop {
        if !acquire_slot(shared) {
            return;
        }
        match timed(
            observer,
            PipeStage::Prefetch,
            |_| true,
            || source.next_chunk(),
        ) {
            Ok(None) => {
                release_slot(shared, 0);
                return;
            }
            Err(err) => {
                deliver(
                    shared,
                    *seq,
                    Delivered {
                        item: StageItem::Err(err),
                        cost: 0,
                    },
                );
                *seq += 1;
                return;
            }
            Ok(Some(chunk)) => {
                let owned = OwnedChunk {
                    first_index: chunk.first_index,
                    accesses: chunk.accesses.to_vec(),
                };
                let cost = chunk_cost(owned.accesses.len());
                let Some(stalled) = timed(
                    observer,
                    PipeStage::BudgetStall,
                    |admitted: &Option<bool>| *admitted == Some(true),
                    || acquire_budget(shared, budget, cost),
                ) else {
                    release_slot(shared, 0);
                    return;
                };
                note_chunk_read(shared, cost, stalled);
                deliver(
                    shared,
                    *seq,
                    Delivered {
                        item: StageItem::Chunk(owned),
                        cost,
                    },
                );
                *seq += 1;
            }
        }
    }
}

/// Reader body for raw-frame inputs: lift frames off the stream and queue
/// them for the decode workers.
fn read_frames(
    source: &mut (dyn RawFrameSource + Send),
    shared: &PipeShared,
    budget: Option<&InflightBudget>,
    seq: &mut u64,
    observer: Option<&dyn StageObserver>,
) {
    loop {
        if !acquire_slot(shared) {
            return;
        }
        match timed(
            observer,
            PipeStage::Prefetch,
            |_| true,
            || source.next_raw(),
        ) {
            Ok(None) => {
                release_slot(shared, 0);
                return;
            }
            Err(err) => {
                deliver(
                    shared,
                    *seq,
                    Delivered {
                        item: StageItem::Err(err),
                        cost: 0,
                    },
                );
                *seq += 1;
                return;
            }
            Ok(Some(raw)) => {
                let cost = chunk_cost(raw.len());
                let Some(stalled) = timed(
                    observer,
                    PipeStage::BudgetStall,
                    |admitted: &Option<bool>| *admitted == Some(true),
                    || acquire_budget(shared, budget, cost),
                ) else {
                    release_slot(shared, 0);
                    return;
                };
                note_chunk_read(shared, cost, stalled);
                let mut work = shared.work.lock().expect("work lock");
                work.queue.push_back((*seq, raw, cost));
                drop(work);
                shared.work_cv.notify_all();
                *seq += 1;
            }
        }
    }
}

/// A decode worker: verify + parse raw frames, in any order, delivering
/// into the reorder buffer. Panics (including ones raised by `decode_into`
/// internals) become in-band errors at the frame's position.
fn worker_stage(shared: &PipeShared, observer: Option<&dyn StageObserver>) {
    loop {
        let job = {
            let mut work = shared.work.lock().expect("work lock");
            loop {
                if shared.cancel.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = work.queue.pop_front() {
                    break Some(job);
                }
                if work.closed {
                    break None;
                }
                work = shared.work_cv.wait(work).expect("work lock");
            }
        };
        let Some((seq, raw, cost)) = job else { return };
        let item = match timed(
            observer,
            PipeStage::Decode,
            |_| true,
            || {
                catch_unwind(AssertUnwindSafe(|| {
                    let mut accesses = Vec::with_capacity(raw.len());
                    raw.decode_into(&mut accesses).map(|()| OwnedChunk {
                        first_index: raw.first_index(),
                        accesses,
                    })
                }))
            },
        ) {
            Ok(Ok(chunk)) => StageItem::Chunk(chunk),
            Ok(Err(err)) => StageItem::Err(err),
            Err(_) => StageItem::Err(panic_error("decode")),
        };
        deliver(shared, seq, Delivered { item, cost });
    }
}

/// The consumer-facing [`TraceSource`] over the reorder buffer. Dropping
/// it — normally, early, or during a panic — cancels the whole pipeline.
#[derive(Debug)]
struct PipedSource<'s> {
    shared: &'s PipeShared,
    budget: Option<&'s InflightBudget>,
    meta: TraceMeta,
    total: u64,
    current: Vec<MemAccess>,
    current_first: u64,
    current_cost: Option<u64>,
    failed: Option<TraceStreamError>,
    finished: bool,
}

impl PipedSource<'_> {
    /// Releases the slot and budget bytes of the chunk the consumer just
    /// finished with.
    fn release_current(&mut self) {
        if let Some(cost) = self.current_cost.take() {
            release_slot(self.shared, cost);
            release_budget(self.shared, self.budget, cost);
        }
    }

    fn pop_delivered(&mut self) -> Option<Delivered> {
        let mut reorder: MutexGuard<'_, ReorderState> =
            self.shared.reorder.lock().expect("reorder lock");
        let mut stalled = false;
        loop {
            let next = reorder.next;
            if let Some(delivered) = reorder.slots.remove(&next) {
                reorder.next += 1;
                return Some(delivered);
            }
            if reorder.end == Some(next) {
                return None;
            }
            if !stalled {
                stalled = true;
                reorder.stalls_empty += 1;
            }
            reorder = self.shared.ready_cv.wait(reorder).expect("reorder lock");
        }
    }
}

impl TraceSource for PipedSource<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn total_accesses(&self) -> u64 {
        self.total
    }

    fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
        self.release_current();
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        if self.finished {
            return Ok(None);
        }
        match self.pop_delivered() {
            None => {
                self.finished = true;
                Ok(None)
            }
            Some(Delivered {
                item: StageItem::Chunk(chunk),
                cost,
            }) => {
                self.current = chunk.accesses;
                self.current_first = chunk.first_index;
                self.current_cost = Some(cost);
                Ok(Some(AccessChunk {
                    accesses: &self.current,
                    first_index: self.current_first,
                }))
            }
            Some(Delivered {
                item: StageItem::Err(err),
                cost,
            }) => {
                // The errored position's slot is released immediately; the
                // error itself is sticky, like a failed reader.
                release_slot(self.shared, cost);
                release_budget(self.shared, self.budget, cost);
                self.failed = Some(err.clone());
                Err(err)
            }
        }
    }
}

impl Drop for PipedSource<'_> {
    fn drop(&mut self) {
        self.release_current();
        self.shared.cancel_all(self.budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{collect_trace, encode_chunked, TraceReader};
    use crate::trace::DecodeTraceError;
    use crate::{CoreId, Fingerprint, LineAddr, Trace, TraceMeta};
    use std::io::Cursor;

    fn key() -> Fingerprint {
        Fingerprint::from_raw(0x5151_e0e0_aaaa_0001)
    }

    fn sample_trace(len: usize) -> Trace {
        let meta = TraceMeta {
            workload: "pipe-unit".into(),
            cores: 2,
            seed: 7,
            footprint_lines: 512,
        };
        let mut t = Trace::new(meta);
        for i in 0..len as u64 {
            t.push(
                MemAccess::read(CoreId::new((i % 2) as u16), LineAddr::new(i * 13 % 999))
                    .with_gap((i % 5) as u32),
            );
        }
        t
    }

    fn configs() -> Vec<PipelineConfig> {
        vec![
            PipelineConfig::serial(),
            PipelineConfig::with_depth(2),
            PipelineConfig::with_depth(4).with_decode_threads(2),
            PipelineConfig::with_depth(8).with_decode_threads(3),
        ]
    }

    #[test]
    fn config_clamps_and_defaults() {
        assert!(PipelineConfig::default().is_serial());
        assert_eq!(PipelineConfig::with_depth(0).depth, 0);
        assert_eq!(PipelineConfig::with_depth(1).depth, MIN_PIPELINE_DEPTH);
        assert_eq!(PipelineConfig::with_depth(9).depth, 9);
        assert_eq!(
            PipelineConfig::serial()
                .with_decode_threads(0)
                .decode_threads,
            1
        );
    }

    #[test]
    fn decoded_input_round_trips_in_order_at_every_depth() {
        let t = sample_trace(1003);
        for config in configs() {
            let mut chunks = t.chunks(64);
            let pipeline = ChunkPipeline::new(PipelineInput::Decoded(&mut chunks), config);
            let (got, stats) = pipeline.run(|source| {
                assert_eq!(source.total_accesses(), 1003);
                assert_eq!(source.meta().workload, "pipe-unit");
                let mut seen = 0u64;
                let mut out = Vec::new();
                while let Some(chunk) = source.next_chunk().unwrap() {
                    assert_eq!(chunk.first_index, seen, "chunks arrive in trace order");
                    seen += chunk.accesses.len() as u64;
                    out.extend_from_slice(chunk.accesses);
                }
                out
            });
            assert_eq!(got, t.accesses(), "{config:?}");
            if config.is_serial() {
                assert_eq!(stats.chunks_prefetched, 0);
            } else {
                assert_eq!(stats.chunks_prefetched, 16, "{config:?}");
                assert!(stats.peak_bytes_in_flight > 0);
            }
        }
    }

    #[test]
    fn frame_input_round_trips_at_every_depth_and_thread_count() {
        let t = sample_trace(777);
        let sealed = encode_chunked(&t, key(), 50);
        for config in configs() {
            let mut reader = TraceReader::new(Cursor::new(&sealed), key()).unwrap();
            let pipeline = ChunkPipeline::new(PipelineInput::Frames(&mut reader), config);
            let (got, _) = pipeline.run(|source| collect_trace(source).unwrap());
            assert_eq!(got, t, "{config:?}");
        }
    }

    #[test]
    fn v3_frames_decompress_on_workers_and_round_trip_at_every_depth() {
        // Columnar frames go through the same pipeline: the decompression
        // runs inside RawChunk::decode_into on the decode workers, and the
        // result is bit-identical to the serial and v2 paths.
        let t = sample_trace(777);
        let sealed =
            crate::stream::encode_chunked_with(&t, key(), 50, crate::stream::TraceCodec::V3);
        for config in configs() {
            let mut reader = TraceReader::new(Cursor::new(&sealed), key()).unwrap();
            let pipeline = ChunkPipeline::new(PipelineInput::Frames(&mut reader), config);
            let (got, _) = pipeline.run(|source| collect_trace(source).unwrap());
            assert_eq!(got, t, "{config:?}");
        }
    }

    #[test]
    fn v3_mid_stream_corruption_surfaces_in_order_under_the_pipeline() {
        let t = sample_trace(300);
        let sealed =
            crate::stream::encode_chunked_with(&t, key(), 64, crate::stream::TraceCodec::V3);
        // Walk the variable-length frames to the third one and flip a byte
        // inside its compressed column block.
        let mut at = crate::blob::HEADER_LEN + super::super::payload_header_len("pipe-unit".len());
        for _ in 0..2 {
            let comp_len = u32::from_be_bytes(sealed[at + 4..at + 8].try_into().unwrap()) as usize;
            at += 16 + comp_len;
        }
        let comp_len = u32::from_be_bytes(sealed[at + 4..at + 8].try_into().unwrap()) as usize;
        let mut bad = sealed.clone();
        bad[at + 16 + comp_len / 2] ^= 0x01;
        for config in configs() {
            let mut reader = TraceReader::new(Cursor::new(&bad), key()).unwrap();
            let pipeline = ChunkPipeline::new(PipelineInput::Frames(&mut reader), config);
            let (outcome, _) = pipeline.run(|source| {
                let mut yielded = 0u64;
                loop {
                    match source.next_chunk() {
                        Ok(Some(chunk)) => yielded += chunk.accesses.len() as u64,
                        Ok(None) => panic!("corruption must surface"),
                        Err(err) => break (yielded, err),
                    }
                }
            });
            let (yielded, err) = outcome;
            assert_eq!(
                yielded, 128,
                "both intact chunks precede the error: {config:?}"
            );
            assert!(
                matches!(
                    err,
                    TraceStreamError::Trace(DecodeTraceError::ChunkChecksumMismatch { chunk: 2 })
                ),
                "{config:?}: {err:?}"
            );
        }
    }

    #[test]
    fn empty_trace_yields_immediate_end() {
        let t = Trace::new(TraceMeta {
            workload: "empty".into(),
            ..Default::default()
        });
        let mut chunks = t.chunks(16);
        let pipeline = ChunkPipeline::new(
            PipelineInput::Decoded(&mut chunks),
            PipelineConfig::with_depth(4),
        );
        let (result, stats) = pipeline.run(|source| source.next_chunk().map(|c| c.is_none()));
        assert!(result.unwrap());
        assert_eq!(stats.chunks_prefetched, 0);
    }

    #[test]
    fn mid_stream_corruption_surfaces_in_order_and_losslessly() {
        let t = sample_trace(300);
        let sealed = encode_chunked(&t, key(), 64);
        // Flip a record byte inside the third frame.
        let mut bad = sealed.clone();
        let offset = crate::blob::HEADER_LEN
            + super::super::payload_header_len("pipe-unit".len())
            + 2 * (12 + 64 * crate::trace::ACCESS_RECORD_BYTES)
            + 40;
        bad[offset] ^= 0x01;
        for config in configs() {
            let mut reader = TraceReader::new(Cursor::new(&bad), key()).unwrap();
            let pipeline = ChunkPipeline::new(PipelineInput::Frames(&mut reader), config);
            let (outcome, _) = pipeline.run(|source| {
                let mut yielded = 0u64;
                loop {
                    match source.next_chunk() {
                        Ok(Some(chunk)) => yielded += chunk.accesses.len() as u64,
                        Ok(None) => panic!("corruption must surface"),
                        Err(err) => {
                            // The error is sticky, exactly like a failed
                            // synchronous reader.
                            let again = source.next_chunk().unwrap_err();
                            assert_eq!(again, err);
                            break (yielded, err);
                        }
                    }
                }
            });
            let (yielded, err) = outcome;
            assert_eq!(
                yielded, 128,
                "both intact chunks precede the error: {config:?}"
            );
            assert!(
                matches!(
                    err,
                    TraceStreamError::Trace(DecodeTraceError::ChunkChecksumMismatch { chunk: 2 })
                ),
                "{config:?}: {err:?}"
            );
        }
    }

    #[test]
    fn consumer_early_drop_does_not_deadlock() {
        let t = sample_trace(10_000);
        for config in [
            PipelineConfig::with_depth(2),
            PipelineConfig::with_depth(8).with_decode_threads(3),
        ] {
            // Decoded input, tiny chunks: the reader wants to run far ahead.
            let mut chunks = t.chunks(16);
            let pipeline = ChunkPipeline::new(PipelineInput::Decoded(&mut chunks), config);
            let ((), stats) = pipeline.run(|source| {
                source.next_chunk().unwrap();
            });
            assert!(stats.chunks_prefetched >= 1);

            // Frame input through the decode workers.
            let sealed = encode_chunked(&t, key(), 32);
            let mut reader = TraceReader::new(Cursor::new(&sealed), key()).unwrap();
            let pipeline = ChunkPipeline::new(PipelineInput::Frames(&mut reader), config);
            let (first, _) =
                pipeline.run(|source| source.next_chunk().unwrap().map(|c| c.accesses.len()));
            assert_eq!(first, Some(32));
        }
        // If cancellation were broken, the scoped joins above would hang
        // rather than fail — reaching this line is the assertion.
    }

    #[test]
    fn consumer_panic_unwinds_cleanly_through_the_scope() {
        let t = sample_trace(5_000);
        let result = std::panic::catch_unwind(|| {
            let mut chunks = t.chunks(16);
            let pipeline = ChunkPipeline::new(
                PipelineInput::Decoded(&mut chunks),
                PipelineConfig::with_depth(4),
            );
            pipeline.run(|source| {
                source.next_chunk().unwrap();
                panic!("simulator blew up");
            })
        });
        assert!(result.is_err(), "the panic propagates to the caller");
    }

    /// A source whose chunk N panics mid-`next_chunk` — the reader stage
    /// must convert it into an in-band error after the good chunks.
    struct PanickingSource {
        meta: TraceMeta,
        served: u64,
        panic_at: u64,
        buf: Vec<MemAccess>,
    }

    impl TraceSource for PanickingSource {
        fn meta(&self) -> &TraceMeta {
            &self.meta
        }

        fn total_accesses(&self) -> u64 {
            (self.panic_at + 10) * 4
        }

        fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
            if self.served == self.panic_at {
                panic!("source exploded at chunk {}", self.served);
            }
            self.buf = (0..4)
                .map(|i| MemAccess::read(CoreId::new(0), LineAddr::new(self.served * 4 + i)))
                .collect();
            let first_index = self.served * 4;
            self.served += 1;
            Ok(Some(AccessChunk {
                accesses: &self.buf,
                first_index,
            }))
        }
    }

    #[test]
    fn panic_in_reader_stage_becomes_an_in_band_error() {
        let mut source = PanickingSource {
            meta: TraceMeta {
                workload: "boom".into(),
                ..Default::default()
            },
            served: 0,
            panic_at: 3,
            buf: Vec::new(),
        };
        let pipeline = ChunkPipeline::new(
            PipelineInput::Decoded(&mut source),
            PipelineConfig::with_depth(2),
        );
        let (outcome, _) = pipeline.run(|source| {
            let mut good = 0;
            loop {
                match source.next_chunk() {
                    Ok(Some(_)) => good += 1,
                    Ok(None) => panic!("must error"),
                    Err(err) => break (good, err),
                }
            }
        });
        assert_eq!(outcome.0, 3, "all chunks before the panic are delivered");
        assert!(outcome.1.to_string().contains("panic in pipeline reader"));
    }

    #[test]
    fn shared_budget_smaller_than_one_chunk_still_makes_progress() {
        let t = sample_trace(2_000);
        let budget = InflightBudget::new(1); // absurdly small
        let mut chunks = t.chunks(100);
        let pipeline = ChunkPipeline::new(
            PipelineInput::Decoded(&mut chunks),
            PipelineConfig::with_depth(8),
        )
        .with_budget(&budget);
        let (got, stats) = pipeline.run(|source| collect_trace(source).unwrap());
        assert_eq!(got, t);
        // The at-least-one rule serializes prefetch: the budget stalls show.
        assert!(stats.stalls_full > 0);
        assert_eq!(budget.in_use(), 0, "all bytes returned");
    }

    #[test]
    fn budget_is_fully_returned_after_early_drop() {
        let t = sample_trace(5_000);
        let budget = InflightBudget::new(1 << 20);
        {
            let mut chunks = t.chunks(64);
            let pipeline = ChunkPipeline::new(
                PipelineInput::Decoded(&mut chunks),
                PipelineConfig::with_depth(8),
            )
            .with_budget(&budget);
            let _ = pipeline.run(|source| {
                source.next_chunk().unwrap();
            });
        }
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn two_pipelines_share_one_budget_concurrently() {
        let t = sample_trace(3_000);
        // Budget fits roughly two chunks; both pipelines must interleave
        // under it and still replay correctly.
        let budget = InflightBudget::new(2 * 64 * std::mem::size_of::<MemAccess>() as u64);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut chunks = t.chunks(64);
                    let pipeline = ChunkPipeline::new(
                        PipelineInput::Decoded(&mut chunks),
                        PipelineConfig::with_depth(4),
                    )
                    .with_budget(&budget);
                    let (got, _) = pipeline.run(|source| collect_trace(source).unwrap());
                    assert_eq!(got, t);
                });
            }
        });
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn stats_absorb_folds_counters() {
        let mut a = PipelineStats {
            chunks_prefetched: 3,
            stalls_full: 1,
            stalls_empty: 2,
            peak_bytes_in_flight: 10,
        };
        let b = PipelineStats {
            chunks_prefetched: 4,
            stalls_full: u64::MAX,
            stalls_empty: 1,
            peak_bytes_in_flight: 7,
        };
        a.absorb(&b);
        assert_eq!(a.chunks_prefetched, 7);
        assert_eq!(a.stalls_full, u64::MAX, "saturates instead of wrapping");
        assert_eq!(a.stalls_empty, 3);
        assert_eq!(a.peak_bytes_in_flight, 10);
    }

    #[test]
    fn truncated_stream_error_position_is_preserved() {
        let t = sample_trace(200);
        let sealed = encode_chunked(&t, key(), 64);
        let cut = sealed.len() - 20; // inside the last frame
        for config in configs() {
            let mut reader = TraceReader::new(Cursor::new(&sealed[..cut]), key()).unwrap();
            let pipeline = ChunkPipeline::new(PipelineInput::Frames(&mut reader), config);
            let (outcome, _) = pipeline.run(|source| {
                let mut yielded = 0u64;
                loop {
                    match source.next_chunk() {
                        Ok(Some(chunk)) => yielded += chunk.accesses.len() as u64,
                        Ok(None) => panic!("truncation must surface"),
                        Err(err) => break (yielded, err),
                    }
                }
            });
            assert_eq!(
                outcome.0, 192,
                "three intact chunks, then the error: {config:?}"
            );
            assert!(
                matches!(outcome.1, TraceStreamError::Envelope(_)),
                "{config:?}: {:?}",
                outcome.1
            );
        }
    }
}
