//! Column codecs of the chunk-framed trace codec **v3**.
//!
//! A v3 chunk frame re-lays its records out columnarly and compresses each
//! column independently, inside the same per-frame length/checksum framing
//! as codec v2:
//!
//! ```text
//! ┌────────────────────── one v3 frame (compressed block) ───────────────────┐
//! │ kinds   : RLE tokens over the flag byte (kind tag | dependence bit)      │
//! │ cores   : RLE tokens over the core id (symbols are LEB128 varints)      │
//! │ lines   : per record, zig-zag delta vs the core's previous line, varint │
//! │ gaps    : per record, zig-zag delta vs the core's previous gap, varint  │
//! └──────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Design points, driven by what the generators actually emit:
//!
//! * **RLE with a literal escape.** Each token starts with a varint header
//!   `h`; `h >> 1` is the token length and the low bit selects *run* (one
//!   symbol, repeated) or *literal* (that many symbols verbatim). Core ids
//!   are issued round-robin, so plain run-length pairs would cost *more*
//!   than raw bytes; the literal escape keeps the worst case at ~1 byte per
//!   record while long runs (single-core traces, skewed kinds) still
//!   collapse to a few bytes.
//! * **Per-core delta references.** Lines and gaps are delta-coded against
//!   the previous record *of the same core*, not the previous record in the
//!   trace. Temporal streams are per-core sequences — a core sweeping a
//!   scan emits `+1` deltas even though the cores interleave round-robin in
//!   trace order. The reference state resets at every chunk boundary so any
//!   chunk decodes independently (that is what lets the pipeline decode
//!   frames on parallel workers).
//! * **Fail-closed decoding.** The decoder knows the record count from the
//!   frame header and must consume the compressed block *exactly*: token
//!   overruns, zero-length tokens, oversized core ids, varints that overflow
//!   64 bits and leftover bytes are all structural corruption
//!   ([`DecodeTraceError::BadChunkFraming`]); short blocks are truncation.
//!   The frame checksum over the compressed bytes is verified before any of
//!   this runs, so a flipped bit normally never reaches the decoder.
//!
//! Every helper is deterministic: the same accesses always produce the same
//! bytes, which the trace store's content-addressed cache relies on.

use crate::trace::{access_flags, parse_flags, DecodeTraceError};
use crate::{CoreId, LineAddr, MemAccess};
use std::collections::HashMap;

/// Upper bound on the encoded size of one record across all four columns
/// (worst-case flag token + core token + line varint + gap varint). The
/// reader uses it to bound the allocation a frame header can demand before
/// any payload byte is verified, the way `MAX_CHUNK_LEN` bounds v2.
pub(crate) const MAX_ENCODED_RECORD_BYTES: usize = 2 + 4 + 10 + 5;

/// Appends the LEB128 (7 bits per byte, little-endian groups) encoding of
/// `v`. At most 10 bytes.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from the front of `data`, advancing it. Rejects
/// encodings that overflow 64 bits (which also caps the length at 10
/// bytes); overlong-but-in-range encodings of small values are accepted,
/// the encoder just never produces them.
fn take_varint(data: &mut &[u8], chunk: u64) -> Result<u64, DecodeTraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some((&byte, rest)) = data.split_first() else {
            return Err(DecodeTraceError::Truncated {
                what: "column varint",
            });
        };
        *data = rest;
        let part = (byte & 0x7f) as u64;
        if shift > 63 || (shift == 63 && part > 1) {
            return Err(DecodeTraceError::BadChunkFraming { chunk });
        }
        value |= part << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag maps a signed delta onto an unsigned varint-friendly value
/// (small magnitudes of either sign become small numbers).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Per-core delta-reference state, reset at every chunk boundary.
#[derive(Default)]
struct CoreState {
    line: u64,
    gap: u32,
}

/// Emits RLE tokens covering `symbols`: maximal runs of length ≥ 2 become
/// run tokens, maximal stretches without adjacent repeats become literal
/// tokens.
fn encode_rle(out: &mut Vec<u8>, symbols: &[u64], put_symbol: fn(&mut Vec<u8>, u64)) {
    let mut i = 0;
    while i < symbols.len() {
        let run = run_len(symbols, i);
        if run >= 2 {
            put_varint(out, ((run as u64) << 1) | 1);
            put_symbol(out, symbols[i]);
            i += run;
        } else {
            let start = i;
            i += 1;
            while i < symbols.len() && run_len(symbols, i) < 2 {
                i += 1;
            }
            put_varint(out, ((i - start) as u64) << 1);
            for &s in &symbols[start..i] {
                put_symbol(out, s);
            }
        }
    }
}

/// Length of the run of equal symbols starting at `i`.
fn run_len(symbols: &[u64], i: usize) -> usize {
    let mut j = i + 1;
    while j < symbols.len() && symbols[j] == symbols[i] {
        j += 1;
    }
    j - i
}

/// Decodes RLE tokens until exactly `count` symbols are produced.
fn decode_rle(
    data: &mut &[u8],
    count: usize,
    chunk: u64,
    take_symbol: &mut dyn FnMut(&mut &[u8]) -> Result<u64, DecodeTraceError>,
    out: &mut Vec<u64>,
) -> Result<(), DecodeTraceError> {
    out.clear();
    out.reserve(count);
    while out.len() < count {
        let header = take_varint(data, chunk)?;
        let len = header >> 1;
        if len == 0 || len > (count - out.len()) as u64 {
            return Err(DecodeTraceError::BadChunkFraming { chunk });
        }
        if header & 1 == 1 {
            let symbol = take_symbol(data)?;
            for _ in 0..len {
                out.push(symbol);
            }
        } else {
            for _ in 0..len {
                out.push(take_symbol(data)?);
            }
        }
    }
    Ok(())
}

/// Encodes `accesses` as one v3 compressed column block, appended to `out`.
pub(crate) fn encode_columns(accesses: &[MemAccess], out: &mut Vec<u8>) {
    let flags: Vec<u64> = accesses.iter().map(|a| access_flags(a) as u64).collect();
    encode_rle(out, &flags, |out, s| out.push(s as u8));
    let cores: Vec<u64> = accesses.iter().map(|a| a.core.index() as u64).collect();
    encode_rle(out, &cores, put_varint);
    let mut per_core: HashMap<u16, CoreState> = HashMap::new();
    for a in accesses {
        let state = per_core.entry(a.core.index() as u16).or_default();
        put_varint(out, zigzag(a.line.raw().wrapping_sub(state.line) as i64));
        state.line = a.line.raw();
    }
    for a in accesses {
        let state = per_core
            .get_mut(&(a.core.index() as u16))
            .expect("core seen in line pass");
        put_varint(out, zigzag(a.compute_gap as i64 - state.gap as i64));
        state.gap = a.compute_gap;
    }
}

/// Decodes one v3 compressed column block of exactly `count` records into
/// `out` (cleared first). The whole of `bytes` must be consumed.
///
/// # Errors
///
/// [`DecodeTraceError::Truncated`] when the block ends early,
/// [`DecodeTraceError::BadChunkFraming`] for structural corruption (token
/// overruns, leftover bytes, out-of-range core ids or gaps) and
/// [`DecodeTraceError::InvalidAccessKind`] for an unknown kind tag.
pub(crate) fn decode_columns(
    mut bytes: &[u8],
    count: usize,
    chunk: u64,
    out: &mut Vec<MemAccess>,
) -> Result<(), DecodeTraceError> {
    out.clear();
    out.reserve(count);
    let mut flags = Vec::new();
    decode_rle(
        &mut bytes,
        count,
        chunk,
        &mut |data: &mut &[u8]| match data.split_first() {
            Some((&byte, rest)) => {
                *data = rest;
                Ok(byte as u64)
            }
            None => Err(DecodeTraceError::Truncated {
                what: "kind column",
            }),
        },
        &mut flags,
    )?;
    let mut cores = Vec::new();
    decode_rle(
        &mut bytes,
        count,
        chunk,
        &mut |data: &mut &[u8]| {
            let core = take_varint(data, chunk)?;
            if core > u16::MAX as u64 {
                return Err(DecodeTraceError::BadChunkFraming { chunk });
            }
            Ok(core)
        },
        &mut cores,
    )?;
    let mut per_core: HashMap<u16, CoreState> = HashMap::new();
    for i in 0..count {
        let core = cores[i] as u16;
        let state = per_core.entry(core).or_default();
        let delta = unzigzag(take_varint(&mut bytes, chunk)?);
        state.line = state.line.wrapping_add(delta as u64);
        let (kind, dependent) = parse_flags(flags[i] as u8)?;
        out.push(MemAccess {
            core: CoreId::new(core),
            line: LineAddr::new(state.line),
            kind,
            compute_gap: 0,
            dependent,
        });
    }
    for (i, access) in out.iter_mut().enumerate() {
        let state = per_core
            .get_mut(&(cores[i] as u16))
            .expect("core seen in line pass");
        let delta = unzigzag(take_varint(&mut bytes, chunk)?);
        let gap = (state.gap as i64)
            .checked_add(delta)
            .filter(|gap| (0..=u32::MAX as i64).contains(gap))
            .ok_or(DecodeTraceError::BadChunkFraming { chunk })?;
        state.gap = gap as u32;
        access.compute_gap = state.gap;
    }
    if !bytes.is_empty() {
        return Err(DecodeTraceError::BadChunkFraming { chunk });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;
    use proptest::prelude::*;

    fn roundtrip(accesses: &[MemAccess]) -> Vec<MemAccess> {
        let mut bytes = Vec::new();
        encode_columns(accesses, &mut bytes);
        let mut back = Vec::new();
        decode_columns(&bytes, accesses.len(), 7, &mut back).expect("well-formed block");
        back
    }

    fn access(core: u16, line: u64, gap: u32) -> MemAccess {
        MemAccess::read(CoreId::new(core), LineAddr::new(line)).with_gap(gap)
    }

    #[test]
    fn empty_and_single_record_blocks_round_trip() {
        assert_eq!(roundtrip(&[]), Vec::<MemAccess>::new());
        let mut bytes = Vec::new();
        encode_columns(&[], &mut bytes);
        assert!(bytes.is_empty(), "an empty block has no bytes at all");

        let one = [access(3, u64::MAX, u32::MAX)
            .with_kind(AccessKind::Write)
            .with_dependence(true)];
        assert_eq!(roundtrip(&one), one);
    }

    #[test]
    fn adversarial_shapes_round_trip() {
        // u64::MAX addresses next to zero, non-monotonic sequences.
        let jumps = [
            access(0, u64::MAX, 0),
            access(0, 0, 9),
            access(0, u64::MAX - 1, 2),
            access(0, 5, 0),
        ];
        assert_eq!(roundtrip(&jumps), jumps);

        // All-same core ids (one long run) and all-distinct core ids (one
        // long literal stretch).
        let same: Vec<MemAccess> = (0..200).map(|i| access(9, i * 3, 1)).collect();
        assert_eq!(roundtrip(&same), same);
        let distinct: Vec<MemAccess> = (0..200).map(|i| access(i as u16, i, 0)).collect();
        assert_eq!(roundtrip(&distinct), distinct);
    }

    #[test]
    fn per_core_deltas_make_interleaved_scans_cheap() {
        // Two cores each sweeping their own sequential scan, interleaved
        // round-robin: per-core deltas are +1, so the line column costs one
        // byte per record even though trace-order deltas jump wildly.
        let scan: Vec<MemAccess> = (0..1000u64)
            .map(|i| access((i % 2) as u16, (1 << 40) * (i % 2) + i / 2, 3))
            .collect();
        let mut bytes = Vec::new();
        encode_columns(&scan, &mut bytes);
        assert_eq!(roundtrip(&scan), scan);
        assert!(
            bytes.len() < scan.len() * 5,
            "interleaved scans should compress to a few bytes per record, got {} for {}",
            bytes.len(),
            scan.len()
        );
    }

    #[test]
    fn varint_limits_round_trip_and_overflow_is_rejected() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut bytes = Vec::new();
            put_varint(&mut bytes, v);
            assert!(bytes.len() <= 10);
            let mut slice = bytes.as_slice();
            assert_eq!(take_varint(&mut slice, 0).unwrap(), v);
            assert!(slice.is_empty());
        }
        // 11 continuation bytes can never be a valid u64.
        let mut overflow = [0x80u8; 11].as_slice();
        assert!(matches!(
            take_varint(&mut overflow, 0),
            Err(DecodeTraceError::BadChunkFraming { chunk: 0 })
        ));
        // A 10th byte carrying more than the final bit overflows too.
        let mut high = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02].as_slice();
        assert!(matches!(
            take_varint(&mut high, 0),
            Err(DecodeTraceError::BadChunkFraming { chunk: 0 })
        ));
        // Truncated mid-varint.
        let mut short = [0x80u8].as_slice();
        assert!(matches!(
            take_varint(&mut short, 0),
            Err(DecodeTraceError::Truncated { .. })
        ));
    }

    #[test]
    fn zigzag_is_an_involution_at_the_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -4096, 4095] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn malformed_blocks_fail_closed() {
        let accesses: Vec<MemAccess> = (0..50).map(|i| access(i % 4, i as u64 * 17, 2)).collect();
        let mut bytes = Vec::new();
        encode_columns(&accesses, &mut bytes);
        let mut out = Vec::new();

        // Truncation anywhere surfaces as Truncated or BadChunkFraming,
        // never a panic or a silently short decode.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let result = decode_columns(&bytes[..cut], accesses.len(), 3, &mut out);
            assert!(result.is_err(), "cut at {cut} must fail");
        }
        // Trailing bytes are structural corruption.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            decode_columns(&long, accesses.len(), 3, &mut out),
            Err(DecodeTraceError::BadChunkFraming { chunk: 3 })
        ));
        // A zero-length token is invalid.
        assert!(matches!(
            decode_columns(&[0x00], 1, 3, &mut out),
            Err(DecodeTraceError::BadChunkFraming { chunk: 3 })
        ));
        // A run longer than the declared record count is invalid.
        let mut overrun = Vec::new();
        put_varint(&mut overrun, (2 << 1) | 1);
        overrun.push(0);
        assert!(matches!(
            decode_columns(&overrun, 1, 3, &mut out),
            Err(DecodeTraceError::BadChunkFraming { chunk: 3 })
        ));
        // An unknown kind tag in the flag column is an InvalidAccessKind.
        let mut bad_kind = Vec::new();
        put_varint(&mut bad_kind, (1 << 1) | 1); // one-symbol run
        bad_kind.push(0x7f); // kind tag 127
        put_varint(&mut bad_kind, (1 << 1) | 1); // cores: run of one
        put_varint(&mut bad_kind, 0); // core 0
        put_varint(&mut bad_kind, 0); // line delta 0
        put_varint(&mut bad_kind, 0); // gap delta 0
        assert!(matches!(
            decode_columns(&bad_kind, 1, 3, &mut out),
            Err(DecodeTraceError::InvalidAccessKind { tag: 127 })
        ));
        // A core id beyond u16 is structural corruption.
        let mut bad_core = Vec::new();
        put_varint(&mut bad_core, (1 << 1) | 1);
        bad_core.push(0x00);
        put_varint(&mut bad_core, (1 << 1) | 1);
        put_varint(&mut bad_core, u16::MAX as u64 + 1);
        assert!(matches!(
            decode_columns(&bad_core, 1, 3, &mut out),
            Err(DecodeTraceError::BadChunkFraming { chunk: 3 })
        ));
        // A gap delta that drives the gap outside u32 is rejected.
        let mut bad_gap = Vec::new();
        put_varint(&mut bad_gap, (1 << 1) | 1);
        bad_gap.push(0x00);
        put_varint(&mut bad_gap, (1 << 1) | 1);
        put_varint(&mut bad_gap, 0);
        put_varint(&mut bad_gap, 0); // line delta
        put_varint(&mut bad_gap, zigzag(-1)); // gap 0 - 1 < 0
        assert!(matches!(
            decode_columns(&bad_gap, 1, 3, &mut out),
            Err(DecodeTraceError::BadChunkFraming { chunk: 3 })
        ));
    }

    proptest! {
        /// Any access sequence round-trips exactly, and the encoded block
        /// respects the per-record size bound the reader allocates by.
        #[test]
        fn prop_columns_round_trip(
            specs in proptest::collection::vec(
                (0u16..6, any::<u64>(), 0u32..100_000, 0u8..3, any::<bool>()),
                0..300,
            ),
        ) {
            let accesses: Vec<MemAccess> = specs
                .iter()
                .map(|&(core, line, gap, kind, dependent)| {
                    let kind = match kind {
                        0 => AccessKind::Read,
                        1 => AccessKind::Write,
                        _ => AccessKind::InstrFetch,
                    };
                    access(core, line, gap).with_kind(kind).with_dependence(dependent)
                })
                .collect();
            let mut bytes = Vec::new();
            encode_columns(&accesses, &mut bytes);
            prop_assert!(bytes.len() <= accesses.len() * MAX_ENCODED_RECORD_BYTES);
            let mut back = Vec::new();
            decode_columns(&bytes, accesses.len(), 11, &mut back).unwrap();
            prop_assert_eq!(back, accesses);
        }

        /// Varints round-trip any u64 and zig-zag round-trips any i64.
        #[test]
        fn prop_varint_zigzag_round_trip(v in any::<u64>(), d in any::<i64>()) {
            let mut bytes = Vec::new();
            put_varint(&mut bytes, v);
            let mut slice = bytes.as_slice();
            prop_assert_eq!(take_varint(&mut slice, 0).unwrap(), v);
            prop_assert!(slice.is_empty());
            prop_assert_eq!(unzigzag(zigzag(d)), d);
        }
    }
}
