//! Common foundational types shared by every crate in the STMS reproduction.
//!
//! This crate intentionally contains no simulator logic: it only defines the
//! vocabulary used throughout the workspace — physical addresses and
//! cache-line addresses ([`PhysAddr`], [`LineAddr`]), identifiers
//! ([`CoreId`]), simulated time ([`Cycle`]), memory access records
//! ([`MemAccess`], [`AccessKind`]) and trace containers ([`Trace`],
//! [`TraceMeta`]).
//!
//! # Example
//!
//! ```
//! use stms_types::{LineAddr, PhysAddr, CACHE_LINE_BYTES};
//!
//! let byte_addr = PhysAddr::new(0x1_0040);
//! let line = byte_addr.line();
//! assert_eq!(line.to_phys().raw(), 0x1_0040 / CACHE_LINE_BYTES as u64 * CACHE_LINE_BYTES as u64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod addr;
pub mod blob;
pub mod fingerprint;
pub mod ids;
pub mod manifest;
pub mod stream;
pub mod time;
pub mod trace;
pub mod wire;

pub use access::{AccessKind, MemAccess};
pub use addr::{LineAddr, PhysAddr, CACHE_LINE_BYTES};
pub use fingerprint::{Fingerprint, Fingerprintable, Fingerprinter};
pub use ids::CoreId;
pub use manifest::{
    ManifestEntry, ManifestError, ManifestScan, ShardBalance, ShardJobTiming, ShardManifest,
    MANIFEST_CODEC_V2, MANIFEST_CODEC_VERSION,
};
pub use stream::pipeline::{
    ChunkPipeline, InflightBudget, PipeStage, PipelineConfig, PipelineInput, PipelineStats,
    StageObserver, MIN_PIPELINE_DEPTH,
};
pub use stream::{
    AccessChunk, ChunkedTraceWriter, RawChunk, RawFrameSource, TraceChunks, TraceCodec,
    TraceReader, TraceSource, TraceStreamError, DEFAULT_CHUNK_LEN, TRACE_CHUNKED_CODEC_VERSION,
    TRACE_COLUMNAR_CODEC_VERSION,
};
pub use time::Cycle;
pub use trace::{SharedTrace, Trace, TraceMeta, ACCESS_RECORD_BYTES, TRACE_CODEC_VERSION};
