//! Experiment driver for the STMS reproduction.
//!
//! This crate glues the workspace together: it generates the synthetic
//! workloads (`stms-workloads`), runs them through the CMP simulator
//! (`stms-mem`) with each prefetcher under study (`stms-prefetch`,
//! `stms-core`), and renders the paper's tables and figures
//! (`stms-stats`).
//!
//! * [`ExperimentConfig`] — the scaled system model and trace lengths;
//! * [`runner`] — running (workload × prefetcher) combinations, in parallel;
//! * [`experiments`] — one function per table/figure of the paper (§5);
//! * the `stms-experiments` binary — command-line front end.
//!
//! # Example
//!
//! ```no_run
//! use stms_sim::{experiments, ExperimentConfig};
//!
//! // Regenerate Figure 4 (idealized prefetching potential) at full scale.
//! let cfg = ExperimentConfig::scaled();
//! let fig4 = experiments::fig4_potential(&cfg);
//! println!("{}", fig4.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod experiments;
pub mod runner;
pub mod system;

pub use ablation::{index_organization_ablation, IndexAblation, IndexAblationRow};
pub use experiments::FigureResult;
pub use runner::{
    build_trace, collect_miss_sequences, run_matched, run_suite, run_trace, run_workload,
    PrefetcherKind,
};
pub use system::{ExperimentConfig, CAPACITY_SCALE};
