//! Experiment driver for the STMS reproduction.
//!
//! This crate glues the workspace together: it generates the synthetic
//! workloads (`stms-workloads`), runs them through the CMP simulator
//! (`stms-mem`) with each prefetcher under study (`stms-prefetch`,
//! `stms-core`), and renders the paper's tables and figures
//! (`stms-stats`).
//!
//! * [`ExperimentConfig`] — the scaled system model and trace lengths;
//! * [`campaign`] — the orchestration layer: a [`campaign::TraceStore`]
//!   generating each workload trace exactly once, a bounded
//!   [`campaign::JobPool`] with panic-safe per-job errors, and declarative
//!   [`campaign::FigurePlan`]s whose cells interleave on one pool;
//! * [`runner`] — (workload × prefetcher) convenience runners on top of the
//!   campaign layer;
//! * [`experiments`] — one plan per table/figure of the paper (§5);
//! * [`campaign::shard`] — distributed campaigns: deterministic
//!   fingerprint-based job partitioning, sealed shard manifests, and a
//!   merge stage that renders byte-identical output from shard slices;
//! * the `stms-experiments` binary — command-line front end
//!   (`--figures`, `--threads`, `--format text|json`, `--shard I/N`,
//!   `--merge-shards DIR`).
//!
//! # Example
//!
//! ```no_run
//! use stms_sim::{experiments, ExperimentConfig};
//!
//! // Regenerate Figure 4 (idealized prefetching potential) at full scale.
//! let cfg = ExperimentConfig::scaled();
//! let fig4 = experiments::fig4_potential(&cfg);
//! println!("{}", fig4.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod campaign;
pub mod experiments;
pub mod runner;
pub mod system;

pub use ablation::{
    index_organization_ablation, index_organization_ablation_from, IndexAblation, IndexAblationRow,
};
pub use campaign::{
    job_fingerprint, Campaign, CampaignCacheStats, CampaignCaches, CampaignError, CancelToken,
    DiskTierConfig, FigurePlan, FlightStats, JobError, JobOutput, JobPool, JobSpec, JobTask,
    MergeError, MergedShards, ResultStore, ResultStoreStats, ShardRun, ShardSpec, TraceStore,
    TraceStoreStats,
};
pub use experiments::FigureResult;
pub use runner::{
    build_trace, collect_miss_sequences, run_matched, run_source, run_suite, run_trace,
    run_workload, PrefetcherKind,
};
pub use system::{ExperimentConfig, CAPACITY_SCALE};
