//! Experiment-level configuration: the scaled system model and simulation
//! options shared by every reproduced figure.
//!
//! The paper's workloads have multi-gigabyte footprints and are simulated for
//! billions of instructions; this reproduction scales both the workloads
//! (`stms-workloads` presets) and the cache/predictor capacities down by
//! roughly an order of magnitude so that every figure regenerates in seconds
//! on a laptop. The *ratios* that drive the paper's conclusions (footprint vs
//! L2 capacity, history size vs reuse distance, index size vs distinct miss
//! addresses, meta-data traffic vs demand traffic) are preserved.

use serde::{Deserialize, Serialize};
use stms_mem::{SimOptions, SystemConfig};

/// Scale factor applied to capacity axes when reporting "paper-equivalent"
/// sizes: the synthetic footprints are roughly 16x smaller than the paper's
/// workloads, so a 2 MB history buffer here corresponds to a 32 MB buffer in
/// the paper.
pub const CAPACITY_SCALE: u64 = 16;

/// Configuration of one experiment campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The simulated system (caches, DRAM, cores).
    pub system: SystemConfig,
    /// Engine options (prefetch buffer size, lookahead, warm-up).
    pub sim: SimOptions,
    /// Trace length (accesses across all cores) for each workload.
    pub accesses: usize,
}

// Stable fingerprint so a campaign configuration can key persistent cache
// entries: two campaigns share memoized results exactly when system model,
// engine options and trace length all agree.
impl stms_types::Fingerprintable for ExperimentConfig {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let ExperimentConfig {
            system,
            sim,
            accesses,
        } = self;
        fp.write_str("ExperimentConfig/v1");
        system.fingerprint_into(fp);
        sim.fingerprint_into(fp);
        fp.write_usize(*accesses);
    }
}

impl ExperimentConfig {
    /// The system model used by the experiments: the paper's 4-core CMP with
    /// the cache hierarchy scaled down to match the synthetic workloads'
    /// footprints (16 KB L1s, 256 KB shared L2).
    pub fn scaled_system() -> SystemConfig {
        let mut sys = SystemConfig::hpca09_baseline();
        sys.l1.capacity_bytes = 16 * 1024;
        sys.l2.capacity_bytes = 256 * 1024;
        sys
    }

    /// The default campaign: scaled system, 600 K accesses per workload, 30%
    /// warm-up (long enough to cover the first iteration of the scientific
    /// workloads, mirroring the paper's warmed checkpoints).
    pub fn scaled() -> Self {
        ExperimentConfig {
            system: Self::scaled_system(),
            sim: SimOptions {
                warmup_fraction: 0.3,
                ..SimOptions::default()
            },
            accesses: 600_000,
        }
    }

    /// A fast campaign for tests and micro-benchmarks (shorter traces, same
    /// system).
    pub fn quick() -> Self {
        ExperimentConfig {
            accesses: 60_000,
            ..Self::scaled()
        }
    }

    /// Returns a copy with a different trace length.
    pub fn with_accesses(mut self, accesses: usize) -> Self {
        self.accesses = accesses;
        self
    }

    /// Converts a scaled meta-data capacity in bytes to the
    /// "paper-equivalent" megabytes reported on the figures' axes.
    pub fn paper_equivalent_mb(&self, scaled_bytes: u64) -> f64 {
        (scaled_bytes * CAPACITY_SCALE) as f64 / (1024.0 * 1024.0)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_system_shrinks_caches_only() {
        let scaled = ExperimentConfig::scaled_system();
        let paper = SystemConfig::hpca09_baseline();
        assert!(scaled.l2.capacity_bytes < paper.l2.capacity_bytes);
        assert!(scaled.l1.capacity_bytes < paper.l1.capacity_bytes);
        assert_eq!(scaled.cores, paper.cores);
        assert_eq!(scaled.dram, paper.dram);
        // Geometry still valid (power-of-two sets).
        assert!(scaled.l1.sets().is_power_of_two());
        assert!(scaled.l2.sets().is_power_of_two());
    }

    #[test]
    fn quick_is_shorter_than_scaled() {
        assert!(ExperimentConfig::quick().accesses < ExperimentConfig::scaled().accesses);
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::scaled());
    }

    #[test]
    fn paper_equivalent_scaling() {
        let cfg = ExperimentConfig::scaled();
        let mb = cfg.paper_equivalent_mb(2 * 1024 * 1024);
        assert!((mb - 32.0).abs() < 1e-9);
    }

    #[test]
    fn with_accesses_overrides() {
        assert_eq!(ExperimentConfig::scaled().with_accesses(123).accesses, 123);
    }
}
