//! Running (workload × prefetcher) configurations through the simulator.

use crate::system::ExperimentConfig;
use stms_core::{Stms, StmsConfig};
use stms_mem::{CmpSimulator, NullPrefetcher, Prefetcher, SimResult};
use stms_prefetch::{
    FixedDepthConfig, FixedDepthPrefetcher, IdealTms, IdealTmsConfig, MarkovConfig,
    MarkovPrefetcher, MissTraceCollector,
};
use stms_types::stream::{TraceSource, TraceStreamError};
use stms_types::{LineAddr, Trace};
use stms_workloads::{generate, WorkloadSpec};

/// The prefetcher configurations the experiments compare.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefetcherKind {
    /// The base system (stride prefetcher only).
    Baseline,
    /// Idealized temporal memory streaming with on-chip meta-data (§5.2).
    IdealTms {
        /// Bound on index entries (`None` = unbounded).
        index_entries: Option<usize>,
        /// History entries retained per core.
        history_entries: usize,
    },
    /// The practical STMS design with off-chip meta-data.
    Stms(StmsConfig),
    /// A single-table fixed-depth correlation prefetcher (EBCP/ULMT-like).
    FixedDepth(FixedDepthConfig),
    /// The pair-wise correlating Markov prefetcher.
    Markov(MarkovConfig),
}

// Stable fingerprint so a prefetcher design point can key on-disk memoized
// results. Each variant writes a tag byte before its payload so design
// points of different families can never alias.
impl stms_types::Fingerprintable for PrefetcherKind {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        fp.write_str("PrefetcherKind/v1");
        match self {
            PrefetcherKind::Baseline => fp.write_u8(0),
            PrefetcherKind::IdealTms {
                index_entries,
                history_entries,
            } => {
                fp.write_u8(1);
                fp.write_option_u64(index_entries.map(|n| n as u64));
                fp.write_usize(*history_entries);
            }
            PrefetcherKind::Stms(cfg) => {
                fp.write_u8(2);
                cfg.fingerprint_into(fp);
            }
            PrefetcherKind::FixedDepth(cfg) => {
                fp.write_u8(3);
                cfg.fingerprint_into(fp);
            }
            PrefetcherKind::Markov(cfg) => {
                fp.write_u8(4);
                cfg.fingerprint_into(fp);
            }
        }
    }
}

impl PrefetcherKind {
    /// An unbounded idealized TMS.
    pub fn ideal() -> Self {
        PrefetcherKind::IdealTms {
            index_entries: None,
            history_entries: 1 << 22,
        }
    }

    /// The default STMS design point at the given sampling probability.
    pub fn stms_with_sampling(probability: f64) -> Self {
        PrefetcherKind::Stms(StmsConfig::scaled_default().with_sampling(probability))
    }

    /// Short label used in result tables.
    pub fn label(&self) -> String {
        match self {
            PrefetcherKind::Baseline => "baseline".to_string(),
            PrefetcherKind::IdealTms {
                index_entries: None,
                ..
            } => "ideal-tms".to_string(),
            PrefetcherKind::IdealTms {
                index_entries: Some(n),
                ..
            } => {
                format!("ideal-tms({n} entries)")
            }
            PrefetcherKind::Stms(cfg) => {
                format!("stms(p={:.3})", cfg.sampling_probability)
            }
            PrefetcherKind::FixedDepth(cfg) => format!("fixed-depth({})", cfg.depth),
            PrefetcherKind::Markov(cfg) => {
                format!("markov({} entries, {} succ)", cfg.entries, cfg.successors)
            }
        }
    }

    /// Builds a fresh prefetcher instance for a system with `cores` cores.
    pub fn build(&self, cores: usize) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::Baseline => Box::new(NullPrefetcher::new()),
            PrefetcherKind::IdealTms {
                index_entries,
                history_entries,
            } => Box::new(IdealTms::new(IdealTmsConfig {
                cores,
                history_entries_per_core: *history_entries,
                index_entries: *index_entries,
                chunk_size: 32,
            })),
            PrefetcherKind::Stms(cfg) => Box::new(Stms::new(StmsConfig { cores, ..*cfg })),
            PrefetcherKind::FixedDepth(cfg) => {
                Box::new(FixedDepthPrefetcher::new(FixedDepthConfig {
                    cores,
                    ..*cfg
                }))
            }
            PrefetcherKind::Markov(cfg) => {
                Box::new(MarkovPrefetcher::new(MarkovConfig { cores, ..*cfg }))
            }
        }
    }
}

/// Generates the trace for `spec` at the campaign's trace length.
pub fn build_trace(cfg: &ExperimentConfig, spec: &WorkloadSpec) -> Trace {
    generate(&spec.clone().with_accesses(cfg.accesses))
}

/// Runs one workload with one prefetcher configuration.
pub fn run_workload(
    cfg: &ExperimentConfig,
    spec: &WorkloadSpec,
    kind: &PrefetcherKind,
) -> SimResult {
    let trace = build_trace(cfg, spec);
    run_trace(cfg, &trace, kind)
}

/// Runs an already-generated trace with one prefetcher configuration.
pub fn run_trace(cfg: &ExperimentConfig, trace: &Trace, kind: &PrefetcherKind) -> SimResult {
    let mut prefetcher = kind.build(cfg.system.cores);
    CmpSimulator::new(&cfg.system, cfg.sim).run(trace, prefetcher.as_mut())
}

/// Runs a chunked trace stream with one prefetcher configuration — the
/// out-of-core counterpart of [`run_trace`], producing bit-identical
/// results for the same access sequence.
///
/// # Errors
///
/// Propagates the source's [`TraceStreamError`] (a corrupt or truncated
/// disk stream); callers fall back to regeneration.
pub fn run_source(
    cfg: &ExperimentConfig,
    source: &mut dyn TraceSource,
    kind: &PrefetcherKind,
) -> Result<SimResult, TraceStreamError> {
    let mut prefetcher = kind.build(cfg.system.cores);
    CmpSimulator::new(&cfg.system, cfg.sim).run_stream(source, prefetcher.as_mut())
}

/// Runs every workload of a suite with the same prefetcher configuration on
/// a bounded worker pool (one transient [`Campaign`](crate::campaign::Campaign)
/// sized to the machine). Results are in workload order.
///
/// This is the convenience form for one-off suites; campaign-scale callers
/// should hold a [`Campaign`](crate::campaign::Campaign) so traces and
/// workers are shared across calls.
///
/// # Errors
///
/// Returns a [`JobError`](crate::campaign::JobError) naming the first
/// workload whose simulation panicked, instead of aborting the process.
pub fn run_suite(
    cfg: &ExperimentConfig,
    specs: &[WorkloadSpec],
    kind: &PrefetcherKind,
) -> Result<Vec<SimResult>, crate::campaign::JobError> {
    crate::campaign::Campaign::new(cfg.clone()).run_suite(specs, kind)
}

/// Runs several prefetcher configurations on the *same* generated trace of
/// one workload (matched comparison) on a bounded worker pool. Results are
/// in `kinds` order.
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_matched(
    cfg: &ExperimentConfig,
    spec: &WorkloadSpec,
    kinds: &[PrefetcherKind],
) -> Result<Vec<SimResult>, crate::campaign::JobError> {
    crate::campaign::Campaign::new(cfg.clone()).run_matched(spec, kinds)
}

/// Captures the baseline off-chip read-miss sequence of each core for a
/// workload (used by the offline stream-length analysis of Figure 6, left).
pub fn collect_miss_sequences(cfg: &ExperimentConfig, spec: &WorkloadSpec) -> Vec<Vec<LineAddr>> {
    let trace = build_trace(cfg, spec);
    let mut collector = MissTraceCollector::new(cfg.system.cores);
    let _ = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut collector);
    collector.all_cores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick().with_accesses(20_000)
    }

    #[test]
    fn labels_are_distinct_and_descriptive() {
        let kinds = [
            PrefetcherKind::Baseline,
            PrefetcherKind::ideal(),
            PrefetcherKind::stms_with_sampling(0.125),
            PrefetcherKind::FixedDepth(FixedDepthConfig::ebcp_like(4)),
            PrefetcherKind::Markov(MarkovConfig::default()),
        ];
        let labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
        assert_eq!(
            PrefetcherKind::IdealTms {
                index_entries: Some(100),
                history_entries: 10
            }
            .label(),
            "ideal-tms(100 entries)"
        );
    }

    #[test]
    fn markov_labels_carry_distinguishing_parameters() {
        // A sweep over Markov table sizes must not alias its rows.
        let small = PrefetcherKind::Markov(MarkovConfig {
            entries: 1 << 10,
            ..Default::default()
        });
        let large = PrefetcherKind::Markov(MarkovConfig {
            entries: 1 << 16,
            ..Default::default()
        });
        assert_ne!(small.label(), large.label());
        assert_eq!(small.label(), "markov(1024 entries, 2 succ)");
        let deeper = PrefetcherKind::Markov(MarkovConfig {
            successors: 4,
            ..Default::default()
        });
        assert!(deeper.label().contains("4 succ"));
    }

    #[test]
    fn baseline_run_produces_misses() {
        let cfg = quick();
        let spec = presets::web_apache();
        let res = run_workload(&cfg, &spec, &PrefetcherKind::Baseline);
        assert!(res.uncovered_misses > 100);
        assert_eq!(res.covered_full + res.covered_partial, 0);
        assert_eq!(res.workload, "Web Apache");
    }

    #[test]
    fn ideal_tms_covers_repeating_workload() {
        let cfg = ExperimentConfig::quick().with_accesses(40_000);
        // A small, highly-repetitive workload whose footprint still exceeds
        // the scaled L2, so that recurrences happen (and miss) even in a
        // short test trace; the calibrated presets need the full-length
        // traces of `ExperimentConfig::scaled()` to recur.
        let spec = WorkloadSpec {
            name: "repetitive-test".into(),
            max_pool_streams: 400,
            p_repeat: 0.85,
            p_noise: 0.02,
            hot_fraction: 0.1,
            hot_lines: 400,
            mean_gap: 8,
            ..presets::web_apache()
        };
        let res = run_workload(&cfg, &spec, &PrefetcherKind::ideal());
        assert!(
            res.coverage() > 0.25,
            "idealized TMS should cover a repeating workload, got {}",
            res.coverage()
        );
    }

    #[test]
    fn run_matched_returns_one_result_per_kind() {
        let cfg = quick();
        let spec = presets::sci_ocean();
        let kinds = [PrefetcherKind::Baseline, PrefetcherKind::ideal()];
        let results = run_matched(&cfg, &spec, &kinds).expect("no simulation panics");
        assert_eq!(results.len(), 2);
        assert!(results[1].coverage() >= results[0].coverage());
        // Matched runs replay the identical trace: the base miss opportunity
        // is (approximately) the same.
        let base = results[0].base_read_misses() as f64;
        let ideal = results[1].base_read_misses() as f64;
        assert!(
            (base - ideal).abs() / base < 0.2,
            "base {base} vs ideal {ideal}"
        );
    }

    #[test]
    fn run_suite_is_pooled_and_ordered() {
        let cfg = quick();
        let specs = vec![presets::web_apache(), presets::dss_qry17()];
        let results = run_suite(&cfg, &specs, &PrefetcherKind::Baseline).expect("no panics");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "Web Apache");
        assert_eq!(results[1].workload, "DSS DB2");
    }

    #[test]
    fn miss_sequences_have_one_entry_per_core() {
        let cfg = quick();
        let seqs = collect_miss_sequences(&cfg, &presets::oltp_db2());
        assert_eq!(seqs.len(), cfg.system.cores);
        assert!(seqs.iter().any(|s| !s.is_empty()));
    }
}
