//! Command-line driver that regenerates every table and figure of the paper
//! through one shared campaign (cached traces, bounded job pool).
//!
//! ```text
//! stms-experiments [--quick] [--accesses N] [--threads N] [--warmup F]
//!                  [--figures ID[,ID...]] [--format text|json] [--csv DIR]
//!                  [--trace-cache DIR] [--result-cache DIR] [--cache-verify]
//!                  [EXPERIMENT ...]
//! ```
//!
//! With no selection every figure/table is produced. Experiments are
//! selected with `--figures fig5-left,fig8` or as bare positional ids; the
//! known ids are `table1`, `table2`, `fig1-left`, `fig1-right`, `fig4`,
//! `fig5-left`, `fig5-right`, `fig6-left`, `fig6-right`, `fig7`, `fig8`,
//! `fig9`, `ablation-index`, plus the alias `all`.
//!
//! `--trace-cache DIR` persists generated traces and `--result-cache DIR`
//! memoizes finished job outputs across runs (the same directory works for
//! both); `--cache-verify` cross-checks every loaded entry against its
//! requesting spec and regenerates on mismatch. A warm run renders
//! byte-identical stdout while skipping all trace generation and replay;
//! the cache counters are reported in a `run summary:` block on stderr.
//!
//! `--format json` emits one JSON array with one object per figure
//! (`{"id", "title", "headers", "rows", "notes"}`) for downstream tooling;
//! a figure whose jobs failed becomes `{"id", "error"}` and the exit code
//! is 1. Usage errors (unknown id/flag, invalid options) exit with 2.

use std::io::Write as _;
use std::process::ExitCode;
use stms_sim::campaign::{Campaign, CampaignCaches};
use stms_sim::experiments::{self, ALL_IDS};
use stms_sim::ExperimentConfig;
use stms_stats::{CacheReport, RunSummary};

struct Options {
    cfg: ExperimentConfig,
    threads: usize,
    selected: Vec<String>,
    format: Format,
    csv_dir: Option<String>,
    caches: CampaignCaches,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> String {
    format!(
        "usage: stms-experiments [--quick] [--accesses N] [--threads N] [--warmup F]\n\
         \x20                       [--figures ID[,ID...]] [--format text|json] [--csv DIR]\n\
         \x20                       [--trace-cache DIR] [--result-cache DIR] [--cache-verify]\n\
         \x20                       [EXPERIMENT ...]\n\
         experiments: {} (or `all`)",
        ALL_IDS.join(", ")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut cfg = ExperimentConfig::scaled();
    let mut threads = stms_sim::JobPool::default_threads();
    let mut selected: Vec<String> = Vec::new();
    let mut format = Format::Text;
    let mut csv_dir: Option<String> = None;
    let mut warmup: Option<f64> = None;
    let mut accesses: Option<usize> = None;
    let mut caches = CampaignCaches::default();

    let mut i = 0;
    let value_of = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--accesses" => {
                let v = value_of(&mut i, "--accesses")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--accesses requires a number, got `{v}`"))?;
                if n == 0 {
                    return Err("--accesses must be non-zero".into());
                }
                accesses = Some(n);
            }
            "--threads" => {
                let v = value_of(&mut i, "--threads")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads requires a number, got `{v}`"))?;
                if threads == 0 {
                    return Err("--threads must be non-zero".into());
                }
            }
            "--warmup" => {
                let v = value_of(&mut i, "--warmup")?;
                warmup = Some(
                    v.parse()
                        .map_err(|_| format!("--warmup requires a fraction, got `{v}`"))?,
                );
            }
            "--figures" => {
                let v = value_of(&mut i, "--figures")?;
                selected.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                );
            }
            "--format" => {
                let v = value_of(&mut i, "--format")?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format must be text or json, got `{other}`")),
                };
            }
            "--csv" => csv_dir = Some(value_of(&mut i, "--csv")?),
            "--trace-cache" => {
                caches.trace_dir = Some(value_of(&mut i, "--trace-cache")?.into());
            }
            "--result-cache" => {
                caches.result_dir = Some(value_of(&mut i, "--result-cache")?.into());
            }
            "--cache-verify" => caches.verify = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            id => selected.push(id.to_string()),
        }
        i += 1;
    }

    // Overrides apply after `--quick`/default selection, in any flag order.
    if let Some(n) = accesses {
        cfg = cfg.with_accesses(n);
    }
    // The fallible construction path: command-line options go through
    // SimOptions validation before any simulation starts.
    if let Some(fraction) = warmup {
        cfg.sim = cfg
            .sim
            .try_with_warmup(fraction)
            .map_err(|e| e.to_string())?;
    }
    cfg.sim.validate().map_err(|e| e.to_string())?;

    // `all` (anywhere in the selection) and an empty selection both mean
    // every known experiment.
    if selected.is_empty() || selected.iter().any(|id| id == "all") {
        selected = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    Ok(Options {
        cfg,
        threads,
        selected,
        format,
        csv_dir,
        caches,
    })
}

/// The stderr `run summary:` block: one line per configured cache tier.
fn cache_summary(campaign: &Campaign) -> RunSummary {
    let mut summary = RunSummary::new();
    let stats = campaign.cache_stats();
    let trace = stats.trace;
    if campaign.store().disk_dir().is_some() {
        summary.push(
            CacheReport::new(
                "trace cache",
                trace.hits + trace.disk_hits,
                trace.disk_misses,
            )
            .with_detail("generated", trace.generated)
            .with_detail("disk hits", trace.disk_hits)
            .with_detail("writes", trace.disk_writes)
            .with_detail("evictions", trace.disk_evictions)
            .with_detail("resident bytes", trace.disk_bytes),
        );
    }
    if let Some(result) = stats.result {
        summary.push(
            CacheReport::new("result cache", result.total_hits(), result.misses)
                .with_detail("replayed", result.misses)
                .with_detail("disk hits", result.disk_hits)
                .with_detail("stores", result.stores)
                .with_detail("corrupt", result.corrupt),
        );
    }
    summary
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Help wins over everything else, before any parsing.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut plans = Vec::new();
    for id in &opts.selected {
        match experiments::plan_for_id(id, &opts.cfg) {
            Some(plan) => plans.push(plan),
            None => {
                eprintln!(
                    "error: unknown experiment `{id}` (known: {})",
                    ALL_IDS.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create csv output directory `{dir}`: {e}");
            return ExitCode::from(2);
        }
    }

    let campaign = match Campaign::with_caches(opts.cfg.clone(), opts.threads, opts.caches.clone())
    {
        Ok(campaign) => campaign,
        Err(e) => {
            eprintln!("error: cannot open cache directory: {e}");
            return ExitCode::from(2);
        }
    };
    let figures = campaign.run_figures(plans);

    let mut failed = false;
    let mut json_items: Vec<serde_json::Value> = Vec::new();
    for figure in figures {
        match figure {
            Ok(result) => {
                if opts.format == Format::Text {
                    println!("{}", result.render());
                }
                if let Some(dir) = &opts.csv_dir {
                    let path = format!("{dir}/{}.csv", result.id);
                    match std::fs::File::create(&path)
                        .and_then(|mut f| f.write_all(result.table.to_csv().as_bytes()))
                    {
                        Ok(()) => eprintln!("wrote {path}"),
                        Err(e) => {
                            eprintln!("error: cannot write {path}: {e}");
                            failed = true;
                        }
                    }
                }
                if opts.format == Format::Json {
                    json_items.push(result.to_json());
                }
            }
            Err(err) => {
                eprintln!("error: {err}");
                failed = true;
                if opts.format == Format::Json {
                    json_items.push(serde_json::Value::Object(vec![
                        (
                            "id".to_string(),
                            serde_json::Value::from(err.figure.as_str()),
                        ),
                        (
                            "error".to_string(),
                            serde_json::Value::from(err.to_string()),
                        ),
                    ]));
                }
            }
        }
    }
    if opts.format == Format::Json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Array(json_items))
        );
    }
    // Cache accounting goes to stderr so a warm run's stdout stays
    // byte-identical to the cold run that populated the cache.
    let summary = cache_summary(&campaign);
    if !summary.is_empty() {
        eprint!("{}", summary.render());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
