//! Command-line driver that regenerates every table and figure of the paper.
//!
//! ```text
//! stms-experiments [--quick] [--accesses N] [--csv DIR] [EXPERIMENT ...]
//! ```
//!
//! With no experiment arguments every figure/table is produced. Individual
//! experiments are selected by id: `table1`, `table2`, `fig1-left`,
//! `fig1-right`, `fig4`, `fig5-left`, `fig5-right`, `fig6-left`, `fig6-right`,
//! `fig7`, `fig8`, `fig9`.

use std::io::Write as _;
use stms_sim::experiments::{self, FigureResult};
use stms_sim::ExperimentConfig;

const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "fig1-left",
    "fig1-right",
    "fig4",
    "fig5-left",
    "fig5-right",
    "fig6-left",
    "fig6-right",
    "fig7",
    "fig8",
    "fig9",
    "ablation-index",
];

fn run_one(id: &str, cfg: &ExperimentConfig) -> Option<FigureResult> {
    let result = match id {
        "table1" => experiments::table1_system(cfg),
        "table2" => experiments::table2_mlp(cfg),
        "fig1-left" => experiments::fig1_left_entries_sweep(cfg),
        "fig1-right" => experiments::fig1_right_published_overheads(),
        "fig4" => experiments::fig4_potential(cfg),
        "fig5-left" => experiments::fig5_history_sweep(cfg),
        "fig5-right" => experiments::fig5_index_sweep(cfg),
        "fig6-left" => experiments::fig6_left_stream_length_cdf(cfg),
        "fig6-right" => experiments::fig6_right_depth_loss(cfg),
        "fig7" => experiments::fig7_traffic_breakdown(cfg),
        "fig8" => experiments::fig8_sampling_sweep(cfg),
        "fig9" => experiments::fig9_final_comparison(cfg),
        "ablation-index" => {
            let ablation = stms_sim::ablation::index_organization_ablation(
                cfg,
                &stms_workloads::presets::oltp_db2(),
            );
            FigureResult {
                id: "ablation-index".into(),
                table: ablation.table(),
                notes:
                    "the bucketized table resolves every lookup with one memory block; the \
                        alternatives either probe/chain across several blocks or spend more storage"
                        .into(),
            }
        }
        _ => return None,
    };
    Some(result)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExperimentConfig::scaled();
    let mut csv_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--accesses" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--accesses requires a number");
                cfg = cfg.with_accesses(n);
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).expect("--csv requires a directory").clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: stms-experiments [--quick] [--accesses N] [--csv DIR] [EXPERIMENT ...]\n\
                     experiments: {}",
                    ALL_IDS.join(", ")
                );
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    if selected.is_empty() {
        selected = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }

    for id in &selected {
        let Some(result) = run_one(id, &cfg) else {
            eprintln!("unknown experiment `{id}` (known: {})", ALL_IDS.join(", "));
            std::process::exit(2);
        };
        println!("{}", result.render());
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{}.csv", result.id);
            let mut file = std::fs::File::create(&path).expect("create csv file");
            file.write_all(result.table.to_csv().as_bytes())
                .expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
