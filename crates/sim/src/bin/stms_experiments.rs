//! Command-line driver that regenerates every table and figure of the paper
//! through one shared campaign (cached traces, bounded job pool), either in
//! one process or sharded across many.
//!
//! ```text
//! stms-experiments [--quick] [--accesses N] [--threads N] [--warmup F]
//!                  [--figures ID[,ID...]] [--format text|json] [--csv DIR]
//!                  [--trace-cache DIR] [--result-cache DIR] [--cache-verify]
//!                  [--stream-traces] [--replay-pipeline DEPTH|auto] [--decode-threads N]
//!                  [--trace-codec v2|v3] [--metrics-out FILE]
//!                  [--calibrate-from DIR]
//!                  [--shard I/N --shard-out DIR [--shard-balance count|cost]
//!                   | --merge-shards DIR[,DIR...] | --retry-failed MANIFEST]
//!                  [EXPERIMENT ...]
//! ```
//!
//! With no selection every figure/table is produced. Experiments are
//! selected with `--figures fig5-left,fig8` or as bare positional ids; the
//! known ids are `table1`, `table2`, `fig1-left`, `fig1-right`, `fig4`,
//! `fig5-left`, `fig5-right`, `fig6-left`, `fig6-right`, `fig7`, `fig8`,
//! `fig9`, `ablation-index`, `markov-sweep`, plus the alias `all`.
//!
//! Figures render **streaming**: each one is printed as soon as its own
//! jobs complete (in selection order), so the first table appears long
//! before a many-figure run finishes.
//!
//! `--trace-cache DIR` persists generated traces and `--result-cache DIR`
//! memoizes finished job outputs across runs (the same directory works for
//! both); `--cache-verify` cross-checks every loaded entry against its
//! requesting spec and regenerates on mismatch. A warm run renders
//! byte-identical stdout while skipping all trace generation and replay;
//! the cache counters are reported in a `run summary:` block on stderr.
//!
//! # Out-of-core replay
//!
//! `--stream-traces` replays every trace as a chunked stream instead of a
//! materialized in-memory vector, so peak memory is independent of trace
//! length (`--accesses` can exceed available RAM). Pair it with
//! `--trace-cache DIR`: each trace is generated straight into a sealed
//! chunk-framed file once and streamed from disk by every job; without a
//! cache each job streams its own generator. Stdout is byte-identical to
//! the materialized path either way, and a `streamed replay:` line joins
//! the stderr run summary.
//!
//! `--replay-pipeline DEPTH` (implies `--stream-traces`) runs each streamed
//! replay through the staged prefetch→decode→simulate engine with `DEPTH`
//! chunks in flight; `--decode-threads N` adds checksum/decode workers.
//! All concurrent pipelines share one campaign-global in-flight byte budget,
//! stdout stays byte-identical to the serial path, and a `pipelined replay:`
//! line joins the stderr run summary. `DEPTH` must be at least 2 (depth 1
//! could never overlap anything). `--replay-pipeline auto` picks for you:
//! serial streaming on a single-hardware-thread box (where staging overhead
//! cannot be overlapped and measurably loses), depth 2 when threads exist
//! to overlap prefetch/decode with simulation.
//!
//! # Cost-model scheduling
//!
//! Every run predicts each job's cost with a deterministic analytic model
//! (trace length, prefetcher family, log-scaled table geometry, warm-up)
//! and submits the in-process pool longest-predicted-first, so straggler
//! jobs start early and the pool tail shrinks; figures still render in
//! selection order and stdout is byte-identical to plan-order submission.
//! `--calibrate-from DIR` rescales the model per prefetcher family from
//! the measured per-job timings sealed in any prior shard manifests in
//! `DIR`. A `scheduling:` line in the stderr run summary reports the
//! predicted total, the calibration fit (when one ran) and the
//! predicted-vs-actual error of the finished run.
//!
//! `--trace-codec v2|v3` selects the payload codec of newly written trace
//! files. The default, `v3`, compresses each chunk column by column
//! (roughly 2–6x smaller on disk); `v2` keeps the fixed-width row layout.
//! Reading is version-dispatched, so caches written under either codec
//! replay unchanged — and byte-identically — whatever the flag says. With
//! `--stream-traces` the effective ratio is reported on an indented
//! `compression:` line under the streamed-replay summary.
//!
//! # Telemetry
//!
//! Every run records into the process-wide `stms_obs` metrics registry:
//! per-job queue/run/total phase histograms (also keyed per figure),
//! pipeline stage timings (prefetch, decode, budget stall, simulate —
//! pipelined replays only), cache tier hit/miss/evict latencies, and
//! in-flight dedup counters. The snapshot is rendered as a `telemetry:`
//! block at the end of the stderr run summary, and `--metrics-out FILE`
//! additionally writes it as a versioned JSON document
//! (`"stms-metrics/v1"`). Telemetry never writes to stdout, so figure
//! output stays byte-identical to an uninstrumented run. Shard runs embed
//! their per-job phase timings into the sealed manifest; `--merge-shards`
//! folds every shard's timings back into `merge.queue_ns`/`merge.run_ns`,
//! aggregating fleet-wide timing without rerunning anything.
//!
//! # Distributed campaigns
//!
//! `--shard I/N` runs only the 1-based `I`-th slice of the deterministic
//! `N`-way job partition (generate/replay only — nothing renders) and seals
//! the finished outputs into a manifest under `--shard-out DIR`.
//! `--shard-balance cost` replaces the default `fingerprint % N` split with
//! deterministic greedy bin-packing of predicted job costs, so every shard
//! carries near-equal predicted *work* instead of near-equal job count;
//! every shard of the fleet must pass the same balance mode (and the same
//! `--calibrate-from`, if any) — the mode is sealed into each manifest and
//! cross-checked at merge.
//! `--merge-shards DIR[,DIR...]` (repeatable) validates the manifests found
//! in the listed directories and renders the selected figures from them
//! without running a single simulation; stdout is byte-identical to an
//! unsharded run of the same selection. The merge streams: each figure
//! prints as soon as it renders, and each sealed payload is dropped after
//! its last consuming figure (manifest compaction), so merge memory tracks
//! the live figure window rather than the whole grid.
//!
//! `--retry-failed MANIFEST` repairs a *partial* shard (exit code 3): it
//! reruns only the owned jobs missing from the sealed manifest and seals
//! the completed manifest in place, so CI retries replay exactly the
//! failed slice instead of the whole shard.
//!
//! `--format json` emits one JSON array with one object per figure
//! (`{"id", "title", "headers", "rows", "notes", "metrics"}`, where
//! `"metrics"` carries the raw per-replay counters) for downstream tooling;
//! a figure whose jobs failed becomes `{"id", "error"}` and the exit code
//! is 1.
//!
//! # Exit codes
//!
//! * `0` — success (for `--shard`/`--retry-failed`: every owned job
//!   sealed);
//! * `1` — a figure failed to render, a merge was rejected (stale config,
//!   duplicate or missing shard coverage), a retry manifest was unusable,
//!   or a manifest could not be written;
//! * `2` — usage errors (unknown id/flag, invalid options);
//! * `3` — a *partial shard*: some jobs failed, but the manifest was still
//!   sealed with the completed outputs, so CI can retry just this slice
//!   with `--retry-failed`.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use stms_sim::campaign::{
    cost, push_cache_reports, Calibration, Campaign, CampaignCaches, JobCostModel, ShardSpec,
};
use stms_sim::experiments::{self, ALL_IDS};
use stms_sim::{ExperimentConfig, FigurePlan, FigureResult};
use stms_stats::{RunSummary, SchedReport, TelemetryReport};
use stms_types::ShardBalance;

struct Options {
    cfg: ExperimentConfig,
    threads: usize,
    selected: Vec<String>,
    format: Format,
    csv_dir: Option<String>,
    caches: CampaignCaches,
    shard: Option<ShardSpec>,
    shard_out: Option<PathBuf>,
    shard_balance: ShardBalance,
    calibrate_from: Option<PathBuf>,
    merge_dirs: Vec<PathBuf>,
    retry_manifest: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> String {
    format!(
        "usage: stms-experiments [--quick] [--accesses N] [--threads N] [--warmup F]\n\
         \x20                       [--figures ID[,ID...]] [--format text|json] [--csv DIR]\n\
         \x20                       [--trace-cache DIR] [--result-cache DIR] [--cache-verify]\n\
         \x20                       [--stream-traces] [--replay-pipeline DEPTH|auto] [--decode-threads N]\n\
         \x20                       [--trace-codec v2|v3] [--metrics-out FILE]\n\
         \x20                       [--calibrate-from DIR]\n\
         \x20                       [--shard I/N --shard-out DIR [--shard-balance count|cost]\n\
         \x20                        | --merge-shards DIR[,DIR...] | --retry-failed MANIFEST]\n\
         \x20                       [EXPERIMENT ...]\n\
         experiments: {} (or `all`)",
        ALL_IDS.join(", ")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut cfg = ExperimentConfig::scaled();
    let mut threads = stms_sim::JobPool::default_threads();
    let mut selected: Vec<String> = Vec::new();
    let mut format = Format::Text;
    let mut csv_dir: Option<String> = None;
    let mut warmup: Option<f64> = None;
    let mut accesses: Option<usize> = None;
    let mut caches = CampaignCaches::default();
    let mut decode_threads: Option<usize> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut shard_out: Option<PathBuf> = None;
    let mut shard_balance: Option<ShardBalance> = None;
    let mut calibrate_from: Option<PathBuf> = None;
    let mut merge_dirs: Vec<PathBuf> = Vec::new();
    let mut retry_manifest: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;

    let mut i = 0;
    let value_of = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--accesses" => {
                let v = value_of(&mut i, "--accesses")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--accesses requires a number, got `{v}`"))?;
                if n == 0 {
                    return Err("--accesses must be non-zero".into());
                }
                accesses = Some(n);
            }
            "--threads" => {
                let v = value_of(&mut i, "--threads")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads requires a number, got `{v}`"))?;
                if threads == 0 {
                    return Err("--threads must be non-zero".into());
                }
            }
            "--warmup" => {
                let v = value_of(&mut i, "--warmup")?;
                warmup = Some(
                    v.parse()
                        .map_err(|_| format!("--warmup requires a fraction, got `{v}`"))?,
                );
            }
            "--figures" => {
                let v = value_of(&mut i, "--figures")?;
                selected.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                );
            }
            "--format" => {
                let v = value_of(&mut i, "--format")?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format must be text or json, got `{other}`")),
                };
            }
            "--csv" => csv_dir = Some(value_of(&mut i, "--csv")?),
            "--trace-cache" => {
                caches.trace_dir = Some(value_of(&mut i, "--trace-cache")?.into());
            }
            "--result-cache" => {
                caches.result_dir = Some(value_of(&mut i, "--result-cache")?.into());
            }
            "--cache-verify" => caches.verify = true,
            "--stream-traces" => caches.stream_traces = true,
            "--replay-pipeline" => {
                let v = value_of(&mut i, "--replay-pipeline")?;
                if v == "auto" {
                    // On a single-hardware-thread box the pipeline stages
                    // cannot overlap, so staging overhead is pure loss (the
                    // committed bench shows depth 2 slower than serial
                    // there): fall back to serial streaming. Anywhere else,
                    // the minimal depth that overlaps prefetch with
                    // simulation.
                    let parallelism = std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1);
                    if parallelism <= 1 {
                        caches.stream_traces = true;
                    } else {
                        caches.pipeline_depth = 2;
                    }
                } else {
                    let depth: usize = v.parse().map_err(|_| {
                        format!("--replay-pipeline requires a depth or `auto`, got `{v}`")
                    })?;
                    if depth < 2 {
                        return Err(format!(
                            "--replay-pipeline depth must be at least 2 \
                             (got {depth}); a depth-1 pipeline could never \
                             overlap prefetch with simulation"
                        ));
                    }
                    caches.pipeline_depth = depth;
                }
            }
            "--trace-codec" => {
                let v = value_of(&mut i, "--trace-codec")?;
                caches.trace_codec = match v.as_str() {
                    "v2" => stms_types::TraceCodec::V2,
                    "v3" => stms_types::TraceCodec::V3,
                    other => return Err(format!("--trace-codec must be v2 or v3, got `{other}`")),
                };
            }
            "--decode-threads" => {
                let v = value_of(&mut i, "--decode-threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--decode-threads requires a number, got `{v}`"))?;
                if n == 0 {
                    return Err("--decode-threads must be non-zero".into());
                }
                decode_threads = Some(n);
            }
            "--metrics-out" => {
                metrics_out = Some(value_of(&mut i, "--metrics-out")?.into());
            }
            "--retry-failed" => {
                retry_manifest = Some(value_of(&mut i, "--retry-failed")?.into());
            }
            "--shard" => {
                let v = value_of(&mut i, "--shard")?;
                shard = Some(ShardSpec::parse(&v)?);
            }
            "--shard-out" => shard_out = Some(value_of(&mut i, "--shard-out")?.into()),
            "--shard-balance" => {
                let v = value_of(&mut i, "--shard-balance")?;
                shard_balance =
                    Some(ShardBalance::parse(&v).ok_or_else(|| {
                        format!("--shard-balance must be count or cost, got `{v}`")
                    })?);
            }
            "--calibrate-from" => {
                calibrate_from = Some(value_of(&mut i, "--calibrate-from")?.into());
            }
            "--merge-shards" => {
                let v = value_of(&mut i, "--merge-shards")?;
                let before = merge_dirs.len();
                merge_dirs.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(PathBuf::from),
                );
                // An empty value must not silently fall back to a full
                // single-process simulation (e.g. an unset `$SHARD_DIRS`).
                if merge_dirs.len() == before {
                    return Err(format!(
                        "--merge-shards requires at least one directory, got `{v}`"
                    ));
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            id => selected.push(id.to_string()),
        }
        i += 1;
    }

    // Overrides apply after `--quick`/default selection, in any flag order.
    if let Some(n) = accesses {
        cfg = cfg.with_accesses(n);
    }
    // The fallible construction path: command-line options go through
    // SimOptions validation before any simulation starts.
    if let Some(fraction) = warmup {
        cfg.sim = cfg
            .sim
            .try_with_warmup(fraction)
            .map_err(|e| e.to_string())?;
    }
    cfg.sim.validate().map_err(|e| e.to_string())?;

    // Decode workers only exist inside a pipeline.
    if let Some(n) = decode_threads {
        if caches.pipeline_depth == 0 {
            return Err("--decode-threads is only meaningful with --replay-pipeline DEPTH".into());
        }
        caches.decode_threads = n;
    }

    // Sharding flags must form a coherent mode.
    let modes = [
        shard.is_some(),
        !merge_dirs.is_empty(),
        retry_manifest.is_some(),
    ];
    if modes.iter().filter(|&&on| on).count() > 1 {
        return Err("--shard, --merge-shards and --retry-failed are mutually exclusive".into());
    }
    if shard.is_some() && shard_out.is_none() {
        return Err("--shard requires --shard-out DIR for the sealed manifest".into());
    }
    if shard.is_none() && shard_out.is_some() {
        return Err("--shard-out is only meaningful with --shard I/N".into());
    }
    if shard.is_none() && shard_balance.is_some() {
        return Err("--shard-balance is only meaningful with --shard I/N".into());
    }
    // Merge runs no cost model at all — silently accepting the flag would
    // suggest calibration affected the (purely validated) merge.
    if calibrate_from.is_some() && !merge_dirs.is_empty() {
        return Err(
            "--calibrate-from has no effect with --merge-shards (nothing is scheduled)".into(),
        );
    }
    // Shard and retry modes render nothing, so output flags would be
    // silently dead.
    let renderless = if shard.is_some() {
        Some("--shard")
    } else if retry_manifest.is_some() {
        Some("--retry-failed")
    } else {
        None
    };
    if let Some(mode) = renderless {
        if csv_dir.is_some() {
            return Err(format!(
                "--csv has no effect with {mode} (nothing renders); use it on the merge"
            ));
        }
        if format == Format::Json {
            return Err(format!(
                "--format json has no effect with {mode} (nothing renders); use it on the merge"
            ));
        }
    }

    // `all` (anywhere in the selection) and an empty selection both mean
    // every known experiment.
    if selected.is_empty() || selected.iter().any(|id| id == "all") {
        selected = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    Ok(Options {
        cfg,
        threads,
        selected,
        format,
        csv_dir,
        caches,
        shard,
        shard_out,
        shard_balance: shard_balance.unwrap_or_default(),
        calibrate_from,
        merge_dirs,
        retry_manifest,
        metrics_out,
    })
}

/// Attaches the registry snapshot's `telemetry:` block to the summary and,
/// when `--metrics-out` was given, writes the versioned JSON snapshot.
/// Returns `false` when the snapshot file could not be written.
fn finish_telemetry(summary: &mut RunSummary, metrics_out: Option<&std::path::Path>) -> bool {
    let snapshot = stms_obs::snapshot();
    if !snapshot.is_empty() {
        summary.push_telemetry(TelemetryReport {
            lines: snapshot.render_lines(),
        });
    }
    let Some(path) = metrics_out else {
        return true;
    };
    match std::fs::write(path, snapshot.to_json_string()) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            true
        }
        Err(e) => {
            eprintln!(
                "error: cannot write metrics snapshot `{}`: {e}",
                path.display()
            );
            false
        }
    }
}

/// Shared figure-output stage: prints text renders as they arrive, writes
/// CSV files, and accumulates JSON items. Used identically by the streaming
/// single-process path and the merge path, which is what keeps their stdout
/// byte-identical.
struct FigureSink<'a> {
    opts: &'a Options,
    json_items: Vec<serde_json::Value>,
    failed: bool,
}

impl<'a> FigureSink<'a> {
    fn new(opts: &'a Options) -> Self {
        FigureSink {
            opts,
            json_items: Vec::new(),
            failed: false,
        }
    }

    fn accept(&mut self, figure: Result<FigureResult, stms_sim::CampaignError>) {
        if self.opts.format == Format::Json {
            // The shared helper is also what the serve daemon uses, so a
            // served document is byte-identical to this one by construction.
            self.json_items.push(experiments::figure_json_item(&figure));
        }
        match figure {
            Ok(result) => {
                if self.opts.format == Format::Text {
                    println!("{}", result.render());
                }
                if let Some(dir) = &self.opts.csv_dir {
                    let path = format!("{dir}/{}.csv", result.id);
                    match std::fs::File::create(&path)
                        .and_then(|mut f| f.write_all(result.table.to_csv().as_bytes()))
                    {
                        Ok(()) => eprintln!("wrote {path}"),
                        Err(e) => {
                            eprintln!("error: cannot write {path}: {e}");
                            self.failed = true;
                        }
                    }
                }
            }
            Err(err) => {
                eprintln!("error: {err}");
                self.failed = true;
            }
        }
    }

    /// Emits the collected JSON document (if in JSON mode) and reports
    /// whether any figure failed.
    fn finish(self) -> bool {
        if self.opts.format == Format::Json {
            println!("{}", experiments::figures_json_document(self.json_items));
        }
        self.failed
    }
}

/// Merges the calibration fit (when `--calibrate-from` ran) into a
/// scheduling report before it renders.
fn merge_calibration(sched: &mut SchedReport, calibration: Option<Calibration>) {
    if let Some(calibration) = calibration {
        sched.calibration_samples = Some(calibration.samples);
        sched.calibration_error_milli = Some(calibration.error_milli);
    }
}

/// Runs one shard slice and seals its manifest. See the exit-code contract
/// in the module docs.
fn run_shard_mode(
    campaign: &Campaign,
    plans: Vec<FigurePlan>,
    spec: ShardSpec,
    balance: ShardBalance,
    calibration: Option<Calibration>,
    out_dir: &std::path::Path,
    metrics_out: Option<&std::path::Path>,
) -> ExitCode {
    let run = campaign.run_shard(plans, spec, balance);
    if let Some(error) = run.error() {
        eprintln!("error: {error}");
    }
    let (path, bytes) = match run.write_manifest(out_dir) {
        Ok(written) => written,
        Err(e) => {
            eprintln!(
                "error: cannot write shard manifest to `{}`: {e}",
                out_dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sealed {}", path.display());
    let mut summary = RunSummary::new();
    summary.push_shard(run.report(bytes));
    let mut sched = run.sched_report();
    merge_calibration(&mut sched, calibration);
    summary.push_sched(sched);
    push_cache_reports(&mut summary, campaign);
    let metrics_ok = finish_telemetry(&mut summary, metrics_out);
    eprint!("{}", summary.render());
    if !metrics_ok {
        ExitCode::FAILURE
    } else if run.is_complete() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

/// Reruns only the jobs missing from a partial shard manifest and seals
/// the completed manifest in place. Exit codes mirror `--shard`: 0 when the
/// shard is now complete, 3 when jobs failed again, 1 when the manifest is
/// unusable.
fn run_retry_mode(
    campaign: &Campaign,
    plans: Vec<FigurePlan>,
    calibration: Option<Calibration>,
    manifest_path: &std::path::Path,
    metrics_out: Option<&std::path::Path>,
) -> ExitCode {
    let run = match campaign.retry_shard(plans, manifest_path) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "retried shard {}: {} missing job(s) rerun",
        run.spec, run.jobs_rerun
    );
    if let Some(error) = run.error() {
        eprintln!("error: {error}");
    }
    let dir = manifest_path.parent().unwrap_or(std::path::Path::new("."));
    let (path, bytes) = match run.write_manifest(dir) {
        Ok(written) => written,
        Err(e) => {
            eprintln!(
                "error: cannot write shard manifest to `{}`: {e}",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    // The healed manifest seals under its conventional shard-I-of-N name.
    // If the partial file was renamed (so the two names are different
    // files), remove the stale original — otherwise a later merge of the
    // directory would see the same shard twice and fail with
    // DuplicateShard. Identity is checked on canonicalized paths, never
    // lexically: on a case-insensitive filesystem a differently-spelled
    // path to the same file must not delete the manifest just sealed.
    let same_file = match (path.canonicalize(), manifest_path.canonicalize()) {
        (Ok(sealed), Ok(original)) => sealed == original,
        // Cannot prove they differ: leave the original alone.
        _ => true,
    };
    if !same_file {
        let _ = std::fs::remove_file(manifest_path);
    }
    eprintln!("sealed {}", path.display());
    let mut summary = RunSummary::new();
    summary.push_shard(run.report(bytes));
    let mut sched = run.sched_report();
    merge_calibration(&mut sched, calibration);
    summary.push_sched(sched);
    push_cache_reports(&mut summary, campaign);
    let metrics_ok = finish_telemetry(&mut summary, metrics_out);
    eprint!("{}", summary.render());
    if !metrics_ok {
        ExitCode::FAILURE
    } else if run.is_complete() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Help wins over everything else, before any parsing.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut plans = Vec::new();
    for id in &opts.selected {
        match experiments::plan_for_id(id, &opts.cfg) {
            Some(plan) => plans.push(plan),
            None => {
                eprintln!(
                    "error: unknown experiment `{id}` (known: {})",
                    ALL_IDS.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create csv output directory `{dir}`: {e}");
            return ExitCode::from(2);
        }
    }

    // Merge mode replays nothing, so don't spawn an idle worker fleet.
    let threads = if opts.merge_dirs.is_empty() {
        opts.threads
    } else {
        1
    };
    let campaign = match Campaign::with_caches(opts.cfg.clone(), threads, opts.caches.clone()) {
        Ok(campaign) => campaign,
        Err(e) => {
            eprintln!("error: cannot open cache directory: {e}");
            return ExitCode::from(2);
        }
    };

    // Calibrate the cost model from prior manifests before anything is
    // scheduled. Scheduling never changes results, only order, so a failed
    // expectation here is a usage error, not a partial run.
    let mut calibration: Option<Calibration> = None;
    if let Some(dir) = &opts.calibrate_from {
        let timings = match cost::load_timings(dir) {
            Ok(timings) => timings,
            Err(message) => {
                eprintln!("error: --calibrate-from: {message}");
                return ExitCode::from(2);
            }
        };
        let jobs: Vec<_> = plans
            .iter()
            .flat_map(|plan| plan.jobs().iter().cloned())
            .collect();
        let grid = stms_sim::campaign::shard::distinct_jobs(campaign.cfg(), &jobs);
        let (model, fit) = JobCostModel::calibrated(campaign.cfg(), &grid, &timings);
        campaign.set_cost_model(model);
        calibration = Some(fit);
    }

    // Shard mode: generate/replay one slice, seal, render nothing.
    if let Some(spec) = opts.shard {
        let out_dir = opts.shard_out.as_deref().expect("validated in parse_args");
        return run_shard_mode(
            &campaign,
            plans,
            spec,
            opts.shard_balance,
            calibration,
            out_dir,
            opts.metrics_out.as_deref(),
        );
    }
    // Retry mode: rerun only the jobs missing from a partial manifest.
    if let Some(manifest) = &opts.retry_manifest {
        return run_retry_mode(
            &campaign,
            plans,
            calibration,
            manifest,
            opts.metrics_out.as_deref(),
        );
    }

    let mut sink = FigureSink::new(&opts);
    if opts.merge_dirs.is_empty() {
        // Single-process mode: figures stream out as their jobs complete.
        campaign.run_figures_streaming(plans, |figure| sink.accept(figure));
    } else {
        // Merge mode: hydrate sealed shard outputs streaming, replay
        // nothing, and drop each payload after its last consuming figure.
        if let Err(err) = campaign.merge_shards_streaming(plans, &opts.merge_dirs, |figure| {
            sink.accept(Ok(figure));
        }) {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    }
    let failed = sink.finish();
    // Cache accounting and telemetry go to stderr so a warm run's stdout
    // stays byte-identical to the cold run that populated the cache — and
    // an instrumented run's stdout identical to a registry-disabled one.
    let mut summary = RunSummary::new();
    push_cache_reports(&mut summary, &campaign);
    let metrics_ok = finish_telemetry(&mut summary, opts.metrics_out.as_deref());
    // A plain run keeps stderr summary-free (the quiet-default contract);
    // the scheduling line joins whenever a summary prints anyway, or when
    // a calibration was explicitly requested. Render order is fixed by
    // RunSummary, not push order.
    if let Some(mut sched) = campaign.take_sched_report() {
        if calibration.is_some() || !summary.is_empty() {
            merge_calibration(&mut sched, calibration);
            summary.push_sched(sched);
        }
    }
    if !summary.is_empty() {
        eprint!("{}", summary.render());
    }
    if failed || !metrics_ok {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
