//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every function returns a [`FigureResult`] containing an aligned text table
//! (also exportable as CSV) with the same rows/series the paper reports. The
//! `stms-experiments` binary and the Criterion benches are thin wrappers
//! around these functions; `EXPERIMENTS.md` records the measured values next
//! to the paper's.

use crate::runner::{collect_miss_sequences, run_matched, run_suite, run_workload, PrefetcherKind};
use crate::system::ExperimentConfig;
use stms_core::StmsConfig;
use stms_mem::SimResult;
use stms_prefetch::FixedDepthConfig;
use stms_stats::{analyze_streams_multi, geometric_mean, pct, ratio, TextTable};
use stms_workloads::{presets, WorkloadSpec};

/// The rendered result of one reproduced table or figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig4"`.
    pub id: String,
    /// The rendered table.
    pub table: TextTable,
    /// Free-form notes about what to compare against the paper.
    pub notes: String,
}

impl FigureResult {
    /// Renders the figure as text (title, table, notes).
    pub fn render(&self) -> String {
        let mut out = self.table.render();
        if !self.notes.is_empty() {
            out.push_str("notes: ");
            out.push_str(&self.notes);
            out.push('\n');
        }
        out
    }
}

fn workload_suite() -> Vec<WorkloadSpec> {
    presets::paper_figure_suite()
}

/// Table 1: the system model parameters (configuration dump, no simulation).
pub fn table1_system(cfg: &ExperimentConfig) -> FigureResult {
    let sys = &cfg.system;
    let mut t = TextTable::new(vec!["parameter".into(), "value".into()])
        .with_title("Table 1: system model (scaled reproduction values)");
    let rows: Vec<(String, String)> = vec![
        ("cores".into(), format!("{}", sys.cores)),
        (
            "L1 data cache".into(),
            format!(
                "{} KB {}-way, {}-cycle",
                sys.l1.capacity_bytes / 1024,
                sys.l1.associativity,
                sys.l1.hit_latency
            ),
        ),
        (
            "shared L2".into(),
            format!(
                "{} KB {}-way, {}-cycle",
                sys.l2.capacity_bytes / 1024,
                sys.l2.associativity,
                sys.l2.hit_latency
            ),
        ),
        (
            "main memory".into(),
            format!(
                "{} cycles latency, {:.1} B/cycle peak",
                sys.dram.latency_cycles, sys.dram.bytes_per_cycle
            ),
        ),
        (
            "ROB / MSHRs per core".into(),
            format!("{} / {}", sys.core.rob_size, sys.core.mshrs),
        ),
        (
            "stride prefetcher".into(),
            format!(
                "{} streams, degree {}",
                sys.stride.streams, sys.stride.degree
            ),
        ),
        ("trace length".into(), format!("{} accesses", cfg.accesses)),
    ];
    for (k, v) in rows {
        t.add_row(vec![k, v]);
    }
    FigureResult {
        id: "table1".into(),
        table: t,
        notes: "capacities are scaled ~16x below the paper's Table 1 to match the synthetic \
                workload footprints (see DESIGN.md)"
            .into(),
    }
}

/// Table 2: memory-level parallelism of off-chip reads in the base system.
pub fn table2_mlp(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let results = run_suite(cfg, &specs, &PrefetcherKind::Baseline);
    let mut t = TextTable::new(vec!["workload".into(), "MLP".into()])
        .with_title("Table 2: memory-level parallelism of off-chip reads (baseline)");
    for r in &results {
        t.add_row(vec![r.workload.clone(), format!("{:.1}", r.mlp())]);
    }
    FigureResult {
        id: "table2".into(),
        table: t,
        notes: "paper reports 1.0 (moldyn) to 1.7 (em3d); commercial workloads 1.3-1.6".into(),
    }
}

/// Figure 1 (left): coverage as a function of correlation-table entries for
/// an idealized address-correlating prefetcher (commercial workloads).
pub fn fig1_left_entries_sweep(cfg: &ExperimentConfig) -> FigureResult {
    let specs = presets::commercial_suite();
    let entry_counts: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];
    let mut t = TextTable::new(vec![
        "index entries".into(),
        "avg coverage".into(),
        "paper-equivalent entries".into(),
    ])
    .with_title("Figure 1 (left): coverage vs correlation-table entries (commercial workloads)");
    for &entries in &entry_counts {
        let kind = PrefetcherKind::IdealTms {
            index_entries: Some(entries),
            history_entries: 1 << 22,
        };
        let results = run_suite(cfg, &specs, &kind);
        let coverages: Vec<f64> = results.iter().map(|r| r.coverage()).collect();
        let avg = stms_stats::mean(&coverages);
        t.add_row(vec![
            format!("{entries}"),
            pct(avg),
            format!("{}", entries as u64 * crate::system::CAPACITY_SCALE),
        ]);
    }
    FigureResult {
        id: "fig1-left".into(),
        table: t,
        notes: "coverage should keep rising until ~10^5-10^6 scaled entries (10^6-10^7 paper-equivalent)"
            .into(),
    }
}

/// Figure 1 (right): memory-traffic overheads of prior off-chip meta-data
/// designs, reconstructed (as the paper does) from their published results.
pub fn fig1_right_published_overheads() -> FigureResult {
    // Reconstruction constants, per design, from the published results the
    // paper cites: overhead accesses per baseline read access.
    // - EBCP: ~50% coverage at ~60% accuracy -> ~0.35 erroneous per read;
    //   one lookup per off-chip miss epoch (~0.7/read) and a 3-access update
    //   per lookup (~2.1/read).
    // - ULMT: lookup on every remaining miss (~0.5/read), 3-access update per
    //   lookup (~1.5/read), erroneous ~0.4/read.
    // - TSE: 3-access lookup on remaining misses (~1.5/read), ~1 access per
    //   update on misses and prefetched hits (~1.0/read), erroneous ~0.3/read.
    let designs: [(&str, f64, f64, f64); 3] = [
        ("EBCP", 0.35, 0.70, 2.10),
        ("ULMT", 0.40, 0.50, 1.50),
        ("TSE", 0.30, 1.50, 1.00),
    ];
    let mut t = TextTable::new(vec![
        "design".into(),
        "erroneous prefetches".into(),
        "meta-data lookup".into(),
        "meta-data update".into(),
        "total overhead / read".into(),
    ])
    .with_title("Figure 1 (right): overhead traffic of prior designs (reconstructed from published results)");
    for (name, err, lookup, update) in designs {
        t.add_row(vec![
            name.to_string(),
            ratio(err),
            ratio(lookup),
            ratio(update),
            ratio(err + lookup + update),
        ]);
    }
    FigureResult {
        id: "fig1-right".into(),
        table: t,
        notes: "all three prior designs incur roughly 3x the baseline read traffic".into(),
    }
}

/// Figure 4: coverage (left) and speedup (right) of idealized TMS over the
/// baseline, per workload.
pub fn fig4_potential(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let mut t = TextTable::new(vec!["workload".into(), "coverage".into(), "speedup".into()])
        .with_title("Figure 4: idealized TMS prefetching potential");
    for spec in &specs {
        let results = run_matched(
            cfg,
            spec,
            &[PrefetcherKind::Baseline, PrefetcherKind::ideal()],
        );
        let base = &results[0];
        let ideal = &results[1];
        t.add_row(vec![
            spec.name.clone(),
            pct(ideal.coverage()),
            pct(ideal.speedup_over(base)),
        ]);
    }
    FigureResult {
        id: "fig4".into(),
        table: t,
        notes: "expected shape: Web/OLTP 40-60% coverage with 5-18% speedup, DSS <=20% coverage, \
                scientific 80-99% coverage with up to ~80% speedup (em3d)"
            .into(),
    }
}

/// Figure 5 (left): coverage as a function of (aggregate) history-buffer
/// size.
pub fn fig5_history_sweep(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    // Entries per core; 4 bytes per entry, 4 cores -> aggregate bytes = 16x.
    let sizes: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];
    let mut headers = vec![
        "history entries/core".into(),
        "aggregate (paper-equiv MB)".into(),
    ];
    headers.extend(specs.iter().map(|s| s.name.clone()));
    let mut t =
        TextTable::new(headers).with_title("Figure 5 (left): coverage vs history-buffer size");
    for &entries in &sizes {
        let kind = PrefetcherKind::IdealTms {
            index_entries: None,
            history_entries: entries,
        };
        let results = run_suite(cfg, &specs, &kind);
        let aggregate_bytes = entries as u64 * 4 * cfg.system.cores as u64;
        let mut row = vec![
            format!("{entries}"),
            format!("{:.2}", cfg.paper_equivalent_mb(aggregate_bytes)),
        ];
        row.extend(results.iter().map(|r| pct(r.coverage())));
        t.add_row(row);
    }
    FigureResult {
        id: "fig5-left".into(),
        table: t,
        notes:
            "commercial coverage should rise smoothly with history size; scientific coverage is \
                bimodal (near zero until the history holds a full iteration, then near full)"
                .into(),
    }
}

/// Figure 5 (right): coverage as a function of index-table size (hash-based
/// lookup, unbounded history).
pub fn fig5_index_sweep(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let bucket_counts: [usize; 6] = [1 << 7, 1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17];
    let mut headers = vec!["index buckets".into(), "index size (paper-equiv MB)".into()];
    headers.extend(specs.iter().map(|s| s.name.clone()));
    let mut t = TextTable::new(headers)
        .with_title("Figure 5 (right): coverage vs index-table size (hash-based lookup)");
    for &buckets in &bucket_counts {
        let stms_cfg = StmsConfig::scaled_default()
            .with_sampling(1.0)
            .with_index_buckets(buckets)
            .with_history_entries(1 << 20);
        let kind = PrefetcherKind::Stms(stms_cfg);
        let results = run_suite(cfg, &specs, &kind);
        let mut row = vec![
            format!("{buckets}"),
            format!("{:.2}", cfg.paper_equivalent_mb(buckets as u64 * 64)),
        ];
        row.extend(results.iter().map(|r| pct(r.coverage())));
        t.add_row(row);
    }
    FigureResult {
        id: "fig5-right".into(),
        table: t,
        notes: "coverage should saturate once the index holds roughly one entry per distinct miss \
                address (paper: ~16 MB)"
            .into(),
    }
}

/// Figure 6 (left): cumulative fraction of streamed blocks by temporal-stream
/// length (commercial workloads).
pub fn fig6_left_stream_length_cdf(cfg: &ExperimentConfig) -> FigureResult {
    let specs = presets::commercial_suite();
    let sample_points: [u64; 5] = [1, 10, 100, 1000, 10000];
    let mut headers = vec!["workload".into()];
    headers.extend(sample_points.iter().map(|p| format!("<= {p}")));
    let mut t = TextTable::new(headers)
        .with_title("Figure 6 (left): cumulative % of streamed blocks vs temporal-stream length");
    for spec in &specs {
        let seqs = collect_miss_sequences(cfg, spec);
        let analysis = analyze_streams_multi(&seqs);
        let cdf = analysis.blocks_by_length_cdf();
        let mut row = vec![spec.name.clone()];
        for &p in &sample_points {
            row.push(if cdf.is_empty() {
                "n/a".into()
            } else {
                pct(cdf.fraction_at_or_below(p))
            });
        }
        t.add_row(row);
    }
    FigureResult {
        id: "fig6-left".into(),
        table: t,
        notes:
            "a sizable fraction of streamed blocks comes from streams of <= 10 blocks, but long \
                streams (100+) carry much of the weight"
                .into(),
    }
}

/// Figure 6 (right): coverage loss (relative to unbounded prefetch depth) of
/// a fixed-depth single-table prefetcher.
pub fn fig6_right_depth_loss(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let depths: [usize; 5] = [1, 2, 4, 6, 12];
    let mut headers = vec!["workload".into(), "unbounded coverage".into()];
    headers.extend(depths.iter().map(|d| format!("loss @depth {d}")));
    let mut t = TextTable::new(headers)
        .with_title("Figure 6 (right): coverage loss of restricted prefetch depth");
    for spec in &specs {
        let mut kinds = vec![PrefetcherKind::ideal()];
        kinds.extend(depths.iter().map(|&d| {
            PrefetcherKind::FixedDepth(FixedDepthConfig::on_chip_with_depth(cfg.system.cores, d))
        }));
        let results = run_matched(cfg, spec, &kinds);
        let unbounded = results[0].coverage();
        let mut row = vec![spec.name.clone(), pct(unbounded)];
        for r in &results[1..] {
            let loss = (unbounded - r.coverage()).max(0.0);
            row.push(pct(loss));
        }
        t.add_row(row);
    }
    FigureResult {
        id: "fig6-right".into(),
        table: t,
        notes: "small fixed depths (<= 6) should lose tens of percentage points of coverage on \
                workloads with long streams"
            .into(),
    }
}

/// Figure 7: overhead-traffic breakdown with and without probabilistic
/// update (100% vs 12.5% sampling).
pub fn fig7_traffic_breakdown(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let mut t = TextTable::new(vec![
        "workload".into(),
        "sampling".into(),
        "record".into(),
        "update".into(),
        "lookup".into(),
        "erroneous".into(),
        "total overhead/useful byte".into(),
    ])
    .with_title("Figure 7: overhead traffic breakdown (100% vs 12.5% index-update sampling)");
    let mut ratios = Vec::new();
    for spec in &specs {
        let kinds = [
            PrefetcherKind::stms_with_sampling(1.0),
            PrefetcherKind::stms_with_sampling(0.125),
        ];
        let results = run_matched(cfg, spec, &kinds);
        for (kind, r) in kinds.iter().zip(&results) {
            let b = r.overhead_breakdown();
            let sampling = match kind {
                PrefetcherKind::Stms(c) => format!("{:.1}%", c.sampling_probability * 100.0),
                _ => unreachable!(),
            };
            t.add_row(vec![
                spec.name.clone(),
                sampling,
                ratio(b.record),
                ratio(b.update),
                ratio(b.lookup),
                ratio(b.erroneous),
                ratio(b.total()),
            ]);
        }
        let full = results[0].traffic.meta_update.max(1) as f64;
        let sampled = results[1].traffic.meta_update.max(1) as f64;
        ratios.push(full / sampled);
    }
    let gmean = geometric_mean(&ratios);
    FigureResult {
        id: "fig7".into(),
        table: t,
        notes: format!(
            "index-update traffic reduction at 12.5% sampling: geometric mean {gmean:.1}x \
             (paper reports 3.4x overall meta-data traffic reduction)"
        ),
    }
}

/// Figure 8: traffic overhead (left) and coverage (right) as a function of
/// the update sampling probability.
pub fn fig8_sampling_sweep(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let probabilities = [0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0];
    let mut headers = vec!["workload".into()];
    for p in probabilities {
        headers.push(format!("traffic @{:.0}%", p * 100.0));
    }
    for p in probabilities {
        headers.push(format!("coverage @{:.0}%", p * 100.0));
    }
    let mut t = TextTable::new(headers)
        .with_title("Figure 8: sensitivity to the update sampling probability");
    for spec in &specs {
        let kinds: Vec<PrefetcherKind> = probabilities
            .iter()
            .map(|&p| PrefetcherKind::stms_with_sampling(p))
            .collect();
        let results = run_matched(cfg, spec, &kinds);
        let mut row = vec![spec.name.clone()];
        for r in &results {
            row.push(ratio(r.overhead_per_useful_byte()));
        }
        for r in &results {
            row.push(pct(r.coverage()));
        }
        t.add_row(row);
    }
    FigureResult {
        id: "fig8".into(),
        table: t,
        notes: "traffic falls roughly in proportion to the sampling probability while coverage \
                degrades only slowly (logarithmically); 12.5% is the sweet spot"
            .into(),
    }
}

/// Figure 9: coverage and speedup of practical STMS (off-chip meta-data,
/// 12.5% sampling) versus idealized TMS.
pub fn fig9_final_comparison(cfg: &ExperimentConfig) -> FigureResult {
    let specs = workload_suite();
    let mut t = TextTable::new(vec![
        "workload".into(),
        "ideal coverage".into(),
        "STMS coverage".into(),
        "STMS fully covered".into(),
        "ideal speedup".into(),
        "STMS speedup".into(),
    ])
    .with_title("Figure 9: idealized TMS vs practical STMS (off-chip meta-data, 12.5% sampling)");
    let mut ratios = Vec::new();
    for spec in &specs {
        let kinds = [
            PrefetcherKind::Baseline,
            PrefetcherKind::ideal(),
            PrefetcherKind::stms_with_sampling(0.125),
        ];
        let results = run_matched(cfg, spec, &kinds);
        let (base, ideal, stms) = (&results[0], &results[1], &results[2]);
        if ideal.coverage() > 0.0 {
            ratios.push((stms.coverage() / ideal.coverage()).min(2.0));
        }
        t.add_row(vec![
            spec.name.clone(),
            pct(ideal.coverage()),
            pct(stms.coverage()),
            pct(stms.full_coverage()),
            pct(ideal.speedup_over(base)),
            pct(stms.speedup_over(base)),
        ]);
    }
    let achieved = geometric_mean(&ratios);
    FigureResult {
        id: "fig9".into(),
        table: t,
        notes: format!(
            "STMS achieves a geometric-mean {:.0}% of idealized coverage (paper: ~90%)",
            achieved * 100.0
        ),
    }
}

/// Convenience: MLP plus baseline statistics for one workload (used in
/// examples and tests).
pub fn baseline_summary(cfg: &ExperimentConfig, spec: &WorkloadSpec) -> SimResult {
    run_workload(cfg, spec, &PrefetcherKind::Baseline)
}

/// Runs every reproduced table and figure.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<FigureResult> {
    vec![
        table1_system(cfg),
        table2_mlp(cfg),
        fig1_left_entries_sweep(cfg),
        fig1_right_published_overheads(),
        fig4_potential(cfg),
        fig5_history_sweep(cfg),
        fig5_index_sweep(cfg),
        fig6_left_stream_length_cdf(cfg),
        fig6_right_depth_loss(cfg),
        fig7_traffic_breakdown(cfg),
        fig8_sampling_sweep(cfg),
        fig9_final_comparison(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::quick().with_accesses(12_000)
    }

    #[test]
    fn table1_reports_configuration_without_simulation() {
        let fig = table1_system(&ExperimentConfig::scaled());
        assert_eq!(fig.id, "table1");
        assert!(fig.table.row_count() >= 6);
        assert!(fig.render().contains("cores"));
    }

    #[test]
    fn fig1_right_totals_are_about_three() {
        let fig = fig1_right_published_overheads();
        let csv = fig.table.to_csv();
        // Every design's total overhead is between 2 and 4 accesses per read.
        for line in csv.lines().skip(1) {
            let total: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!((2.0..=4.0).contains(&total), "total {total} out of range");
        }
    }

    #[test]
    fn fig4_quick_run_produces_all_rows() {
        let fig = fig4_potential(&tiny());
        assert_eq!(fig.table.row_count(), 8);
        assert!(fig.render().contains("Web Apache"));
    }

    #[test]
    fn table2_quick_run_reports_mlp_near_expected_band() {
        let fig = table2_mlp(&tiny());
        assert_eq!(fig.table.row_count(), 8);
        let csv = fig.table.to_csv();
        for line in csv.lines().skip(1) {
            let mlp: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!((0.9..=4.0).contains(&mlp), "MLP {mlp} should be plausible");
        }
    }
}
