//! One plan per table/figure of the paper's evaluation (§5).
//!
//! Every experiment is expressed as a declarative [`FigurePlan`]: the list
//! of simulation [`JobSpec`]s it needs (its cells of the `(workload ×
//! prefetcher × sweep-point)` grid) plus a render stage folding the job
//! outputs into a [`FigureResult`]. Plans from *different* figures share one
//! [`Campaign`]: the campaign generates each workload trace exactly once in
//! its trace store and interleaves all cells on one bounded job pool.
//!
//! Convenience wrappers with the original one-call-per-figure signatures
//! (`fig4_potential(cfg)` etc.) remain for tests, examples and benches; they
//! run a single plan on a transient campaign. The `stms-experiments` binary
//! and [`run_all`] batch every requested plan through one shared campaign.

use crate::campaign::{Campaign, FigurePlan, JobOutput, JobSpec};
use crate::runner::PrefetcherKind;
use crate::system::ExperimentConfig;
use stms_core::StmsConfig;
use stms_mem::SimResult;
use stms_prefetch::{FixedDepthConfig, MarkovConfig};
use stms_stats::{analyze_streams_multi, geometric_mean, pct, ratio, TextTable};
use stms_workloads::{presets, WorkloadSpec};

/// Ids of every reproduced experiment, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "fig1-left",
    "fig1-right",
    "fig4",
    "fig5-left",
    "fig5-right",
    "fig6-left",
    "fig6-right",
    "fig7",
    "fig8",
    "fig9",
    "ablation-index",
    "markov-sweep",
];

/// The rendered result of one reproduced table or figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig4"`.
    pub id: String,
    /// The rendered table.
    pub table: TextTable,
    /// Free-form notes about what to compare against the paper.
    pub notes: String,
    /// Raw per-replay metric records ([`sim_metrics_json`]), one per replay
    /// job of the figure in job order. Populated by the campaign when it
    /// renders a figure, emitted as the `"metrics"` array of
    /// [`FigureResult::to_json`] so plotting pipelines read numbers instead
    /// of re-parsing rendered table cells. Never part of the text render.
    pub metrics: Vec<serde_json::Value>,
}

impl FigureResult {
    /// Renders the figure as text (title, table, notes).
    pub fn render(&self) -> String {
        let mut out = self.table.render();
        if !self.notes.is_empty() {
            out.push_str("notes: ");
            out.push_str(&self.notes);
            out.push('\n');
        }
        out
    }

    /// Converts the figure to a JSON value for downstream tooling:
    /// `{"id", "title", "headers", "rows", "notes", "metrics"}`, where
    /// `"metrics"` carries the raw [`stms_mem::SimResult`] fields of every
    /// replay job (see [`sim_metrics_json`]) alongside the rendered cells.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let strings = |items: &[String]| {
            Value::Array(items.iter().map(|s| Value::from(s.as_str())).collect())
        };
        Value::Object(vec![
            ("id".to_string(), Value::from(self.id.as_str())),
            (
                "title".to_string(),
                match self.table.title() {
                    Some(title) => Value::from(title),
                    None => Value::Null,
                },
            ),
            ("headers".to_string(), strings(self.table.headers())),
            (
                "rows".to_string(),
                Value::Array(self.table.rows().iter().map(|row| strings(row)).collect()),
            ),
            ("notes".to_string(), Value::from(self.notes.as_str())),
            ("metrics".to_string(), Value::Array(self.metrics.clone())),
        ])
    }

    /// Rebuilds a figure from the JSON produced by [`FigureResult::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing/mistyped field, or of a
    /// row whose width disagrees with the headers.
    pub fn from_json(value: &serde_json::Value) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        };
        let strings = |v: &serde_json::Value, what: &str| -> Result<Vec<String>, String> {
            v.as_array()
                .ok_or_else(|| format!("{what} is not an array"))?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} contains a non-string"))
                })
                .collect()
        };
        let id = str_field("id")?;
        let notes = str_field("notes")?;
        let title = match value.get("title") {
            Some(serde_json::Value::Null) | None => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_string)
                    .ok_or("field `title` is not a string or null")?,
            ),
        };
        let headers = strings(
            value.get("headers").ok_or("missing field `headers`")?,
            "headers",
        )?;
        let rows: Vec<Vec<String>> = value
            .get("rows")
            .and_then(|v| v.as_array())
            .ok_or("missing or non-array field `rows`")?
            .iter()
            .map(|row| strings(row, "row"))
            .collect::<Result<_, _>>()?;
        for row in &rows {
            if row.len() != headers.len() {
                return Err(format!(
                    "row width {} disagrees with header width {}",
                    row.len(),
                    headers.len()
                ));
            }
        }
        let metrics = match value.get("metrics") {
            // Absent: a pre-metrics document; tolerated as empty.
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("field `metrics` is not an array")?
                .to_vec(),
        };
        Ok(FigureResult {
            id,
            table: TextTable::from_parts(headers, rows, title),
            notes,
            metrics,
        })
    }
}

/// The JSON item `--format json` emits for one figure outcome: the
/// [`FigureResult::to_json`] object on success, `{"id", "error"}` on
/// failure. The CLI sink and the serve daemon both build their documents
/// from this helper, which is what keeps a served JSON response
/// byte-identical to the one-shot CLI's stdout by construction.
pub fn figure_json_item(
    figure: &Result<FigureResult, crate::campaign::CampaignError>,
) -> serde_json::Value {
    match figure {
        Ok(result) => result.to_json(),
        Err(err) => serde_json::Value::Object(vec![
            (
                "id".to_string(),
                serde_json::Value::from(err.figure.as_str()),
            ),
            (
                "error".to_string(),
                serde_json::Value::from(err.to_string()),
            ),
        ]),
    }
}

/// Assembles the complete `--format json` document from per-figure items
/// (see [`figure_json_item`]): one pretty-printed JSON array, exactly the
/// bytes the CLI prints (minus the trailing newline `println!` appends).
pub fn figures_json_document(items: Vec<serde_json::Value>) -> String {
    serde_json::to_string_pretty(&serde_json::Value::Array(items))
}

/// The raw-metrics JSON record of one replay result: every counter of the
/// [`stms_mem::SimResult`] plus the derived ratios the figures plot, so a
/// plotting pipeline consuming `--format json` never has to re-parse
/// rendered strings like `"42.0%"`.
pub fn sim_metrics_json(result: &SimResult) -> serde_json::Value {
    use serde_json::Value;
    let fields: Vec<(&str, Value)> = vec![
        ("workload", Value::from(result.workload.as_str())),
        ("prefetcher", Value::from(result.prefetcher.as_str())),
        ("instructions", Value::from(result.instructions)),
        ("cycles", Value::from(result.cycles)),
        ("accesses", Value::from(result.accesses)),
        ("l1_hits", Value::from(result.l1_hits)),
        ("l2_hits", Value::from(result.l2_hits)),
        ("uncovered_misses", Value::from(result.uncovered_misses)),
        ("stream_lost_misses", Value::from(result.stream_lost_misses)),
        ("covered_full", Value::from(result.covered_full)),
        ("covered_partial", Value::from(result.covered_partial)),
        ("write_misses", Value::from(result.write_misses)),
        ("prefetches_issued", Value::from(result.prefetches_issued)),
        ("prefetches_used", Value::from(result.prefetches_used)),
        ("prefetches_unused", Value::from(result.prefetches_unused)),
        ("miss_epochs", Value::from(result.miss_epochs)),
        ("epoch_misses", Value::from(result.epoch_misses)),
        (
            "traffic_demand_fill",
            Value::from(result.traffic.demand_fill),
        ),
        ("traffic_writeback", Value::from(result.traffic.writeback)),
        (
            "traffic_stride_prefetch",
            Value::from(result.traffic.stride_prefetch),
        ),
        (
            "traffic_prefetch_data",
            Value::from(result.traffic.prefetch_data),
        ),
        (
            "traffic_meta_lookup",
            Value::from(result.traffic.meta_lookup),
        ),
        (
            "traffic_meta_update",
            Value::from(result.traffic.meta_update),
        ),
        (
            "traffic_meta_record",
            Value::from(result.traffic.meta_record),
        ),
        ("coverage", Value::from(result.coverage())),
        ("full_coverage", Value::from(result.full_coverage())),
        ("accuracy", Value::from(result.accuracy())),
        ("ipc", Value::from(result.ipc())),
        ("mlp", Value::from(result.mlp())),
        (
            "overhead_per_useful_byte",
            Value::from(result.overhead_per_useful_byte()),
        ),
    ];
    Value::Object(
        fields
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

fn workload_suite() -> Vec<WorkloadSpec> {
    presets::paper_figure_suite()
}

fn sims(outputs: Vec<JobOutput>) -> Vec<SimResult> {
    outputs.into_iter().map(JobOutput::into_sim).collect()
}

/// Runs one plan on a transient single-figure campaign (the convenience
/// path behind the original `figN(cfg)` signatures).
///
/// # Panics
///
/// Panics if a simulation job fails; batch callers that want per-figure
/// errors use [`Campaign::run_figures`] directly.
fn run_plan(cfg: &ExperimentConfig, plan: FigurePlan) -> FigureResult {
    Campaign::new(cfg.clone())
        .run_figures(vec![plan])
        .pop()
        .expect("one plan in, one figure out")
        .unwrap_or_else(|err| panic!("{err}"))
}

/// Plan for Table 1: the system model parameters (no simulation jobs).
pub fn plan_table1(_cfg: &ExperimentConfig) -> FigurePlan {
    FigurePlan::new("table1", Vec::new(), |cfg, _outputs| {
        let sys = &cfg.system;
        let mut t = TextTable::new(vec!["parameter".into(), "value".into()])
            .with_title("Table 1: system model (scaled reproduction values)");
        let rows: Vec<(String, String)> = vec![
            ("cores".into(), format!("{}", sys.cores)),
            (
                "L1 data cache".into(),
                format!(
                    "{} KB {}-way, {}-cycle",
                    sys.l1.capacity_bytes / 1024,
                    sys.l1.associativity,
                    sys.l1.hit_latency
                ),
            ),
            (
                "shared L2".into(),
                format!(
                    "{} KB {}-way, {}-cycle",
                    sys.l2.capacity_bytes / 1024,
                    sys.l2.associativity,
                    sys.l2.hit_latency
                ),
            ),
            (
                "main memory".into(),
                format!(
                    "{} cycles latency, {:.1} B/cycle peak",
                    sys.dram.latency_cycles, sys.dram.bytes_per_cycle
                ),
            ),
            (
                "ROB / MSHRs per core".into(),
                format!("{} / {}", sys.core.rob_size, sys.core.mshrs),
            ),
            (
                "stride prefetcher".into(),
                format!(
                    "{} streams, degree {}",
                    sys.stride.streams, sys.stride.degree
                ),
            ),
            ("trace length".into(), format!("{} accesses", cfg.accesses)),
        ];
        for (k, v) in rows {
            t.add_row(vec![k, v]);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "table1".into(),
            table: t,
            notes: "capacities are scaled ~16x below the paper's Table 1 to match the synthetic \
                    workload footprints (see DESIGN.md)"
                .into(),
        }
    })
}

/// Table 1 (convenience wrapper; see [`plan_table1`]).
pub fn table1_system(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_table1(cfg))
}

/// Plan for Table 2: memory-level parallelism of off-chip reads in the base
/// system.
pub fn plan_table2(_cfg: &ExperimentConfig) -> FigurePlan {
    let jobs = workload_suite()
        .into_iter()
        .map(|spec| JobSpec::replay(spec, PrefetcherKind::Baseline))
        .collect();
    FigurePlan::new("table2", jobs, |_cfg, outputs| {
        let mut t = TextTable::new(vec!["workload".into(), "MLP".into()])
            .with_title("Table 2: memory-level parallelism of off-chip reads (baseline)");
        for r in sims(outputs) {
            t.add_row(vec![r.workload.clone(), format!("{:.1}", r.mlp())]);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "table2".into(),
            table: t,
            notes: "paper reports 1.0 (moldyn) to 1.7 (em3d); commercial workloads 1.3-1.6".into(),
        }
    })
}

/// Table 2 (convenience wrapper; see [`plan_table2`]).
pub fn table2_mlp(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_table2(cfg))
}

/// Plan for Figure 1 (left): coverage as a function of correlation-table
/// entries for an idealized address-correlating prefetcher (commercial
/// workloads).
pub fn plan_fig1_left(_cfg: &ExperimentConfig) -> FigurePlan {
    const ENTRY_COUNTS: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];
    let specs = presets::commercial_suite();
    let per_point = specs.len();
    let mut jobs = Vec::new();
    for &entries in &ENTRY_COUNTS {
        for spec in &specs {
            jobs.push(JobSpec::replay(
                spec.clone(),
                PrefetcherKind::IdealTms {
                    index_entries: Some(entries),
                    history_entries: 1 << 22,
                },
            ));
        }
    }
    FigurePlan::new("fig1-left", jobs, move |_cfg, outputs| {
        let mut t = TextTable::new(vec![
            "index entries".into(),
            "avg coverage".into(),
            "paper-equivalent entries".into(),
        ])
        .with_title(
            "Figure 1 (left): coverage vs correlation-table entries (commercial workloads)",
        );
        for (results, &entries) in sims(outputs).chunks(per_point).zip(&ENTRY_COUNTS) {
            let coverages: Vec<f64> = results.iter().map(SimResult::coverage).collect();
            let avg = stms_stats::mean(&coverages);
            t.add_row(vec![
                format!("{entries}"),
                pct(avg),
                format!("{}", entries as u64 * crate::system::CAPACITY_SCALE),
            ]);
        }
        FigureResult { metrics: Vec::new(),
            id: "fig1-left".into(),
            table: t,
            notes: "coverage should keep rising until ~10^5-10^6 scaled entries (10^6-10^7 paper-equivalent)"
                .into(),
        }
    })
}

/// Figure 1 left (convenience wrapper; see [`plan_fig1_left`]).
pub fn fig1_left_entries_sweep(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig1_left(cfg))
}

/// Plan for Figure 1 (right): memory-traffic overheads of prior off-chip
/// meta-data designs, reconstructed (as the paper does) from their published
/// results. No simulation jobs.
pub fn plan_fig1_right(_cfg: &ExperimentConfig) -> FigurePlan {
    FigurePlan::new("fig1-right", Vec::new(), |_cfg, _outputs| {
        // Reconstruction constants, per design, from the published results the
        // paper cites: overhead accesses per baseline read access.
        // - EBCP: ~50% coverage at ~60% accuracy -> ~0.35 erroneous per read;
        //   one lookup per off-chip miss epoch (~0.7/read) and a 3-access update
        //   per lookup (~2.1/read).
        // - ULMT: lookup on every remaining miss (~0.5/read), 3-access update per
        //   lookup (~1.5/read), erroneous ~0.4/read.
        // - TSE: 3-access lookup on remaining misses (~1.5/read), ~1 access per
        //   update on misses and prefetched hits (~1.0/read), erroneous ~0.3/read.
        let designs: [(&str, f64, f64, f64); 3] = [
            ("EBCP", 0.35, 0.70, 2.10),
            ("ULMT", 0.40, 0.50, 1.50),
            ("TSE", 0.30, 1.50, 1.00),
        ];
        let mut t = TextTable::new(vec![
            "design".into(),
            "erroneous prefetches".into(),
            "meta-data lookup".into(),
            "meta-data update".into(),
            "total overhead / read".into(),
        ])
        .with_title("Figure 1 (right): overhead traffic of prior designs (reconstructed from published results)");
        for (name, err, lookup, update) in designs {
            t.add_row(vec![
                name.to_string(),
                ratio(err),
                ratio(lookup),
                ratio(update),
                ratio(err + lookup + update),
            ]);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig1-right".into(),
            table: t,
            notes: "all three prior designs incur roughly 3x the baseline read traffic".into(),
        }
    })
}

/// Figure 1 right (convenience wrapper; see [`plan_fig1_right`]).
pub fn fig1_right_published_overheads() -> FigureResult {
    run_plan(
        &ExperimentConfig::quick(),
        plan_fig1_right(&ExperimentConfig::quick()),
    )
}

/// Plan for Figure 4: coverage (left) and speedup (right) of idealized TMS
/// over the baseline, per workload (matched on one shared trace each).
pub fn plan_fig4(_cfg: &ExperimentConfig) -> FigurePlan {
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let mut jobs = Vec::new();
    for spec in specs {
        jobs.push(JobSpec::replay(spec.clone(), PrefetcherKind::Baseline));
        jobs.push(JobSpec::replay(spec, PrefetcherKind::ideal()));
    }
    FigurePlan::new("fig4", jobs, move |_cfg, outputs| {
        let mut t = TextTable::new(vec!["workload".into(), "coverage".into(), "speedup".into()])
            .with_title("Figure 4: idealized TMS prefetching potential");
        for (pair, name) in sims(outputs).chunks(2).zip(&names) {
            let (base, ideal) = (&pair[0], &pair[1]);
            t.add_row(vec![
                name.clone(),
                pct(ideal.coverage()),
                pct(ideal.speedup_over(base)),
            ]);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig4".into(),
            table: t,
            notes: "expected shape: Web/OLTP 40-60% coverage with 5-18% speedup, DSS <=20% \
                    coverage, scientific 80-99% coverage with up to ~80% speedup (em3d)"
                .into(),
        }
    })
}

/// Figure 4 (convenience wrapper; see [`plan_fig4`]).
pub fn fig4_potential(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig4(cfg))
}

/// Plan for Figure 5 (left): coverage as a function of (aggregate)
/// history-buffer size.
pub fn plan_fig5_history(_cfg: &ExperimentConfig) -> FigurePlan {
    // Entries per core; 4 bytes per entry, 4 cores -> aggregate bytes = 16x.
    const SIZES: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let per_point = specs.len();
    let mut jobs = Vec::new();
    for &entries in &SIZES {
        for spec in &specs {
            jobs.push(JobSpec::replay(
                spec.clone(),
                PrefetcherKind::IdealTms {
                    index_entries: None,
                    history_entries: entries,
                },
            ));
        }
    }
    FigurePlan::new("fig5-left", jobs, move |cfg, outputs| {
        let mut headers = vec![
            "history entries/core".into(),
            "aggregate (paper-equiv MB)".into(),
        ];
        headers.extend(names.iter().cloned());
        let mut t =
            TextTable::new(headers).with_title("Figure 5 (left): coverage vs history-buffer size");
        for (results, &entries) in sims(outputs).chunks(per_point).zip(&SIZES) {
            let aggregate_bytes = entries as u64 * 4 * cfg.system.cores as u64;
            let mut row = vec![
                format!("{entries}"),
                format!("{:.2}", cfg.paper_equivalent_mb(aggregate_bytes)),
            ];
            row.extend(results.iter().map(|r| pct(r.coverage())));
            t.add_row(row);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig5-left".into(),
            table: t,
            notes:
                "commercial coverage should rise smoothly with history size; scientific coverage \
                 is bimodal (near zero until the history holds a full iteration, then near full)"
                    .into(),
        }
    })
}

/// Figure 5 left (convenience wrapper; see [`plan_fig5_history`]).
pub fn fig5_history_sweep(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig5_history(cfg))
}

/// Plan for Figure 5 (right): coverage as a function of index-table size
/// (hash-based lookup, unbounded history).
pub fn plan_fig5_index(_cfg: &ExperimentConfig) -> FigurePlan {
    const BUCKET_COUNTS: [usize; 6] = [1 << 7, 1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17];
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let per_point = specs.len();
    let mut jobs = Vec::new();
    for &buckets in &BUCKET_COUNTS {
        let stms_cfg = StmsConfig::scaled_default()
            .with_sampling(1.0)
            .with_index_buckets(buckets)
            .with_history_entries(1 << 20);
        for spec in &specs {
            jobs.push(JobSpec::replay(
                spec.clone(),
                PrefetcherKind::Stms(stms_cfg),
            ));
        }
    }
    FigurePlan::new("fig5-right", jobs, move |cfg, outputs| {
        let mut headers = vec!["index buckets".into(), "index size (paper-equiv MB)".into()];
        headers.extend(names.iter().cloned());
        let mut t = TextTable::new(headers)
            .with_title("Figure 5 (right): coverage vs index-table size (hash-based lookup)");
        for (results, &buckets) in sims(outputs).chunks(per_point).zip(&BUCKET_COUNTS) {
            let mut row = vec![
                format!("{buckets}"),
                format!("{:.2}", cfg.paper_equivalent_mb(buckets as u64 * 64)),
            ];
            row.extend(results.iter().map(|r| pct(r.coverage())));
            t.add_row(row);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig5-right".into(),
            table: t,
            notes: "coverage should saturate once the index holds roughly one entry per distinct \
                    miss address (paper: ~16 MB)"
                .into(),
        }
    })
}

/// Figure 5 right (convenience wrapper; see [`plan_fig5_index`]).
pub fn fig5_index_sweep(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig5_index(cfg))
}

/// Plan for Figure 6 (left): cumulative fraction of streamed blocks by
/// temporal-stream length (commercial workloads).
pub fn plan_fig6_left(_cfg: &ExperimentConfig) -> FigurePlan {
    const SAMPLE_POINTS: [u64; 5] = [1, 10, 100, 1000, 10000];
    let specs = presets::commercial_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let jobs = specs.into_iter().map(JobSpec::collect_misses).collect();
    FigurePlan::new("fig6-left", jobs, move |_cfg, outputs| {
        let mut headers = vec!["workload".into()];
        headers.extend(SAMPLE_POINTS.iter().map(|p| format!("<= {p}")));
        let mut t = TextTable::new(headers).with_title(
            "Figure 6 (left): cumulative % of streamed blocks vs temporal-stream length",
        );
        for (output, name) in outputs.into_iter().zip(&names) {
            let seqs = output.into_miss_sequences();
            let analysis = analyze_streams_multi(&seqs);
            let cdf = analysis.blocks_by_length_cdf();
            let mut row = vec![name.clone()];
            for &p in &SAMPLE_POINTS {
                row.push(if cdf.is_empty() {
                    "n/a".into()
                } else {
                    pct(cdf.fraction_at_or_below(p))
                });
            }
            t.add_row(row);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig6-left".into(),
            table: t,
            notes: "a sizable fraction of streamed blocks comes from streams of <= 10 blocks, but \
                 long streams (100+) carry much of the weight"
                .into(),
        }
    })
}

/// Figure 6 left (convenience wrapper; see [`plan_fig6_left`]).
pub fn fig6_left_stream_length_cdf(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig6_left(cfg))
}

/// Plan for Figure 6 (right): coverage loss (relative to unbounded prefetch
/// depth) of a fixed-depth single-table prefetcher.
pub fn plan_fig6_right(cfg: &ExperimentConfig) -> FigurePlan {
    const DEPTHS: [usize; 5] = [1, 2, 4, 6, 12];
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let per_workload = 1 + DEPTHS.len();
    let cores = cfg.system.cores;
    let mut jobs = Vec::new();
    for spec in specs {
        jobs.push(JobSpec::replay(spec.clone(), PrefetcherKind::ideal()));
        for &d in &DEPTHS {
            jobs.push(JobSpec::replay(
                spec.clone(),
                PrefetcherKind::FixedDepth(FixedDepthConfig::on_chip_with_depth(cores, d)),
            ));
        }
    }
    FigurePlan::new("fig6-right", jobs, move |_cfg, outputs| {
        let mut headers = vec!["workload".into(), "unbounded coverage".into()];
        headers.extend(DEPTHS.iter().map(|d| format!("loss @depth {d}")));
        let mut t = TextTable::new(headers)
            .with_title("Figure 6 (right): coverage loss of restricted prefetch depth");
        for (results, name) in sims(outputs).chunks(per_workload).zip(&names) {
            let unbounded = results[0].coverage();
            let mut row = vec![name.clone(), pct(unbounded)];
            for r in &results[1..] {
                let loss = (unbounded - r.coverage()).max(0.0);
                row.push(pct(loss));
            }
            t.add_row(row);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig6-right".into(),
            table: t,
            notes: "small fixed depths (<= 6) should lose tens of percentage points of coverage \
                    on workloads with long streams"
                .into(),
        }
    })
}

/// Figure 6 right (convenience wrapper; see [`plan_fig6_right`]).
pub fn fig6_right_depth_loss(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig6_right(cfg))
}

/// Plan for Figure 7: overhead-traffic breakdown with and without
/// probabilistic update (100% vs 12.5% sampling).
pub fn plan_fig7(_cfg: &ExperimentConfig) -> FigurePlan {
    const PROBABILITIES: [f64; 2] = [1.0, 0.125];
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let mut jobs = Vec::new();
    for spec in specs {
        for &p in &PROBABILITIES {
            jobs.push(JobSpec::replay(
                spec.clone(),
                PrefetcherKind::stms_with_sampling(p),
            ));
        }
    }
    FigurePlan::new("fig7", jobs, move |_cfg, outputs| {
        let mut t = TextTable::new(vec![
            "workload".into(),
            "sampling".into(),
            "record".into(),
            "update".into(),
            "lookup".into(),
            "erroneous".into(),
            "total overhead/useful byte".into(),
        ])
        .with_title("Figure 7: overhead traffic breakdown (100% vs 12.5% index-update sampling)");
        let mut ratios = Vec::new();
        for (results, name) in sims(outputs).chunks(PROBABILITIES.len()).zip(&names) {
            for (&p, r) in PROBABILITIES.iter().zip(results) {
                let b = r.overhead_breakdown();
                t.add_row(vec![
                    name.clone(),
                    format!("{:.1}%", p * 100.0),
                    ratio(b.record),
                    ratio(b.update),
                    ratio(b.lookup),
                    ratio(b.erroneous),
                    ratio(b.total()),
                ]);
            }
            let full = results[0].traffic.meta_update.max(1) as f64;
            let sampled = results[1].traffic.meta_update.max(1) as f64;
            ratios.push(full / sampled);
        }
        let gmean = geometric_mean(&ratios);
        FigureResult {
            metrics: Vec::new(),
            id: "fig7".into(),
            table: t,
            notes: format!(
                "index-update traffic reduction at 12.5% sampling: geometric mean {gmean:.1}x \
                 (paper reports 3.4x overall meta-data traffic reduction)"
            ),
        }
    })
}

/// Figure 7 (convenience wrapper; see [`plan_fig7`]).
pub fn fig7_traffic_breakdown(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig7(cfg))
}

/// Plan for Figure 8: traffic overhead (left) and coverage (right) as a
/// function of the update sampling probability.
pub fn plan_fig8(_cfg: &ExperimentConfig) -> FigurePlan {
    const PROBABILITIES: [f64; 7] = [0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0];
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let mut jobs = Vec::new();
    for spec in specs {
        for &p in &PROBABILITIES {
            jobs.push(JobSpec::replay(
                spec.clone(),
                PrefetcherKind::stms_with_sampling(p),
            ));
        }
    }
    FigurePlan::new("fig8", jobs, move |_cfg, outputs| {
        let mut headers = vec!["workload".into()];
        for p in PROBABILITIES {
            headers.push(format!("traffic @{:.0}%", p * 100.0));
        }
        for p in PROBABILITIES {
            headers.push(format!("coverage @{:.0}%", p * 100.0));
        }
        let mut t = TextTable::new(headers)
            .with_title("Figure 8: sensitivity to the update sampling probability");
        for (results, name) in sims(outputs).chunks(PROBABILITIES.len()).zip(&names) {
            let mut row = vec![name.clone()];
            for r in results {
                row.push(ratio(r.overhead_per_useful_byte()));
            }
            for r in results {
                row.push(pct(r.coverage()));
            }
            t.add_row(row);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "fig8".into(),
            table: t,
            notes: "traffic falls roughly in proportion to the sampling probability while \
                    coverage degrades only slowly (logarithmically); 12.5% is the sweet spot"
                .into(),
        }
    })
}

/// Figure 8 (convenience wrapper; see [`plan_fig8`]).
pub fn fig8_sampling_sweep(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig8(cfg))
}

/// Plan for Figure 9: coverage and speedup of practical STMS (off-chip
/// meta-data, 12.5% sampling) versus idealized TMS.
pub fn plan_fig9(_cfg: &ExperimentConfig) -> FigurePlan {
    let specs = workload_suite();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let mut jobs = Vec::new();
    for spec in specs {
        jobs.push(JobSpec::replay(spec.clone(), PrefetcherKind::Baseline));
        jobs.push(JobSpec::replay(spec.clone(), PrefetcherKind::ideal()));
        jobs.push(JobSpec::replay(
            spec,
            PrefetcherKind::stms_with_sampling(0.125),
        ));
    }
    FigurePlan::new("fig9", jobs, move |_cfg, outputs| {
        let mut t = TextTable::new(vec![
            "workload".into(),
            "ideal coverage".into(),
            "STMS coverage".into(),
            "STMS fully covered".into(),
            "ideal speedup".into(),
            "STMS speedup".into(),
        ])
        .with_title(
            "Figure 9: idealized TMS vs practical STMS (off-chip meta-data, 12.5% sampling)",
        );
        let mut ratios = Vec::new();
        for (results, name) in sims(outputs).chunks(3).zip(&names) {
            let (base, ideal, stms) = (&results[0], &results[1], &results[2]);
            if ideal.coverage() > 0.0 {
                ratios.push((stms.coverage() / ideal.coverage()).min(2.0));
            }
            t.add_row(vec![
                name.clone(),
                pct(ideal.coverage()),
                pct(stms.coverage()),
                pct(stms.full_coverage()),
                pct(ideal.speedup_over(base)),
                pct(stms.speedup_over(base)),
            ]);
        }
        let achieved = geometric_mean(&ratios);
        FigureResult {
            metrics: Vec::new(),
            id: "fig9".into(),
            table: t,
            notes: format!(
                "STMS achieves a geometric-mean {:.0}% of idealized coverage (paper: ~90%)",
                achieved * 100.0
            ),
        }
    })
}

/// Figure 9 (convenience wrapper; see [`plan_fig9`]).
pub fn fig9_final_comparison(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_fig9(cfg))
}

/// Plan for the index-organization ablation (§4.3 / §5.4): the miss capture
/// runs as a pooled job against the shared trace store, the index replay in
/// the render stage.
pub fn plan_ablation_index(_cfg: &ExperimentConfig) -> FigurePlan {
    let spec = presets::oltp_db2();
    let name = spec.name.clone();
    FigurePlan::new(
        "ablation-index",
        vec![JobSpec::collect_misses(spec)],
        move |_cfg, outputs| {
            let seqs = outputs
                .into_iter()
                .next()
                .expect("one capture job planned")
                .into_miss_sequences();
            let ablation = crate::ablation::index_organization_ablation_from(&name, &seqs);
            FigureResult {
                metrics: Vec::new(),
                id: "ablation-index".into(),
                table: ablation.table(),
                notes: "the bucketized table resolves every lookup with one memory block; the \
                        alternatives either probe/chain across several blocks or spend more \
                        storage"
                    .into(),
            }
        },
    )
}

/// Plan for the Markov-table sweep (Figure-1-style, §2): coverage of the
/// pair-wise correlating Markov prefetcher as a function of correlation
/// table entries, at two successor widths (commercial workloads).
///
/// The Markov prefetcher is the simplest correlating baseline the paper
/// discusses; sweeping its table like Figure 1 sweeps the idealized index
/// shows the same story — coverage keeps growing past any practical on-chip
/// capacity — with the added twist that wider successor lists buy little
/// beyond doubling the storage.
pub fn plan_markov_sweep(_cfg: &ExperimentConfig) -> FigurePlan {
    const ENTRY_COUNTS: [usize; 5] = [1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16];
    const SUCCESSORS: [usize; 2] = [2, 4];
    let specs = presets::commercial_suite();
    let per_point = specs.len();
    let mut jobs = Vec::new();
    for &successors in &SUCCESSORS {
        for &entries in &ENTRY_COUNTS {
            let config = MarkovConfig {
                entries,
                successors,
                ..MarkovConfig::default()
            };
            for spec in &specs {
                jobs.push(JobSpec::replay(
                    spec.clone(),
                    PrefetcherKind::Markov(config),
                ));
            }
        }
    }
    FigurePlan::new("markov-sweep", jobs, move |_cfg, outputs| {
        let mut t = TextTable::new(vec![
            "table entries".into(),
            "paper-equivalent entries".into(),
            "avg coverage (2 succ)".into(),
            "avg coverage (4 succ)".into(),
        ])
        .with_title("Markov sweep: coverage vs correlation-table entries (commercial workloads)");
        let results = sims(outputs);
        let avg_at = |succ_index: usize, entry_index: usize| -> f64 {
            let base = (succ_index * ENTRY_COUNTS.len() + entry_index) * per_point;
            let coverages: Vec<f64> = results[base..base + per_point]
                .iter()
                .map(SimResult::coverage)
                .collect();
            stms_stats::mean(&coverages)
        };
        for (entry_index, &entries) in ENTRY_COUNTS.iter().enumerate() {
            t.add_row(vec![
                format!("{entries}"),
                format!("{}", entries as u64 * crate::system::CAPACITY_SCALE),
                pct(avg_at(0, entry_index)),
                pct(avg_at(1, entry_index)),
            ]);
        }
        FigureResult {
            metrics: Vec::new(),
            id: "markov-sweep".into(),
            table: t,
            notes: "coverage should keep rising with table size (as in Figure 1 left); doubling \
                    successors costs 2x storage for a much smaller coverage gain — the Markov \
                    shortcoming §2 discusses"
                .into(),
        }
    })
}

/// Markov sweep (convenience wrapper; see [`plan_markov_sweep`]).
pub fn markov_sweep(cfg: &ExperimentConfig) -> FigureResult {
    run_plan(cfg, plan_markov_sweep(cfg))
}

/// Convenience: MLP plus baseline statistics for one workload (used in
/// examples and tests).
pub fn baseline_summary(cfg: &ExperimentConfig, spec: &WorkloadSpec) -> SimResult {
    crate::runner::run_workload(cfg, spec, &PrefetcherKind::Baseline)
}

/// The plan for one experiment id (`None` for unknown ids); ids are listed
/// in [`ALL_IDS`].
pub fn plan_for_id(id: &str, cfg: &ExperimentConfig) -> Option<FigurePlan> {
    let plan = match id {
        "table1" => plan_table1(cfg),
        "table2" => plan_table2(cfg),
        "fig1-left" => plan_fig1_left(cfg),
        "fig1-right" => plan_fig1_right(cfg),
        "fig4" => plan_fig4(cfg),
        "fig5-left" => plan_fig5_history(cfg),
        "fig5-right" => plan_fig5_index(cfg),
        "fig6-left" => plan_fig6_left(cfg),
        "fig6-right" => plan_fig6_right(cfg),
        "fig7" => plan_fig7(cfg),
        "fig8" => plan_fig8(cfg),
        "fig9" => plan_fig9(cfg),
        "ablation-index" => plan_ablation_index(cfg),
        "markov-sweep" => plan_markov_sweep(cfg),
        _ => return None,
    };
    Some(plan)
}

/// Plans for every reproduced table and figure, in [`ALL_IDS`] order.
pub fn all_plans(cfg: &ExperimentConfig) -> Vec<FigurePlan> {
    ALL_IDS
        .iter()
        .map(|id| plan_for_id(id, cfg).expect("every listed id has a plan"))
        .collect()
}

/// Runs every reproduced table and figure through one shared campaign (each
/// workload trace is generated exactly once, all cells interleave on one
/// bounded pool).
///
/// # Panics
///
/// Panics if any simulation job fails; use
/// [`Campaign::run_figures`] with [`all_plans`] for per-figure errors.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<FigureResult> {
    Campaign::new(cfg.clone())
        .run_figures(all_plans(cfg))
        .into_iter()
        .map(|figure| figure.unwrap_or_else(|err| panic!("{err}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::quick().with_accesses(12_000)
    }

    #[test]
    fn table1_reports_configuration_without_simulation() {
        assert_eq!(plan_table1(&tiny()).job_count(), 0);
        let fig = table1_system(&ExperimentConfig::scaled());
        assert_eq!(fig.id, "table1");
        assert!(fig.table.row_count() >= 6);
        assert!(fig.render().contains("cores"));
    }

    #[test]
    fn fig1_right_totals_are_about_three() {
        let fig = fig1_right_published_overheads();
        let csv = fig.table.to_csv();
        // Every design's total overhead is between 2 and 4 accesses per read.
        for line in csv.lines().skip(1) {
            let total: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!((2.0..=4.0).contains(&total), "total {total} out of range");
        }
    }

    #[test]
    fn fig4_quick_run_produces_all_rows() {
        let fig = fig4_potential(&tiny());
        assert_eq!(fig.table.row_count(), 8);
        assert!(fig.render().contains("Web Apache"));
    }

    #[test]
    fn table2_quick_run_reports_mlp_near_expected_band() {
        let fig = table2_mlp(&tiny());
        assert_eq!(fig.table.row_count(), 8);
        let csv = fig.table.to_csv();
        for line in csv.lines().skip(1) {
            let mlp: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!((0.9..=4.0).contains(&mlp), "MLP {mlp} should be plausible");
        }
    }

    #[test]
    fn every_id_has_a_plan_with_the_matching_identity() {
        let cfg = tiny();
        for &id in ALL_IDS {
            let plan = plan_for_id(id, &cfg).expect("listed id");
            assert_eq!(plan.id(), id);
        }
        assert!(plan_for_id("fig99", &cfg).is_none());
        assert_eq!(all_plans(&cfg).len(), ALL_IDS.len());
        // The full grid is substantially larger than any one figure.
        let total_jobs: usize = all_plans(&cfg).iter().map(|p| p.job_count()).sum();
        assert!(total_jobs > 100, "full grid has {total_jobs} jobs");
    }

    #[test]
    fn figure_json_round_trips_through_serde_json() {
        let fig = table2_mlp(&tiny());
        let text = serde_json::to_string(&fig.to_json());
        let parsed = serde_json::from_str(&text).expect("emitted JSON is valid");
        let back = FigureResult::from_json(&parsed).expect("JSON carries every field");
        assert_eq!(back.id, fig.id);
        assert_eq!(back.notes, fig.notes);
        assert_eq!(back.table, fig.table);
        assert_eq!(back.render(), fig.render());
    }

    #[test]
    fn figure_from_json_rejects_malformed_documents() {
        assert!(FigureResult::from_json(&serde_json::Value::Null).is_err());
        let missing = serde_json::from_str(r#"{"id":"x"}"#).unwrap();
        assert!(FigureResult::from_json(&missing).is_err());
        let ragged = serde_json::from_str(
            r#"{"id":"x","title":null,"headers":["a","b"],"rows":[["1"]],"notes":""}"#,
        )
        .unwrap();
        let err = FigureResult::from_json(&ragged).unwrap_err();
        assert!(err.contains("width"), "{err}");
    }
}
