//! Distributed campaign sharding: deterministic job partitioning, sealed
//! shard manifests, and manifest merging.
//!
//! A cold `--figures all` campaign is embarrassingly parallel — the grid is
//! an ordered list of independent jobs and the render stage is pure — but
//! until this module it could only fan out across the threads of one
//! process. Sharding splits the *generate/replay* stage across processes
//! (or CI shards, or machines) the same way the paper splits its meta-data
//! lifecycle into independently schedulable stages:
//!
//! 1. **Partition.** Every job has a stable content fingerprint
//!    ([`super::job::job_fingerprint`]). Under the default *count* balance
//!    a [`ShardSpec`] `I/N` owns exactly the jobs whose
//!    `fingerprint % N == I - 1`; under *cost* balance
//!    ([`super::cost::partition`]) ownership comes from deterministic
//!    greedy bin-packing of predicted job costs. Either way the partition
//!    is a pure function of the distinct job set, so for any job list and
//!    any `N` the shards are disjoint, cover every job, and agree across
//!    processes and job-list orderings — no coordination, no shared state.
//!    The mode is sealed into every manifest and cross-checked at merge.
//! 2. **Execute & seal.** [`super::Campaign::run_shard`] runs only the owned
//!    slice and seals the finished outputs into a versioned
//!    [`stms_types::ShardManifest`] (`shard-I-of-N.stms`), each entry keyed
//!    by its job fingerprint.
//! 3. **Merge & render.** [`super::Campaign::merge_shards`] re-derives the
//!    full job list from the same figure selection, validates the manifest
//!    set ([`MergeError`]: stale configuration, disagreeing shard counts,
//!    duplicate shards or jobs, incomplete coverage), hydrates every
//!    output, and runs the unchanged pure render stage — producing stdout
//!    byte-identical to a single-process run.
//!
//! Because both the partition and the manifest entries key on the same
//! fingerprints as the persistent [`super::ResultStore`], shards can also
//! share one `--result-cache` directory; the manifest is the *hand-off*
//! artifact, the cache the *memo*.

use super::job::{job_fingerprint, DecodeJobOutputError, JobSpec};
use crate::system::ExperimentConfig;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use stms_types::{
    Fingerprint, Fingerprintable, ManifestError, ShardBalance, ShardJobTiming, ShardManifest,
};

/// One slice of an `N`-way partition: 1-based `index` out of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl ShardSpec {
    /// Creates a shard spec, validating `1 <= index <= count`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for out-of-range coordinates.
    pub fn new(index: u32, count: u32) -> Result<Self, String> {
        if count == 0 || index == 0 || index > count {
            return Err(format!(
                "shard index must satisfy 1 <= I <= N, got {index}/{count}"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI form `I/N`, e.g. `"2/4"`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for malformed or out-of-range input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("shard must be of the form I/N, got `{text}`"))?;
        let parse = |part: &str, what: &str| -> Result<u32, String> {
            part.trim()
                .parse()
                .map_err(|_| format!("shard {what} must be a number, got `{part}`"))
        };
        Self::new(parse(index, "index")?, parse(count, "count")?)
    }

    /// Whether this shard owns the job with the given stable fingerprint.
    ///
    /// Ownership is a pure function of `(fingerprint, count)`, so any two
    /// processes partitioning the same job list agree without coordinating,
    /// and reordering the job list cannot move a job between shards.
    pub fn owns(&self, fingerprint: Fingerprint) -> bool {
        fingerprint.raw() % u128::from(self.count) == u128::from(self.index - 1)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The stable fingerprint of every job of a flattened grid, in job order
/// (one entry per *planned* job, duplicates included). Computed once and
/// threaded through partitioning, manifest sealing, and merge hydration so
/// no stage re-derives it.
pub fn job_fingerprints(cfg: &ExperimentConfig, jobs: &[JobSpec]) -> Vec<Fingerprint> {
    jobs.iter().map(|job| job_fingerprint(cfg, job)).collect()
}

/// The distinct jobs of a flattened campaign grid, in first-occurrence
/// order, each with its stable fingerprint.
///
/// Figures share cells (the baseline replay of one workload appears in
/// several plans); partitioning and manifests operate on the *distinct* job
/// set so a shared cell is executed once and hydrated into every figure
/// that planned it.
pub fn distinct_jobs(cfg: &ExperimentConfig, jobs: &[JobSpec]) -> Vec<(Fingerprint, JobSpec)> {
    distinct_with(&job_fingerprints(cfg, jobs), jobs)
}

/// [`distinct_jobs`] over fingerprints the caller already computed
/// (`fingerprints[i]` must belong to `jobs[i]`).
pub fn distinct_with(
    fingerprints: &[Fingerprint],
    jobs: &[JobSpec],
) -> Vec<(Fingerprint, JobSpec)> {
    let mut seen = HashMap::new();
    let mut distinct = Vec::new();
    for (fingerprint, job) in fingerprints.iter().zip(jobs) {
        if seen.insert(*fingerprint, ()).is_none() {
            distinct.push((*fingerprint, job.clone()));
        }
    }
    distinct
}

/// Writes a sealed manifest into `dir` (created if needed) under its
/// conventional name (`shard-I-of-N.stms`), atomically (unique temp file,
/// then rename). Returns the final path and the sealed size in bytes.
///
/// # Errors
///
/// Returns the I/O error from creating the directory or publishing the
/// file. Unlike the cache tiers, manifest persistence is a *correctness*
/// dependency — a shard whose manifest cannot be written has produced
/// nothing — so failures surface instead of being swallowed.
pub fn write_manifest(dir: &Path, manifest: &ShardManifest) -> io::Result<(PathBuf, u64)> {
    fs::create_dir_all(dir)?;
    let sealed = manifest.seal();
    let path = dir.join(manifest.file_name());
    let tmp = dir.join(super::trace_store::unique_tmp_name(
        ShardManifest::seal_key(manifest.config, manifest.index, manifest.count),
    ));
    fs::write(&tmp, &sealed)
        .and_then(|()| fs::rename(&tmp, &path))
        .inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })?;
    Ok((path, sealed.len() as u64))
}

/// Lists the manifest files (`shard-*.stms`) of one shard directory, sorted
/// by file name for deterministic validation order.
///
/// # Errors
///
/// Returns [`MergeError::Io`] when the directory cannot be read.
pub fn list_manifests(dir: &Path) -> Result<Vec<PathBuf>, MergeError> {
    let entries = fs::read_dir(dir).map_err(|e| MergeError::Io {
        path: dir.to_path_buf(),
        error: e.to_string(),
    })?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| MergeError::Io {
            path: dir.to_path_buf(),
            error: e.to_string(),
        })?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("shard-") && name.ends_with(".stms") {
            paths.push(entry.path());
        }
    }
    paths.sort();
    Ok(paths)
}

/// Where one job's encoded output lives on disk: which manifest file, and
/// the payload's exact byte range inside it. The merge indexes these
/// instead of materializing payload bytes, so its resident set tracks the
/// live figure window no matter how large the manifests are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PayloadRef {
    /// Owning shard index (for duplicate-job diagnostics).
    shard: u32,
    /// Index into [`MergedShards::sources`].
    source: u32,
    /// Absolute byte offset of the payload within the sealed file.
    offset: u64,
    /// Payload length in bytes.
    len: u64,
}

/// A validated set of shard manifests, ready to hydrate job outputs.
#[derive(Debug)]
pub struct MergedShards {
    count: u32,
    balance: ShardBalance,
    // Manifest indices seen, sorted (a shard owning no jobs still seals an
    // empty manifest and counts as present).
    present: Vec<u32>,
    // The manifest files, in validation order; payload refs index into
    // this list.
    sources: Vec<PathBuf>,
    // Job fingerprint -> where its encoded output lives.
    outputs: HashMap<Fingerprint, PayloadRef>,
    // Every shard's per-job phase timings, concatenated in manifest order.
    timings: Vec<ShardJobTiming>,
}

impl MergedShards {
    /// Loads and cross-validates every manifest found in `dirs` against the
    /// merging campaign's configuration. Each manifest is *streamed*
    /// ([`ShardManifest::scan`]): validation touches every byte (framing,
    /// checksums, duplicates) but retains only `(fingerprint, offset, len)`
    /// per entry — payload bytes are read back on demand by
    /// [`MergedShards::take_payload`].
    ///
    /// The same directory may be listed more than once (duplicate *paths*
    /// are ignored); two different files claiming the same shard index are
    /// a [`MergeError::DuplicateShard`], and manifests partitioned under
    /// different balance modes are a [`MergeError::BalanceMismatch`].
    ///
    /// # Errors
    ///
    /// See [`MergeError`]. Coverage of a concrete job list is checked
    /// separately by [`MergedShards::check_coverage`], since manifests may
    /// legitimately carry more jobs than a narrower merge selection needs.
    pub fn load(cfg: &ExperimentConfig, dirs: &[PathBuf]) -> Result<Self, MergeError> {
        let expected_config = cfg.fingerprint();
        let mut paths = Vec::new();
        for dir in dirs {
            paths.extend(list_manifests(dir)?);
        }
        paths.sort();
        paths.dedup();
        if paths.is_empty() {
            return Err(MergeError::NoManifests {
                dirs: dirs.to_vec(),
            });
        }
        let mut count: Option<u32> = None;
        let mut balance: Option<ShardBalance> = None;
        let mut seen_shards: HashMap<u32, PathBuf> = HashMap::new();
        let mut sources: Vec<PathBuf> = Vec::new();
        let mut outputs: HashMap<Fingerprint, PayloadRef> = HashMap::new();
        let mut timings: Vec<ShardJobTiming> = Vec::new();
        for path in paths {
            let file = fs::File::open(&path).map_err(|e| MergeError::Io {
                path: path.clone(),
                error: e.to_string(),
            })?;
            let source = sources.len() as u32;
            // Entry keys are collected first (the scan hands out entries
            // before its own shard header is returned), then filed under
            // the validated shard index.
            let mut entries: Vec<(Fingerprint, u64, u64)> = Vec::new();
            let scan = ShardManifest::scan(io::BufReader::new(file), |entry| {
                entries.push((entry.fingerprint, entry.offset, entry.payload.len() as u64));
            })
            .map_err(|error| MergeError::Manifest {
                path: path.clone(),
                error,
            })?;
            if scan.config != expected_config {
                return Err(MergeError::StaleConfig {
                    path,
                    expected: expected_config,
                    found: scan.config,
                });
            }
            let expected_count = *count.get_or_insert(scan.count);
            if scan.count != expected_count {
                return Err(MergeError::CountMismatch {
                    path,
                    expected: expected_count,
                    found: scan.count,
                });
            }
            let expected_balance = *balance.get_or_insert(scan.balance);
            if scan.balance != expected_balance {
                return Err(MergeError::BalanceMismatch {
                    path,
                    expected: expected_balance,
                    found: scan.balance,
                });
            }
            if let Some(first) = seen_shards.insert(scan.index, path.clone()) {
                return Err(MergeError::DuplicateShard {
                    index: scan.index,
                    count: scan.count,
                    first,
                    second: path,
                });
            }
            timings.extend(scan.timings);
            for (fingerprint, offset, len) in entries {
                if let Some(existing) = outputs.get(&fingerprint) {
                    return Err(MergeError::DuplicateJob {
                        fingerprint,
                        shards: (existing.shard, scan.index),
                    });
                }
                outputs.insert(
                    fingerprint,
                    PayloadRef {
                        shard: scan.index,
                        source,
                        offset,
                        len,
                    },
                );
            }
            sources.push(path);
        }
        let mut present: Vec<u32> = seen_shards.into_keys().collect();
        present.sort_unstable();
        Ok(MergedShards {
            count: count.expect("at least one manifest"),
            balance: balance.expect("at least one manifest"),
            present,
            sources,
            outputs,
            timings,
        })
    }

    /// The shard count the manifests agree on.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The balance mode the manifests agree on.
    pub fn balance(&self) -> ShardBalance {
        self.balance
    }

    /// Number of distinct job outputs carried by the manifest set.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the manifest set carries no outputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The shard indices present in the set, sorted.
    pub fn present_shards(&self) -> &[u32] {
        &self.present
    }

    /// The per-job phase timings carried by the manifest set, in manifest
    /// order. A timing describes a job its shard actually *executed*, so
    /// deduplicated or memo-served jobs contribute no entry.
    pub fn timings(&self) -> &[ShardJobTiming] {
        &self.timings
    }

    /// Checks that every planned distinct job has an output in the set.
    ///
    /// # Errors
    ///
    /// [`MergeError::IncompleteCoverage`], naming an example missing job and
    /// every absent shard index.
    pub fn check_coverage(&self, distinct: &[(Fingerprint, JobSpec)]) -> Result<(), MergeError> {
        let missing: Vec<&(Fingerprint, JobSpec)> = distinct
            .iter()
            .filter(|(fingerprint, _)| !self.outputs.contains_key(fingerprint))
            .collect();
        if let Some((fingerprint, job)) = missing.first() {
            let present = self.present_shards();
            let missing_shards = (1..=self.count)
                .filter(|index| !present.contains(index))
                .collect();
            return Err(MergeError::IncompleteCoverage {
                missing_jobs: missing.len(),
                example: job.label(),
                example_fingerprint: *fingerprint,
                missing_shards,
            });
        }
        Ok(())
    }

    /// Removes and returns one job's encoded payload — the compaction hook:
    /// the streaming merge takes each payload when its first consuming
    /// figure decodes it (and drops the decode after the last consumer), so
    /// peak merge memory tracks the *live* figure window instead of the
    /// whole campaign grid.
    ///
    /// The payload bytes are read back from the manifest file here, on
    /// demand — [`MergedShards::load`] validated the file's framing and
    /// checksums but kept only the byte range. A file mutated between load
    /// and read-back surfaces as [`MergeError::Io`] or as a decode failure
    /// downstream; it cannot silently corrupt a figure, because every
    /// payload still passes [`super::JobOutput::decode`]'s own checks.
    pub fn take_payload(
        &mut self,
        fingerprint: Fingerprint,
    ) -> Option<Result<Vec<u8>, MergeError>> {
        let entry = self.outputs.remove(&fingerprint)?;
        let path = &self.sources[entry.source as usize];
        let read = || -> io::Result<Vec<u8>> {
            let mut file = fs::File::open(path)?;
            file.seek(SeekFrom::Start(entry.offset))?;
            let mut payload = vec![0u8; entry.len as usize];
            file.read_exact(&mut payload)?;
            Ok(payload)
        };
        Some(read().map_err(|e| MergeError::Io {
            path: path.clone(),
            error: e.to_string(),
        }))
    }
}

/// Why a set of shard manifests could not be merged.
///
/// Every variant names the file, shard, or job at fault, so a failed CI
/// merge is diagnosable from the log line alone.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// A shard directory or manifest file could not be read.
    Io {
        /// The unreadable path.
        path: PathBuf,
        /// The rendered I/O error.
        error: String,
    },
    /// A manifest file failed to unseal or decode.
    Manifest {
        /// The unusable file.
        path: PathBuf,
        /// Why it could not be opened.
        error: ManifestError,
    },
    /// No `shard-*.stms` file was found in any given directory.
    NoManifests {
        /// The directories that were searched.
        dirs: Vec<PathBuf>,
    },
    /// A manifest was produced under a different campaign configuration
    /// (system model, engine options, or trace length) than the merge's.
    StaleConfig {
        /// The stale file.
        path: PathBuf,
        /// The merging campaign's configuration fingerprint.
        expected: Fingerprint,
        /// The fingerprint the manifest was sealed under.
        found: Fingerprint,
    },
    /// Two manifests disagree about the total shard count.
    CountMismatch {
        /// The disagreeing file.
        path: PathBuf,
        /// Count claimed by the manifests seen so far.
        expected: u32,
        /// Count claimed by this file.
        found: u32,
    },
    /// Two manifests were partitioned under different balance modes —
    /// their ownership functions disagree, so their union cannot be a
    /// consistent partition.
    BalanceMismatch {
        /// The disagreeing file.
        path: PathBuf,
        /// Balance mode claimed by the manifests seen so far.
        expected: ShardBalance,
        /// Balance mode claimed by this file.
        found: ShardBalance,
    },
    /// Two manifest files claim the same shard index.
    DuplicateShard {
        /// The repeated index.
        index: u32,
        /// The agreed shard count.
        count: u32,
        /// The file seen first.
        first: PathBuf,
        /// The file seen second.
        second: PathBuf,
    },
    /// The same job fingerprint appears in two different shards — the
    /// manifests were not produced by one consistent partition.
    DuplicateJob {
        /// The repeated job fingerprint.
        fingerprint: Fingerprint,
        /// The two shard indices carrying it.
        shards: (u32, u32),
    },
    /// Some planned jobs have no output in the manifest set.
    IncompleteCoverage {
        /// How many planned jobs are missing.
        missing_jobs: usize,
        /// Label of one missing job.
        example: String,
        /// Fingerprint of that job.
        example_fingerprint: Fingerprint,
        /// Shard indices absent from the set (empty when every shard is
        /// present but outputs are still missing, e.g. a partial shard run).
        missing_shards: Vec<u32>,
    },
    /// A manifest entry's payload failed to decode as a job output.
    BadOutput {
        /// The entry's job fingerprint.
        fingerprint: Fingerprint,
        /// Why the payload could not be decoded.
        error: DecodeJobOutputError,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io { path, error } => {
                write!(f, "cannot read `{}`: {error}", path.display())
            }
            MergeError::Manifest { path, error } => {
                write!(f, "unusable shard manifest `{}`: {error}", path.display())
            }
            MergeError::NoManifests { dirs } => {
                write!(f, "no shard manifest (shard-*.stms) found in:")?;
                for dir in dirs {
                    write!(f, " `{}`", dir.display())?;
                }
                Ok(())
            }
            MergeError::StaleConfig {
                path,
                expected,
                found,
            } => write!(
                f,
                "stale shard manifest `{}`: sealed under config {found}, \
                 this campaign is config {expected}",
                path.display()
            ),
            MergeError::CountMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard manifest `{}` claims {found} total shards, \
                 other manifests claim {expected}",
                path.display()
            ),
            MergeError::BalanceMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard manifest `{}` was partitioned by {found}, \
                 other manifests by {expected}",
                path.display()
            ),
            MergeError::DuplicateShard {
                index,
                count,
                first,
                second,
            } => write!(
                f,
                "duplicate shard {index}/{count}: `{}` and `{}`",
                first.display(),
                second.display()
            ),
            MergeError::DuplicateJob {
                fingerprint,
                shards: (a, b),
            } => write!(
                f,
                "job fingerprint {fingerprint} appears in shard {a} and shard {b} \
                 (inconsistent partition)"
            ),
            MergeError::IncompleteCoverage {
                missing_jobs,
                example,
                example_fingerprint,
                missing_shards,
            } => {
                write!(
                    f,
                    "incomplete shard coverage: {missing_jobs} job(s) missing, \
                     e.g. `{example}` [fp {example_fingerprint}]"
                )?;
                if !missing_shards.is_empty() {
                    write!(f, "; absent shard(s):")?;
                    for index in missing_shards {
                        write!(f, " {index}")?;
                    }
                }
                Ok(())
            }
            MergeError::BadOutput { fingerprint, error } => write!(
                f,
                "manifest entry [fp {fingerprint}] does not decode: {error}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PrefetcherKind;
    use stms_workloads::presets;

    #[test]
    fn parse_accepts_valid_and_rejects_malformed_specs() {
        assert_eq!(
            ShardSpec::parse("2/4").unwrap(),
            ShardSpec { index: 2, count: 4 }
        );
        assert_eq!(ShardSpec::parse(" 1 / 1 ").unwrap().to_string(), "1/1");
        for bad in ["", "3", "0/2", "3/2", "a/2", "1/b", "1/0", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn every_fingerprint_is_owned_by_exactly_one_shard() {
        for count in [1u32, 2, 3, 7, 16] {
            for raw in [0u128, 1, 2, 99, u128::MAX, 0xdead_beef] {
                let fingerprint = Fingerprint::from_raw(raw);
                let owners: Vec<u32> = (1..=count)
                    .filter(|&index| ShardSpec { index, count }.owns(fingerprint))
                    .collect();
                assert_eq!(owners.len(), 1, "fp {raw} under N={count}: {owners:?}");
            }
        }
    }

    #[test]
    fn distinct_jobs_collapses_repeated_cells_in_first_occurrence_order() {
        let cfg = ExperimentConfig::quick();
        let baseline = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let ideal = JobSpec::replay(presets::web_apache(), PrefetcherKind::ideal());
        let jobs = vec![
            baseline.clone(),
            ideal.clone(),
            baseline.clone(), // fig9 re-plans the table2 baseline cell
            ideal.clone(),
        ];
        let distinct = distinct_jobs(&cfg, &jobs);
        assert_eq!(distinct.len(), 2);
        assert_eq!(distinct[0].0, job_fingerprint(&cfg, &baseline));
        assert_eq!(distinct[1].0, job_fingerprint(&cfg, &ideal));
    }

    #[test]
    fn merge_error_displays_name_the_culprit() {
        let err = MergeError::IncompleteCoverage {
            missing_jobs: 3,
            example: "Web Apache × baseline".into(),
            example_fingerprint: Fingerprint::from_raw(7),
            missing_shards: vec![2],
        };
        let text = err.to_string();
        assert!(text.contains("3 job(s) missing"), "{text}");
        assert!(text.contains("Web Apache × baseline"), "{text}");
        assert!(text.contains("absent shard(s): 2"), "{text}");

        let err = MergeError::DuplicateShard {
            index: 1,
            count: 2,
            first: PathBuf::from("a/shard-1-of-2.stms"),
            second: PathBuf::from("b/shard-1-of-2.stms"),
        };
        assert!(err.to_string().contains("duplicate shard 1/2"));

        let err = MergeError::StaleConfig {
            path: PathBuf::from("x.stms"),
            expected: Fingerprint::from_raw(1),
            found: Fingerprint::from_raw(2),
        };
        assert!(err.to_string().contains("stale"), "{err}");
    }
}
