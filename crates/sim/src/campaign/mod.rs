//! Campaign orchestration: cached trace generation, bounded scheduling, and
//! declarative figure plans.
//!
//! The paper's evaluation is a `(workload × prefetcher × sweep-point)` grid
//! rendered as 13 tables and figures. This module decomposes the run
//! lifecycle into reusable stages, mirroring how a production pipeline
//! shards a large scan:
//!
//! 1. **Generation** — the [`TraceStore`] generates each distinct workload
//!    trace exactly once per campaign and shares it as a
//!    [`stms_types::SharedTrace`];
//! 2. **Scheduling** — the [`JobPool`] replays figure cells on a bounded
//!    set of worker threads with panic-safe, per-job error reporting;
//! 3. **Aggregation** — each figure is a declarative [`FigurePlan`]: a list
//!    of [`JobSpec`]s plus a render stage that folds the job outputs into a
//!    [`FigureResult`]. [`Campaign::run_figures`] enqueues the jobs of
//!    *every* requested figure up front, so independent cells from
//!    different figures interleave on the same pool.
//!
//! On top of the per-campaign sharing, two *persistent* tiers (enabled with
//! [`Campaign::with_caches`]) extend the sharing across campaign processes,
//! mirroring how the paper's own meta-data earns its keep by living
//! off-chip and persisting across program runs:
//!
//! * the [`TraceStore`]'s disk tier persists generated traces keyed by a
//!   stable content fingerprint of the generating [`WorkloadSpec`], and
//! * the [`ResultStore`] memoizes every finished [`JobOutput`] keyed by the
//!   fingerprint of `(spec, trace length, task, system, engine options)`,
//!   so a warm re-run (say, after a render-stage tweak) replays nothing.
//!
//! Both tiers treat every unreadable, stale or corrupt file as a miss —
//! evict and regenerate — so a cache directory can never poison a result.
//!
//! # Example
//!
//! ```no_run
//! use stms_sim::campaign::Campaign;
//! use stms_sim::{experiments, ExperimentConfig};
//!
//! let campaign = Campaign::with_threads(ExperimentConfig::quick(), 2);
//! let plans = vec![
//!     experiments::plan_table2(campaign.cfg()),
//!     experiments::plan_fig4(campaign.cfg()),
//! ];
//! for figure in campaign.run_figures(plans) {
//!     println!("{}", figure.expect("no simulation failed").render());
//! }
//! // Both figures replayed the same eight cached traces:
//! assert_eq!(campaign.store().stats().generated, 8);
//! ```

pub mod cost;
mod job;
mod pool;
mod result_store;
pub mod shard;
mod trace_store;

pub use cost::{Calibration, JobCostModel, Partition};
pub use job::{job_fingerprint, DecodeJobOutputError, JobError, JobOutput, JobSpec, JobTask};
pub use pool::{BatchHandle, JobPanic, JobPool};
pub use result_store::{
    ResultStore, ResultStoreStats, DEFAULT_MEMO_BUDGET_BYTES, JOB_OUTPUT_CODEC_VERSION,
};
pub use shard::{MergeError, MergedShards, ShardSpec};
pub use trace_store::{DiskTierConfig, TraceStore, TraceStoreStats};

use crate::experiments::FigureResult;
use crate::runner::run_trace;
use crate::system::ExperimentConfig;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use stms_mem::CmpSimulator;
use stms_prefetch::MissTraceCollector;
use stms_types::{
    Fingerprint, Fingerprintable, InflightBudget, PipelineConfig, ShardBalance, ShardJobTiming,
    ShardManifest,
};
use stms_workloads::WorkloadSpec;

/// The render stage of a [`FigurePlan`]: folds the plan's job outputs
/// (delivered in job order) into the rendered figure.
pub type RenderFn = Box<dyn FnOnce(&ExperimentConfig, Vec<JobOutput>) -> FigureResult + Send>;

/// A figure expressed as data: its jobs plus a render stage.
///
/// The jobs say *what* to simulate; the render closure folds the outputs
/// (delivered in job order) into the figure's table. Plans are inert until a
/// [`Campaign`] runs them, which is what lets `run_figures` merge the job
/// lists of many figures into one interleaved batch.
pub struct FigurePlan {
    id: String,
    jobs: Vec<JobSpec>,
    render: RenderFn,
}

impl fmt::Debug for FigurePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FigurePlan")
            .field("id", &self.id)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl FigurePlan {
    /// Creates a plan. `render` receives one [`JobOutput`] per job, in the
    /// order the jobs appear in `jobs`.
    pub fn new(
        id: impl Into<String>,
        jobs: Vec<JobSpec>,
        render: impl FnOnce(&ExperimentConfig, Vec<JobOutput>) -> FigureResult + Send + 'static,
    ) -> Self {
        FigurePlan {
            id: id.into(),
            jobs,
            render: Box::new(render),
        }
    }

    /// The figure id, e.g. `"fig4"`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of simulation jobs the plan schedules.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The plan's jobs, in schedule order (what the shard partitioner and
    /// the manifest coverage check operate on).
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }
}

/// A figure (or shard slice) that could not be completed because jobs
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// Id of the affected figure, or a description of the failed slice for
    /// shard-mode errors (e.g. `"shard 2/4"`).
    pub figure: String,
    /// The shard the failing jobs ran in, when the campaign was sharded.
    /// Rendered in the `Display` output so a partial-shard failure in a CI
    /// log names the exact re-runnable slice.
    pub shard: Option<ShardSpec>,
    /// Every failed job, each carrying its stable job fingerprint when one
    /// could be derived.
    pub failures: Vec<JobError>,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "figure `{}`", self.figure)?;
        if let Some(shard) = self.shard {
            write!(f, " (shard {shard})")?;
        }
        write!(f, ": {} job(s) failed: ", self.failures.len())?;
        for (i, failure) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{failure}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CampaignError {}

/// Persistent-cache configuration of a [`Campaign`].
///
/// The default has no persistence: every campaign regenerates and replays
/// from scratch, exactly as before. Point `trace_dir`/`result_dir` at
/// directories (the same directory is fine — the tiers use disjoint file
/// prefixes) to share work across campaign processes.
#[derive(Debug, Clone, Default)]
pub struct CampaignCaches {
    /// Directory of the [`TraceStore`] disk tier (`--trace-cache`).
    pub trace_dir: Option<std::path::PathBuf>,
    /// Directory of the [`ResultStore`] (`--result-cache`).
    pub result_dir: Option<std::path::PathBuf>,
    /// Deep verification of decoded entries (`--cache-verify`): cross-check
    /// each loaded artifact against the spec/job that requested it and
    /// regenerate on mismatch, instead of trusting the sealed envelope.
    pub verify: bool,
    /// Byte budget of the trace tier; oldest entries are evicted after each
    /// write when set.
    pub trace_max_bytes: Option<u64>,
    /// Out-of-core replay (`--stream-traces`): jobs replay traces chunk by
    /// chunk through [`TraceStore::replay_streaming`] instead of holding a
    /// materialized [`stms_types::SharedTrace`], so peak memory is
    /// independent of trace length. Pair with `trace_dir` so the trace is
    /// generated once into a chunk-framed file and streamed by every job;
    /// without a disk tier each job streams its own generator. Rendered
    /// output is byte-identical either way.
    pub stream_traces: bool,
    /// Prefetch depth of the staged replay pipeline (`--replay-pipeline`):
    /// `0` replays serially on the job thread; `>= 2` overlaps chunk
    /// read/decode with simulation, keeping up to this many decoded chunks
    /// in flight per job. Implies `stream_traces`. (Depth `1` is rejected
    /// at the CLI; the library clamps it up to the double-buffered minimum,
    /// [`stms_types::MIN_PIPELINE_DEPTH`].)
    pub pipeline_depth: usize,
    /// Decode workers per pipelined replay (`--decode-threads`); `0` means
    /// one. Only meaningful with `pipeline_depth > 0`.
    pub decode_threads: usize,
    /// Payload codec for newly written trace files (`--trace-codec`). The
    /// default, [`stms_types::TraceCodec::V3`], writes columnar compressed
    /// chunks; [`stms_types::TraceCodec::V2`] keeps the fixed-width row
    /// layout. Reading is
    /// version-dispatched, so existing caches of either codec replay
    /// unchanged whatever this is set to.
    pub trace_codec: stms_types::TraceCodec,
    /// Memoize job outputs in memory even when `result_dir` is `None`
    /// (see [`ResultStore::in_memory`]). A long-lived server sets this so
    /// repeated requests for the same cell never replay, and so in-flight
    /// dedup has a tier to land completed outputs in; the one-shot CLI
    /// leaves it off — a single batch already shares via the flight table.
    /// Ignored when `result_dir` is set (the disk-backed store subsumes it).
    pub result_memory: bool,
}

impl CampaignCaches {
    /// Both tiers on one shared directory.
    pub fn in_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        let dir = dir.into();
        CampaignCaches {
            trace_dir: Some(dir.clone()),
            result_dir: Some(dir),
            ..Self::default()
        }
    }
}

/// Campaign-global cap on decoded bytes buffered by all concurrently
/// running replay pipelines. The budget is shared across the whole
/// [`JobPool`] — not per job — so raising the worker count or pipeline
/// depth cannot multiply peak replay memory past this bound.
pub const PIPELINE_BUDGET_BYTES: u64 = 64 << 20;

/// Combined cache counters of one campaign (see [`Campaign::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignCacheStats {
    /// Trace-tier counters.
    pub trace: TraceStoreStats,
    /// Result-tier counters, when a result cache is configured.
    pub result: Option<ResultStoreStats>,
}

/// Appends one line per configured cache tier (plus the streamed-replay and
/// pipeline counters when those modes are on) to a stderr `run summary:`
/// block. Shared by the `stms-experiments` and `stms-serve` binaries so
/// their accounting lines stay identical.
pub fn push_cache_reports(summary: &mut stms_stats::RunSummary, campaign: &Campaign) {
    use stms_stats::{CacheReport, PipelineReport, StreamReport};
    let stats = campaign.cache_stats();
    let trace = stats.trace;
    if campaign.store().is_streaming() {
        summary.push_stream(StreamReport {
            replays: trace.stream_replays,
            chunks: trace.stream_chunks,
            fallbacks: trace.stream_fallbacks,
            disk_bytes: trace.stream_disk_bytes,
            decoded_bytes: trace.stream_decoded_bytes,
        });
    }
    let pipeline = campaign.store().pipeline_config();
    if !pipeline.is_serial() {
        summary.push_pipeline(PipelineReport {
            depth: pipeline.depth as u64,
            decode_threads: pipeline.decode_threads as u64,
            chunks_prefetched: trace.pipeline_chunks,
            stalls_full: trace.pipeline_stalls_full,
            stalls_empty: trace.pipeline_stalls_empty,
            peak_bytes_in_flight: trace.pipeline_peak_bytes,
        });
    }
    if campaign.store().disk_dir().is_some() {
        summary.push(
            CacheReport::new(
                "trace cache",
                trace.hits + trace.disk_hits,
                trace.disk_misses,
            )
            .with_detail("generated", trace.generated)
            .with_detail("disk hits", trace.disk_hits)
            .with_detail("writes", trace.disk_writes)
            .with_detail("evictions", trace.disk_evictions)
            .with_detail("resident bytes", trace.disk_bytes),
        );
    }
    if let Some(result) = stats.result {
        summary.push(
            CacheReport::new("result cache", result.total_hits(), result.misses)
                .with_detail("replayed", result.misses)
                .with_detail("disk hits", result.disk_hits)
                .with_detail("stores", result.stores)
                .with_detail("corrupt", result.corrupt),
        );
    }
}

/// A cooperative cancellation flag for an in-flight job batch.
///
/// Cancellation is *admission-level*: a job that has not started yet
/// resolves to a `cancelled` [`JobError`] without touching the trace store
/// or the engine, releasing its pool worker immediately; a job already
/// simulating runs to completion (its output is still memoized and still
/// feeds any concurrent duplicate via the flight table). Cloning shares the
/// flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the token; every pending job sharing it is skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// In-flight dedup counters (see [`Campaign::flight_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Jobs this campaign actually executed (flight leaders). With a result
    /// memo configured this is exactly the number of *distinct* jobs that
    /// ever ran, however many concurrent requests asked for them.
    pub executed: u64,
    /// Jobs that joined a concurrent leader's execution and shared its
    /// output instead of replaying.
    pub shared: u64,
}

/// The singleflight table: one slot per job fingerprint currently
/// *executing* on a pool worker. Leadership is decided at execution time —
/// never at submit time — so a follower only ever waits on a job that
/// already holds a worker, which makes the wait deadlock-free under any
/// pool size and queue order.
#[derive(Debug, Default)]
struct FlightTable {
    slots: Mutex<HashMap<Fingerprint, Arc<FlightSlot>>>,
    executed: AtomicU64,
    shared: AtomicU64,
}

#[derive(Debug)]
enum FlightState {
    Pending,
    Done(Box<JobOutput>),
    /// The leader unwound (panicked) without an output; waiters retry.
    Abandoned,
}

#[derive(Debug)]
struct FlightSlot {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl FlightSlot {
    fn new() -> Self {
        FlightSlot {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the leader resolves the slot; `None` means abandoned.
    fn wait(&self) -> Option<JobOutput> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                FlightState::Done(output) => return Some(output.as_ref().clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = state;
        self.cv.notify_all();
    }
}

enum FlightRole {
    Leader(Arc<FlightSlot>),
    Follower(Arc<FlightSlot>),
}

impl FlightTable {
    /// Joins the flight for `key`: the first executing job becomes the
    /// leader, concurrent duplicates become followers of its slot.
    fn join(&self, key: Fingerprint) -> FlightRole {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        match slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                FlightRole::Follower(Arc::clone(entry.get()))
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                let slot = Arc::new(FlightSlot::new());
                entry.insert(Arc::clone(&slot));
                FlightRole::Leader(slot)
            }
        }
    }

    fn stats(&self) -> FlightStats {
        FlightStats {
            executed: self.executed.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
        }
    }
}

/// Clears a leader's slot on every exit path. Until [`FlightGuard::fill`]
/// runs, dropping the guard (including during a panic unwind on the worker)
/// marks the slot [`FlightState::Abandoned`] so followers wake up and
/// retry instead of hanging.
struct FlightGuard<'a> {
    flights: &'a FlightTable,
    key: Fingerprint,
    slot: Arc<FlightSlot>,
    filled: bool,
}

impl FlightGuard<'_> {
    fn fill(&mut self, output: JobOutput) {
        self.slot.resolve(FlightState::Done(Box::new(output)));
        self.filled = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.flights
            .slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.key);
        if !self.filled {
            self.slot.resolve(FlightState::Abandoned);
        }
    }
}

/// One experiment campaign: a configuration, a shared trace store, an
/// optional persistent result memo, an in-flight dedup table, and a bounded
/// job pool.
#[derive(Debug)]
pub struct Campaign {
    cfg: Arc<ExperimentConfig>,
    store: Arc<TraceStore>,
    results: Option<Arc<ResultStore>>,
    flights: Arc<FlightTable>,
    /// Per-job phase log of this campaign's *executed* jobs (flight
    /// leaders), drained into shard manifests by [`Campaign::run_shard`].
    timings: Arc<Mutex<Vec<ShardJobTiming>>>,
    /// Predictor behind LPT pool ordering and cost-balanced sharding;
    /// analytic by default, replaced by [`Campaign::set_cost_model`] when
    /// the CLI calibrates from prior manifests.
    cost_model: Mutex<JobCostModel>,
    /// When set, streaming figure runs submit jobs in plan order instead of
    /// longest-predicted-first — the toggle the LPT byte-identity test
    /// flips.
    plan_order: AtomicBool,
    /// What the last streaming figure run predicted, kept for
    /// [`Campaign::take_sched_report`]'s predicted-vs-actual comparison.
    sched: Mutex<Option<SchedLog>>,
    pool: JobPool,
}

/// Prediction record of one streaming figure submission.
#[derive(Debug)]
struct SchedLog {
    jobs: u64,
    predicted_total_ns: u128,
    order: &'static str,
    predicted_by_fp: HashMap<Fingerprint, u64>,
}

impl Campaign {
    /// A campaign with one worker per available hardware thread.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Self::with_threads(cfg, JobPool::default_threads())
    }

    /// A campaign with an explicit worker count.
    pub fn with_threads(cfg: ExperimentConfig, threads: usize) -> Self {
        Self::with_caches(cfg, threads, CampaignCaches::default())
            .expect("no cache directories to create")
    }

    /// A campaign with persistent caches (see [`CampaignCaches`]).
    ///
    /// ```
    /// use stms_sim::campaign::{Campaign, CampaignCaches};
    /// use stms_sim::{ExperimentConfig, PrefetcherKind};
    /// use stms_workloads::presets;
    ///
    /// let dir = std::env::temp_dir().join("stms-doc-campaign-with-caches");
    /// std::fs::remove_dir_all(&dir).ok(); // start cold
    /// let cfg = ExperimentConfig::quick().with_accesses(2_000);
    ///
    /// // Cold campaign: generates and replays, then persists.
    /// let cold = Campaign::with_caches(cfg.clone(), 2, CampaignCaches::in_dir(&dir)).unwrap();
    /// cold.run_matched(&presets::web_apache(), &[PrefetcherKind::Baseline]).unwrap();
    /// assert_eq!(cold.store().stats().generated, 1);
    ///
    /// // Warm campaign (a "new process"): replays nothing at all.
    /// let warm = Campaign::with_caches(cfg, 2, CampaignCaches::in_dir(&dir)).unwrap();
    /// warm.run_matched(&presets::web_apache(), &[PrefetcherKind::Baseline]).unwrap();
    /// assert_eq!(warm.store().stats().generated, 0);
    /// assert_eq!(warm.result_store().unwrap().stats().disk_hits, 1);
    /// std::fs::remove_dir_all(&dir).ok();
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the error from creating a cache directory.
    pub fn with_caches(
        cfg: ExperimentConfig,
        threads: usize,
        caches: CampaignCaches,
    ) -> std::io::Result<Self> {
        let mut store = match &caches.trace_dir {
            Some(dir) => {
                let mut tier = DiskTierConfig::new(dir).with_verify(caches.verify);
                tier.max_bytes = caches.trace_max_bytes;
                TraceStore::with_disk_tier(tier)?
            }
            None => TraceStore::new(),
        }
        .with_streaming(caches.stream_traces || caches.pipeline_depth > 0)
        .with_codec(caches.trace_codec);
        if caches.pipeline_depth > 0 {
            store = store
                .with_pipeline(
                    PipelineConfig::with_depth(caches.pipeline_depth)
                        .with_decode_threads(caches.decode_threads.max(1)),
                )
                // One budget for the whole pool: every job's pipeline draws
                // from the same cap.
                .with_pipeline_budget(Arc::new(InflightBudget::new(PIPELINE_BUDGET_BYTES)));
        }
        let results = match &caches.result_dir {
            Some(dir) => Some(Arc::new(ResultStore::open(dir)?.with_verify(caches.verify))),
            None if caches.result_memory => Some(Arc::new(ResultStore::in_memory())),
            None => None,
        };
        Ok(Campaign {
            cfg: Arc::new(cfg),
            store: Arc::new(store),
            results,
            flights: Arc::new(FlightTable::default()),
            timings: Arc::new(Mutex::new(Vec::new())),
            cost_model: Mutex::new(JobCostModel::analytic()),
            plan_order: AtomicBool::new(false),
            sched: Mutex::new(None),
            pool: JobPool::new(threads),
        })
    }

    /// Replaces the job cost model (e.g. with a calibrated one from
    /// `--calibrate-from`). The model steers LPT pool ordering and
    /// cost-balanced shard partitioning; it never affects results, only
    /// scheduling.
    pub fn set_cost_model(&self, model: JobCostModel) {
        *self
            .cost_model
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = model;
    }

    /// The current job cost model.
    pub fn cost_model(&self) -> JobCostModel {
        self.cost_model
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Submits streaming figure jobs in plan order instead of the default
    /// longest-predicted-first order. Emission order and content are
    /// identical either way; only pool tail latency differs.
    pub fn set_plan_order(&self, plan_order: bool) {
        self.plan_order.store(plan_order, Ordering::Relaxed);
    }

    /// The campaign configuration.
    pub fn cfg(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The shared trace store (inspect [`TraceStore::stats`] after a run to
    /// see the generation-sharing at work).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The persistent result memo, when one is configured.
    pub fn result_store(&self) -> Option<&ResultStore> {
        self.results.as_deref()
    }

    /// Combined cache counters (for run summaries).
    pub fn cache_stats(&self) -> CampaignCacheStats {
        CampaignCacheStats {
            trace: self.store.stats(),
            result: self.results.as_ref().map(|r| r.stats()),
        }
    }

    /// In-flight dedup counters: how many jobs this campaign executed as
    /// singleflight leaders and how many joined a concurrent execution
    /// instead. `executed` is the exactly-once proof a serving test asserts
    /// on: with a result memo configured it cannot exceed the number of
    /// distinct jobs ever requested.
    pub fn flight_stats(&self) -> FlightStats {
        self.flights.stats()
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs a batch of jobs on the pool, resolving traces through the shared
    /// store. Results come back in job order; a panicking simulation yields
    /// `Err(JobError)` in its slot (carrying the job's stable fingerprint).
    pub fn run_jobs(&self, jobs: Vec<JobSpec>) -> Vec<Result<JobOutput, JobError>> {
        let idents = self.job_idents(&jobs);
        self.run_jobs_with_idents(jobs, idents)
    }

    /// [`Campaign::run_jobs`] over labels/fingerprints the caller already
    /// derived (`idents[i]` must belong to `jobs[i]`); the shard path holds
    /// them from partitioning and must not recompute.
    fn run_jobs_with_idents(
        &self,
        jobs: Vec<JobSpec>,
        idents: Vec<(String, Fingerprint)>,
    ) -> Vec<Result<JobOutput, JobError>> {
        self.submit_jobs(jobs, None, None)
            .run_to_completion()
            .into_iter()
            .zip(&idents)
            .map(|(outcome, ident)| job_outcome(ident, outcome))
            .collect()
    }

    /// Labels and stable fingerprints of a job batch, in job order.
    fn job_idents(&self, jobs: &[JobSpec]) -> Vec<(String, Fingerprint)> {
        jobs.iter()
            .map(|job| (job.label(), job_fingerprint(&self.cfg, job)))
            .collect()
    }

    /// Enqueues a batch without waiting (the streaming primitive behind
    /// [`Campaign::run_figures`]). A task resolves to `None` only when
    /// `cancel` fired before it reached a worker.
    ///
    /// `figures[i]`, when given, labels `jobs[i]`'s phase timings with its
    /// figure id in the telemetry registry; the phase clock itself always
    /// runs — queue wait is measured from this enqueue to the moment a
    /// worker picks the task up, run time from pickup to output.
    fn submit_jobs(
        &self,
        jobs: Vec<JobSpec>,
        figures: Option<Vec<Arc<str>>>,
        cancel: Option<&CancelToken>,
    ) -> BatchHandle<Option<JobOutput>> {
        let mut figures = figures.map(Vec::into_iter);
        let tasks: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let cfg = Arc::clone(&self.cfg);
                let store = Arc::clone(&self.store);
                let results = self.results.clone();
                let flights = Arc::clone(&self.flights);
                let timings = Arc::clone(&self.timings);
                let figure = figures.as_mut().and_then(Iterator::next);
                let cancel = cancel.cloned();
                let enqueued = std::time::Instant::now();
                move || {
                    if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        return None;
                    }
                    let queue_ns = elapsed_ns(enqueued);
                    let started = std::time::Instant::now();
                    let (led, output) =
                        execute_job(&cfg, &store, results.as_deref(), &flights, job);
                    let run_ns = elapsed_ns(started);
                    note_job_phases(figure.as_deref(), queue_ns, run_ns);
                    if let Some(fingerprint) = led {
                        timings.lock().unwrap_or_else(PoisonError::into_inner).push(
                            ShardJobTiming {
                                fingerprint,
                                queue_ns,
                                run_ns,
                            },
                        );
                    }
                    Some(output)
                }
            })
            .collect();
        self.pool.submit_batch(tasks)
    }

    /// Drains the per-job phase log accumulated since the last call, sorted
    /// by fingerprint so a sealed manifest's bytes do not depend on worker
    /// scheduling order.
    fn take_timings(&self) -> Vec<ShardJobTiming> {
        let mut timings =
            std::mem::take(&mut *self.timings.lock().unwrap_or_else(PoisonError::into_inner));
        timings.sort_by_key(|timing| timing.fingerprint);
        timings
    }

    /// Drains the scheduling record of the last streaming figure run into a
    /// summary report: how much work the cost model predicted, in which
    /// order the pool received it, and — matched against the measured phase
    /// log — the model's actual error. Returns `None` when no streaming run
    /// happened since the last call. The calibration fields are left empty;
    /// the CLI fills them when `--calibrate-from` produced the model.
    pub fn take_sched_report(&self) -> Option<stms_stats::SchedReport> {
        let log = self
            .sched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()?;
        let timings = self.take_timings();
        let mut abs_err: u128 = 0;
        let mut observed: u128 = 0;
        let mut matched = 0u64;
        for timing in &timings {
            if let Some(&predicted) = log.predicted_by_fp.get(&timing.fingerprint) {
                abs_err += u128::from(predicted).abs_diff(u128::from(timing.run_ns));
                observed += u128::from(timing.run_ns);
                matched += 1;
            }
        }
        let actual_error_milli =
            (observed > 0).then(|| u64::try_from(abs_err * 1000 / observed).unwrap_or(u64::MAX));
        Some(stms_stats::SchedReport {
            jobs: log.jobs,
            predicted_total_ns: log.predicted_total_ns,
            order: Some(log.order.to_string()),
            calibration_samples: None,
            calibration_error_milli: None,
            actual_jobs: matched,
            actual_error_milli,
            balance: None,
            this_shard_ns: None,
            max_shard_ns: None,
            mean_shard_ns: None,
        })
    }

    /// Runs every workload of a suite with the same prefetcher
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns the first failed job's [`JobError`] (remaining jobs still run
    /// to completion; their results are discarded).
    pub fn run_suite(
        &self,
        specs: &[WorkloadSpec],
        kind: &crate::runner::PrefetcherKind,
    ) -> Result<Vec<stms_mem::SimResult>, JobError> {
        let jobs = specs
            .iter()
            .map(|spec| JobSpec::replay(spec.clone(), kind.clone()))
            .collect();
        collect_sims(self.run_jobs(jobs))
    }

    /// Runs several prefetcher configurations against the *same* shared
    /// trace of one workload (matched comparison).
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_suite`].
    pub fn run_matched(
        &self,
        spec: &WorkloadSpec,
        kinds: &[crate::runner::PrefetcherKind],
    ) -> Result<Vec<stms_mem::SimResult>, JobError> {
        let jobs = kinds
            .iter()
            .map(|kind| JobSpec::replay(spec.clone(), kind.clone()))
            .collect();
        collect_sims(self.run_jobs(jobs))
    }

    /// Captures the baseline off-chip read-miss sequence of each core for a
    /// workload.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_suite`].
    pub fn collect_miss_sequences(
        &self,
        spec: &WorkloadSpec,
    ) -> Result<Vec<Vec<stms_types::LineAddr>>, JobError> {
        let mut results = self.run_jobs(vec![JobSpec::collect_misses(spec.clone())]);
        results
            .pop()
            .expect("one job in, one result out")
            .map(JobOutput::into_miss_sequences)
    }

    /// Runs many figures as one interleaved batch.
    ///
    /// All jobs of all plans are enqueued up front, so the pool drains one
    /// flat grid — a slow cell of one figure never serializes the cells of
    /// another. Each figure then renders from its own slice of the outputs;
    /// figures whose jobs all succeeded render even when other figures
    /// failed.
    ///
    /// This is the collecting form of [`Campaign::run_figures_streaming`];
    /// results are identical, only the delivery timing differs.
    pub fn run_figures(&self, plans: Vec<FigurePlan>) -> Vec<Result<FigureResult, CampaignError>> {
        let mut figures = Vec::new();
        self.run_figures_streaming(plans, |figure| figures.push(figure));
        figures
    }

    /// Runs many figures as one interleaved batch, delivering each figure
    /// to `emit` — in plan order — *as soon as its own jobs complete*,
    /// while later figures' jobs are still running.
    ///
    /// Streaming changes time-to-first-table, never content or order: a
    /// driver that prints each emitted figure produces stdout byte-identical
    /// to collecting everything first.
    pub fn run_figures_streaming<F>(&self, plans: Vec<FigurePlan>, emit: F)
    where
        F: FnMut(Result<FigureResult, CampaignError>),
    {
        self.run_figures_streaming_inner(plans, None, emit);
    }

    /// [`Campaign::run_figures_streaming`] with a cancellation token: a
    /// server hands each request its own token and fires it when the client
    /// goes away. Jobs that have not reached a worker yet resolve to a
    /// `cancelled` [`JobError`] without simulating (their figures emit as
    /// [`CampaignError`]s), so the pool drains in moments; jobs already
    /// executing finish normally and their outputs still land in the memo
    /// and the flight table for everyone else. Emission order and content
    /// for *un*-cancelled figures are identical to the plain call.
    pub fn run_figures_streaming_cancellable<F>(
        &self,
        plans: Vec<FigurePlan>,
        cancel: &CancelToken,
        emit: F,
    ) where
        F: FnMut(Result<FigureResult, CampaignError>),
    {
        self.run_figures_streaming_inner(plans, Some(cancel), emit);
    }

    fn run_figures_streaming_inner<F>(
        &self,
        plans: Vec<FigurePlan>,
        cancel: Option<&CancelToken>,
        mut emit: F,
    ) where
        F: FnMut(Result<FigureResult, CampaignError>),
    {
        let (jobs, parts) = flatten_plans(plans);
        let mut figure_of = vec![0usize; jobs.len()];
        for (figure, part) in parts.iter().enumerate() {
            for job in part.range.clone() {
                figure_of[job] = figure;
            }
        }
        let mut outstanding: Vec<usize> = parts.iter().map(|p| p.range.len()).collect();
        // One shared label per figure, cloned into each of its job tasks.
        let mut labels: Vec<Arc<str>> = Vec::with_capacity(jobs.len());
        for part in &parts {
            let label: Arc<str> = Arc::from(part.id.as_str());
            labels.extend(part.range.clone().map(|_| Arc::clone(&label)));
        }
        let mut parts: Vec<Option<FigurePart>> = parts.into_iter().map(Some).collect();
        let idents = self.job_idents(&jobs);

        // Predict every job's cost and submit longest-first (LPT), so the
        // expensive cells reach workers before the cheap tail instead of
        // wherever plan order happened to put them. Everything downstream
        // stays indexed by *plan* position: the permutation is undone when
        // completions arrive, which is why rendered output is byte-identical
        // to plan-order submission.
        let model = self.cost_model();
        let costs: Vec<u64> = jobs
            .iter()
            .map(|job| model.predicted_ns(&self.cfg, job))
            .collect();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        let plan_order = self.plan_order.load(Ordering::Relaxed);
        if !plan_order {
            order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then_with(|| a.cmp(&b)));
        }
        // A run with no jobs scheduled nothing: don't create the (empty)
        // histogram or a 0-job log — job-free figures must keep stderr as
        // quiet as they always were.
        if !jobs.is_empty() {
            if stms_obs::is_enabled() {
                let predicted = stms_obs::histogram("sched.predicted_ns");
                for &cost in &costs {
                    predicted.record(cost);
                }
            }
            *self.sched.lock().unwrap_or_else(PoisonError::into_inner) = Some(SchedLog {
                jobs: jobs.len() as u64,
                predicted_total_ns: costs.iter().map(|&c| u128::from(c)).sum(),
                order: if plan_order { "plan" } else { "lpt" },
                predicted_by_fp: idents
                    .iter()
                    .zip(&costs)
                    .map(|((_, fingerprint), &cost)| (*fingerprint, cost))
                    .collect(),
            });
        }
        let mut slots: Vec<Option<JobSpec>> = jobs.into_iter().map(Some).collect();
        let submitted: Vec<JobSpec> = order
            .iter()
            .map(|&i| slots[i].take().expect("each job submitted once"))
            .collect();
        let submitted_labels: Vec<Arc<str>> =
            order.iter().map(|&i| Arc::clone(&labels[i])).collect();

        let handle = self.submit_jobs(submitted, Some(submitted_labels), cancel);
        let mut outputs: Vec<Option<Result<JobOutput, JobError>>> =
            (0..idents.len()).map(|_| None).collect();

        // Emit every figure that is already complete (no-job figures at the
        // head render before any simulation finishes).
        let mut next = 0;
        let emit_ready = |next: &mut usize,
                          parts: &mut Vec<Option<FigurePart>>,
                          outputs: &mut Vec<Option<Result<JobOutput, JobError>>>,
                          outstanding: &[usize],
                          emit: &mut F| {
            while *next < parts.len() && outstanding[*next] == 0 {
                let part = parts[*next].take().expect("each figure emitted once");
                emit(finish_figure(&self.cfg, part, outputs));
                *next += 1;
            }
        };
        emit_ready(&mut next, &mut parts, &mut outputs, &outstanding, &mut emit);
        for (submitted, outcome) in handle {
            // Map the submission slot back to the job's plan position.
            let i = order[submitted];
            outputs[i] = Some(job_outcome(&idents[i], outcome));
            outstanding[figure_of[i]] -= 1;
            emit_ready(&mut next, &mut parts, &mut outputs, &outstanding, &mut emit);
        }
        debug_assert_eq!(next, parts.len(), "every figure emitted");
    }

    /// Runs only this shard's slice of the distinct job grid and returns
    /// the sealed-ready manifest plus any per-job failures (see the
    /// [`shard`] module docs for the partition contract).
    ///
    /// `balance` picks the partition function: [`ShardBalance::Count`] is
    /// the historical `fingerprint % count` split, [`ShardBalance::Cost`]
    /// bin-packs by predicted cost ([`cost::partition`]). Either way every
    /// shard of the fleet computes the identical full partition from the
    /// same grid and model, with no coordination; the mode is sealed into
    /// the manifest header and cross-checked at merge.
    ///
    /// Only the *generate/replay* stage runs — render closures of the plans
    /// are dropped; the merge stage re-derives them from the same figure
    /// selection.
    pub fn run_shard(
        &self,
        plans: Vec<FigurePlan>,
        spec: ShardSpec,
        balance: ShardBalance,
    ) -> ShardRun {
        // The manifest's timing section must describe exactly this shard's
        // executions, not phases left over from earlier batches.
        let _ = self.take_timings();
        let (jobs, _parts) = flatten_plans(plans);
        let distinct = shard::distinct_jobs(&self.cfg, &jobs);
        let jobs_total = distinct.len() as u64;
        let (owned, makespan) = self.owned_slice(distinct, spec, balance);
        // Labels + the fingerprints partitioning already derived — nothing
        // is hashed twice.
        let idents = owned
            .iter()
            .map(|(fingerprint, job)| (job.label(), *fingerprint))
            .collect();
        let results =
            self.run_jobs_with_idents(owned.iter().map(|(_, job)| job.clone()).collect(), idents);
        let mut entries = Vec::with_capacity(owned.len());
        let mut failures = Vec::new();
        for ((fingerprint, _), result) in owned.iter().zip(results) {
            match result {
                Ok(output) => entries.push((*fingerprint, output.encode())),
                Err(err) => failures.push(err),
            }
        }
        ShardRun {
            spec,
            jobs_total,
            jobs_owned: owned.len() as u64,
            jobs_rerun: owned.len() as u64,
            manifest: ShardManifest {
                config: self.cfg.fingerprint(),
                index: spec.index,
                count: spec.count,
                balance,
                entries,
                timings: self.take_timings(),
            },
            failures,
            makespan,
        }
    }

    /// Partitions the distinct grid and keeps this shard's slice, plus the
    /// fleet-wide predicted-cost picture for the `scheduling:` summary line
    /// (and the `sched.shard_cost_spread_milli` gauge).
    fn owned_slice(
        &self,
        distinct: Vec<(Fingerprint, JobSpec)>,
        spec: ShardSpec,
        balance: ShardBalance,
    ) -> (Vec<(Fingerprint, JobSpec)>, ShardMakespan) {
        let model = self.cost_model();
        let partition = cost::partition(&model, &self.cfg, &distinct, spec.count, balance);
        let this_shard_ns = partition.shard_cost_ns[(spec.index - 1) as usize];
        let max_shard_ns = partition.shard_cost_ns.iter().copied().max().unwrap_or(0);
        let total: u128 = partition.shard_cost_ns.iter().sum();
        let mean_shard_ns = total / u128::from(spec.count);
        if stms_obs::is_enabled() && mean_shard_ns > 0 {
            let spread = u64::try_from(max_shard_ns * 1000 / mean_shard_ns).unwrap_or(u64::MAX);
            stms_obs::gauge("sched.shard_cost_spread_milli").set(spread);
        }
        let owned = distinct
            .into_iter()
            .zip(&partition.owners)
            .filter(|(_, &owner)| owner == spec.index)
            .map(|(pair, _)| pair)
            .collect();
        (
            owned,
            ShardMakespan {
                balance,
                this_shard_ns,
                max_shard_ns,
                mean_shard_ns,
            },
        )
    }

    /// Retries a **partial** shard manifest: reruns only the owned jobs
    /// whose outputs are missing from it (the jobs that failed, or were
    /// never reached, in the original `--shard` run), and returns a
    /// [`ShardRun`] whose manifest carries the old entries plus the fresh
    /// ones — ready to seal in place of the partial file.
    ///
    /// The shard coordinates come from the manifest itself; `plans` must be
    /// built from the same figure selection the shard ran. Already-sealed
    /// outputs are never re-executed, so a retry of an `N`-job shard with
    /// one failure replays exactly one job. Retrying an already-complete
    /// manifest is a no-op that reruns nothing.
    ///
    /// # Errors
    ///
    /// [`MergeError::Io`] when the file cannot be read,
    /// [`MergeError::Manifest`] when it does not open as a sealed manifest,
    /// and [`MergeError::StaleConfig`] when it was sealed under a different
    /// campaign configuration.
    pub fn retry_shard(
        &self,
        plans: Vec<FigurePlan>,
        manifest_path: &std::path::Path,
    ) -> Result<ShardRun, MergeError> {
        let bytes = std::fs::read(manifest_path).map_err(|e| MergeError::Io {
            path: manifest_path.to_path_buf(),
            error: e.to_string(),
        })?;
        let manifest = ShardManifest::open(&bytes).map_err(|error| MergeError::Manifest {
            path: manifest_path.to_path_buf(),
            error,
        })?;
        let expected = self.cfg.fingerprint();
        if manifest.config != expected {
            return Err(MergeError::StaleConfig {
                path: manifest_path.to_path_buf(),
                expected,
                found: manifest.config,
            });
        }
        let spec = ShardSpec::new(manifest.index, manifest.count)
            .expect("ShardManifest::open validated the shard header");
        let _ = self.take_timings();
        let (jobs, _parts) = flatten_plans(plans);
        let distinct = shard::distinct_jobs(&self.cfg, &jobs);
        let jobs_total = distinct.len() as u64;
        let sealed: std::collections::HashSet<Fingerprint> =
            manifest.entries.iter().map(|(fp, _)| *fp).collect();
        // The manifest says how its fleet partitioned; ownership is
        // recomputed under the same mode. A cost-balanced manifest heals
        // correctly only when this campaign's cost model matches the
        // sealing run's — pass the same `--calibrate-from` (or none, for
        // the analytic default) the fleet used.
        let (owned, makespan) = self.owned_slice(distinct, spec, manifest.balance);
        let jobs_owned = owned.len() as u64;
        let missing: Vec<(Fingerprint, JobSpec)> = owned
            .into_iter()
            .filter(|(fingerprint, _)| !sealed.contains(fingerprint))
            .collect();
        let idents = missing
            .iter()
            .map(|(fingerprint, job)| (job.label(), *fingerprint))
            .collect();
        let results =
            self.run_jobs_with_idents(missing.iter().map(|(_, job)| job.clone()).collect(), idents);
        let mut entries = manifest.entries;
        let mut failures = Vec::new();
        for ((fingerprint, _), result) in missing.iter().zip(results) {
            match result {
                Ok(output) => entries.push((*fingerprint, output.encode())),
                Err(err) => failures.push(err),
            }
        }
        // The healed manifest keeps the original run's phase timings and
        // appends the retry's own (re-sorted for stable manifest bytes).
        let mut timings = manifest.timings;
        timings.extend(self.take_timings());
        timings.sort_by_key(|timing| timing.fingerprint);
        Ok(ShardRun {
            spec,
            jobs_total,
            jobs_owned,
            jobs_rerun: missing.len() as u64,
            manifest: ShardManifest {
                config: manifest.config,
                index: manifest.index,
                count: manifest.count,
                balance: manifest.balance,
                entries,
                timings,
            },
            failures,
            makespan,
        })
    }

    /// Merges sealed shard manifests and renders the figures without
    /// running a single simulation.
    ///
    /// Re-derives the job grid from `plans` (which must be built from the
    /// same figure selection and configuration the shards ran), validates
    /// the manifest set, hydrates every output, and runs the pure render
    /// stage — stdout from printing the returned figures is byte-identical
    /// to an unsharded run.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] naming the unusable file, stale
    /// configuration, duplicate shard/job, or missing coverage.
    pub fn merge_shards(
        &self,
        plans: Vec<FigurePlan>,
        dirs: &[std::path::PathBuf],
    ) -> Result<Vec<FigureResult>, MergeError> {
        let mut figures = Vec::new();
        self.merge_shards_streaming(plans, dirs, |figure| figures.push(figure))?;
        Ok(figures)
    }

    /// Merges sealed shard manifests and renders the figures *streaming*,
    /// with manifest compaction: each figure is delivered to `emit` (in
    /// plan order) as soon as it renders, and each job's encoded payload is
    /// dropped as soon as its **last consuming figure** has rendered — so
    /// the merge never holds the whole grid's outputs at once, only the
    /// live window, no matter how many figures the campaign spans.
    ///
    /// Re-derives the job grid from `plans` (which must be built from the
    /// same figure selection and configuration the shards ran) and
    /// validates the manifest set — including full coverage — *before*
    /// emitting anything. Stdout from printing the emitted figures is
    /// byte-identical to an unsharded run.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] naming the unusable file, stale
    /// configuration, duplicate shard/job, or missing coverage. A payload
    /// that fails to decode ([`MergeError::BadOutput`]) surfaces when its
    /// first consuming figure is reached; earlier figures have already
    /// been emitted at that point.
    pub fn merge_shards_streaming<F>(
        &self,
        plans: Vec<FigurePlan>,
        dirs: &[std::path::PathBuf],
        mut emit: F,
    ) -> Result<(), MergeError>
    where
        F: FnMut(FigureResult),
    {
        let mut merged = MergedShards::load(&self.cfg, dirs)?;
        note_merged_timings(merged.timings());
        let (jobs, parts) = flatten_plans(plans);
        // One fingerprint pass serves dedup, coverage and hydration alike.
        let fingerprints = shard::job_fingerprints(&self.cfg, &jobs);
        let distinct = shard::distinct_with(&fingerprints, &jobs);
        merged.check_coverage(&distinct)?;

        // Each figure's distinct fingerprints, plus per-job reference
        // counts across figures, so a payload can be dropped the moment
        // its last consuming figure has rendered.
        let per_figure: Vec<Vec<Fingerprint>> = parts
            .iter()
            .map(|part| {
                let mut firsts = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for job in part.range.clone() {
                    if seen.insert(fingerprints[job]) {
                        firsts.push(fingerprints[job]);
                    }
                }
                firsts
            })
            .collect();
        let mut remaining_uses: HashMap<Fingerprint, usize> = HashMap::new();
        for needed in &per_figure {
            for fingerprint in needed {
                *remaining_uses.entry(*fingerprint).or_default() += 1;
            }
        }

        // Decoded outputs live from their first consuming figure to their
        // last: shared cells decode once, not once per figure, and the
        // encoded payload is released as soon as its decode exists.
        let mut decoded: HashMap<Fingerprint, JobOutput> = HashMap::new();
        for (part, needed) in parts.into_iter().zip(per_figure) {
            for fingerprint in &needed {
                if decoded.contains_key(fingerprint) {
                    continue;
                }
                let payload = merged
                    .take_payload(*fingerprint)
                    .expect("coverage checked and each payload decoded once")?;
                let output =
                    JobOutput::decode(&payload).map_err(|error| MergeError::BadOutput {
                        fingerprint: *fingerprint,
                        error,
                    })?;
                decoded.insert(*fingerprint, output);
            }
            let outputs: Vec<JobOutput> = part
                .range
                .clone()
                .map(|job| decoded[&fingerprints[job]].clone())
                .collect();
            emit(render_figure(&self.cfg, part.render, outputs));
            // Compaction: drop every decoded output this figure was the
            // last consumer of.
            for fingerprint in needed {
                let uses = remaining_uses.get_mut(&fingerprint).expect("counted above");
                *uses -= 1;
                if *uses == 0 {
                    decoded.remove(&fingerprint);
                }
            }
        }
        Ok(())
    }
}

/// The outcome of one shard execution ([`Campaign::run_shard`]): the
/// manifest to seal, the failures to report, and the counters for the run
/// summary.
#[derive(Debug)]
pub struct ShardRun {
    /// Which slice ran.
    pub spec: ShardSpec,
    /// Distinct jobs in the whole campaign grid.
    pub jobs_total: u64,
    /// Distinct jobs this shard owns.
    pub jobs_owned: u64,
    /// Owned jobs actually executed by this run: all of them for
    /// [`Campaign::run_shard`], only the previously-missing ones for
    /// [`Campaign::retry_shard`].
    pub jobs_rerun: u64,
    /// The manifest carrying every *successful* owned job's output.
    pub manifest: ShardManifest,
    /// Owned jobs that failed; the manifest is still sealable (a partial
    /// shard), and the merge stage will report the gap as incomplete
    /// coverage.
    pub failures: Vec<JobError>,
    /// The fleet-wide predicted-cost picture of the partition this run
    /// belongs to.
    pub makespan: ShardMakespan,
}

/// Predicted per-shard cost of one fleet partition, as seen by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMakespan {
    /// How the fleet partitioned.
    pub balance: ShardBalance,
    /// Predicted cost of this shard's slice.
    pub this_shard_ns: u128,
    /// Predicted cost of the heaviest shard — the fleet's makespan
    /// estimate.
    pub max_shard_ns: u128,
    /// Mean predicted cost per shard (`max / mean` is the spread).
    pub mean_shard_ns: u128,
}

impl ShardRun {
    /// Whether every owned job succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Seals and writes the manifest into `dir`, returning the path and
    /// sealed size.
    ///
    /// # Errors
    ///
    /// See [`shard::write_manifest`].
    pub fn write_manifest(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<(std::path::PathBuf, u64)> {
        shard::write_manifest(dir, &self.manifest)
    }

    /// The `scheduling:` summary line data for this shard execution: the
    /// predicted per-shard cost picture of the partition it belongs to.
    pub fn sched_report(&self) -> stms_stats::SchedReport {
        stms_stats::SchedReport {
            jobs: self.jobs_owned,
            predicted_total_ns: self.makespan.this_shard_ns,
            order: None,
            calibration_samples: None,
            calibration_error_milli: None,
            actual_jobs: 0,
            actual_error_milli: None,
            balance: Some(self.makespan.balance.label().to_string()),
            this_shard_ns: Some(self.makespan.this_shard_ns),
            max_shard_ns: Some(self.makespan.max_shard_ns),
            mean_shard_ns: Some(self.makespan.mean_shard_ns),
        }
    }

    /// The run-summary line data for this shard execution.
    pub fn report(&self, manifest_bytes: u64) -> stms_stats::ShardReport {
        stms_stats::ShardReport {
            index: self.spec.index,
            count: self.spec.count,
            jobs_total: self.jobs_total,
            jobs_owned: self.jobs_owned,
            jobs_sealed: self.manifest.entries.len() as u64,
            jobs_failed: self.failures.len() as u64,
            manifest_bytes,
        }
    }

    /// The failures as one [`CampaignError`] carrying the shard context,
    /// or `None` when the shard completed.
    pub fn error(&self) -> Option<CampaignError> {
        if self.failures.is_empty() {
            return None;
        }
        Some(CampaignError {
            figure: format!("shard {}", self.spec),
            shard: Some(self.spec),
            failures: self.failures.clone(),
        })
    }
}

/// Converts one pool outcome into the campaign's per-job result, attaching
/// the job's label and stable fingerprint to a captured panic or an
/// admission-level cancellation (`Ok(None)`).
fn job_outcome(
    ident: &(String, Fingerprint),
    outcome: Result<Option<JobOutput>, JobPanic>,
) -> Result<JobOutput, JobError> {
    let (label, fingerprint) = ident;
    match outcome {
        Ok(Some(output)) => Ok(output),
        Ok(None) => Err(JobError {
            job: label.clone(),
            fingerprint: Some(*fingerprint),
            message: "cancelled before execution".to_string(),
        }),
        Err(panic) => Err(JobError {
            job: label.clone(),
            fingerprint: Some(*fingerprint),
            message: panic.message().to_string(),
        }),
    }
}

/// Nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_ns(started: std::time::Instant) -> u64 {
    started.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Feeds one job's phase split into the global metrics registry, both under
/// the campaign-wide `job.*` histograms and — when the job belongs to a
/// figure — under that figure's own `figure.{id}.*` series.
fn note_job_phases(figure: Option<&str>, queue_ns: u64, run_ns: u64) {
    if !stms_obs::is_enabled() {
        return;
    }
    stms_obs::histogram("job.queue_ns").record(queue_ns);
    stms_obs::histogram("job.run_ns").record(run_ns);
    stms_obs::histogram("job.total_ns").record(queue_ns.saturating_add(run_ns));
    if let Some(figure) = figure {
        stms_obs::histogram(&format!("figure.{figure}.queue_ns")).record(queue_ns);
        stms_obs::histogram(&format!("figure.{figure}.run_ns")).record(run_ns);
    }
}

/// Replays the phase timings recorded in merged shard manifests into the
/// registry, so `--merge-shards` surfaces fleet-wide queue/run distributions
/// under a `merge.*` prefix distinct from this process's own `job.*` series.
fn note_merged_timings(timings: &[ShardJobTiming]) {
    if timings.is_empty() || !stms_obs::is_enabled() {
        return;
    }
    let queue = stms_obs::histogram("merge.queue_ns");
    let run = stms_obs::histogram("merge.run_ns");
    for timing in timings {
        queue.record(timing.queue_ns);
        run.record(timing.run_ns);
    }
}

/// One figure's slice of the flattened grid: its id, its job range, and its
/// render stage.
struct FigurePart {
    id: String,
    range: Range<usize>,
    render: RenderFn,
}

/// Flattens many plans into one ordered job list plus per-figure slices.
fn flatten_plans(plans: Vec<FigurePlan>) -> (Vec<JobSpec>, Vec<FigurePart>) {
    let mut all_jobs = Vec::new();
    let mut parts = Vec::new();
    for plan in plans {
        let start = all_jobs.len();
        all_jobs.extend(plan.jobs);
        parts.push(FigurePart {
            id: plan.id,
            range: start..all_jobs.len(),
            render: plan.render,
        });
    }
    (all_jobs, parts)
}

/// Consumes one figure's outputs and renders it (attaching the raw metric
/// records for `--format json`), or folds its failures into a
/// [`CampaignError`].
fn finish_figure(
    cfg: &ExperimentConfig,
    part: FigurePart,
    outputs: &mut [Option<Result<JobOutput, JobError>>],
) -> Result<FigureResult, CampaignError> {
    let FigurePart { id, range, render } = part;
    let mut oks = Vec::with_capacity(range.len());
    let mut failures = Vec::new();
    for slot in &mut outputs[range] {
        match slot.take().expect("each output consumed once") {
            Ok(output) => oks.push(output),
            Err(err) => failures.push(err),
        }
    }
    if !failures.is_empty() {
        return Err(CampaignError {
            figure: id,
            shard: None,
            failures,
        });
    }
    Ok(render_figure(cfg, render, oks))
}

/// Runs one figure's pure render stage over its outputs, attaching the raw
/// metric records for `--format json`. Shared by the live path
/// ([`finish_figure`]) and the merge path, which is what keeps their output
/// byte-identical.
fn render_figure(cfg: &ExperimentConfig, render: RenderFn, oks: Vec<JobOutput>) -> FigureResult {
    let metrics = oks
        .iter()
        .filter_map(|output| match output {
            JobOutput::Sim(result) => Some(crate::experiments::sim_metrics_json(result)),
            JobOutput::MissSequences(_) => None,
        })
        .collect();
    let mut figure = render(cfg, oks);
    figure.metrics = metrics;
    figure
}

fn collect_sims(
    results: Vec<Result<JobOutput, JobError>>,
) -> Result<Vec<stms_mem::SimResult>, JobError> {
    results
        .into_iter()
        .map(|r| r.map(JobOutput::into_sim))
        .collect()
}

/// Runs one job on the calling worker with in-flight dedup: the first
/// worker to reach a given job fingerprint executes it (the *leader*);
/// any worker reaching the same fingerprint while the leader runs waits on
/// its slot and shares the output. Leadership is claimed here — at
/// execution time, never at submit time — so a follower's wait is always
/// bounded by a job that already holds a worker: no circular wait is
/// possible regardless of pool size or queue order.
///
/// Exactly-once across *non-overlapping* executions is the result memo's
/// job; the leader re-checks it after claiming the slot (double-checked
/// locking against the table mutex), closing the window where a completed
/// leader has removed its slot but a racer missed the memo before the put.
///
/// Returns the job's fingerprint alongside the output only when this
/// worker *led* the flight and ran the engine; memo hits and shared
/// flights return `None`, so the caller's timing log describes real
/// executions only.
fn execute_job(
    cfg: &ExperimentConfig,
    store: &TraceStore,
    results: Option<&ResultStore>,
    flights: &FlightTable,
    job: JobSpec,
) -> (Option<Fingerprint>, JobOutput) {
    // A memoized output short-circuits everything, including trace
    // resolution: a fully warm campaign touches no generator and no engine.
    let key = results.map(|memo| (memo, memo.job_key(cfg, &job)));
    if let Some((memo, key)) = &key {
        if let Some(output) = memo.get(*key, cfg, &job) {
            return (None, output);
        }
    }
    let fingerprint = match &key {
        Some((_, key)) => *key,
        None => job_fingerprint(cfg, &job),
    };
    loop {
        let slot = match flights.join(fingerprint) {
            FlightRole::Follower(slot) => {
                match slot.wait() {
                    Some(output) => {
                        flights.shared.fetch_add(1, Ordering::Relaxed);
                        stms_obs::counter("flight.shared").incr();
                        return (None, output);
                    }
                    // The leader unwound without an output; take another
                    // turn (this worker may now lead and fail the same way,
                    // which is exactly the per-job error the caller expects).
                    None => continue,
                }
            }
            FlightRole::Leader(slot) => slot,
        };
        let mut guard = FlightGuard {
            flights,
            key: fingerprint,
            slot,
            filled: false,
        };
        if let Some((memo, key)) = &key {
            if let Some(output) = memo.get(*key, cfg, &job) {
                guard.fill(output.clone());
                return (None, output);
            }
        }
        let output = run_job_uncached(cfg, store, &job);
        if let Some((memo, key)) = &key {
            memo.put(*key, &output);
        }
        flights.executed.fetch_add(1, Ordering::Relaxed);
        stms_obs::counter("flight.executed").incr();
        guard.fill(output.clone());
        return (Some(fingerprint), output);
    }
}

/// The actual generate/replay work of one job, no caching layers involved.
fn run_job_uncached(cfg: &ExperimentConfig, store: &TraceStore, job: &JobSpec) -> JobOutput {
    if store.is_streaming() {
        // Out-of-core path: the job drives a chunked TraceSource (a
        // disk-tier reader, or the generator itself) and never holds the
        // trace; output is bit-identical to the materialized path.
        match job.task {
            JobTask::Replay(ref kind) => {
                store.replay_streaming(&job.workload, cfg.accesses, |source| {
                    crate::runner::run_source(cfg, source, kind).map(JobOutput::Sim)
                })
            }
            JobTask::CollectMisses => {
                store.replay_streaming(&job.workload, cfg.accesses, |source| {
                    let mut collector = MissTraceCollector::new(cfg.system.cores);
                    CmpSimulator::new(&cfg.system, cfg.sim).run_stream(source, &mut collector)?;
                    Ok(JobOutput::MissSequences(collector.all_cores()))
                })
            }
        }
    } else {
        let trace = store.get_or_generate(&job.workload, cfg.accesses);
        match job.task {
            JobTask::Replay(ref kind) => JobOutput::Sim(run_trace(cfg, &trace, kind)),
            JobTask::CollectMisses => {
                let mut collector = MissTraceCollector::new(cfg.system.cores);
                let _ = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut collector);
                JobOutput::MissSequences(collector.all_cores())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PrefetcherKind;
    use stms_workloads::presets;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick().with_accesses(10_000)
    }

    #[test]
    fn run_matched_shares_one_trace_across_kinds() {
        let campaign = Campaign::with_threads(quick(), 2);
        let results = campaign
            .run_matched(
                &presets::web_apache(),
                &[PrefetcherKind::Baseline, PrefetcherKind::ideal()],
            )
            .expect("no job fails");
        assert_eq!(results.len(), 2);
        let stats = campaign.store().stats();
        assert_eq!(stats.generated, 1, "matched kinds replay one shared trace");
        assert_eq!(stats.hits + stats.misses, 2);
    }

    #[test]
    fn run_suite_preserves_workload_order() {
        let campaign = Campaign::with_threads(quick(), 2);
        let specs = vec![presets::web_apache(), presets::dss_qry17()];
        let results = campaign
            .run_suite(&specs, &PrefetcherKind::Baseline)
            .expect("no job fails");
        assert_eq!(results[0].workload, "Web Apache");
        assert_eq!(results[1].workload, "DSS DB2");
    }

    #[test]
    fn collect_miss_sequences_yields_one_per_core() {
        let campaign = Campaign::with_threads(quick(), 1);
        let seqs = campaign
            .collect_miss_sequences(&presets::oltp_db2())
            .expect("no job fails");
        assert_eq!(seqs.len(), campaign.cfg().system.cores);
        assert!(seqs.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn concurrent_duplicate_batches_execute_each_distinct_job_once() {
        // Four "clients" run the identical batch at the same time against
        // one campaign with a memory memo: the flight table plus the memo
        // must keep the execution count at exactly the distinct-job count.
        let caches = CampaignCaches {
            result_memory: true,
            ..CampaignCaches::default()
        };
        let campaign = Campaign::with_caches(quick(), 4, caches).expect("no dirs to create");
        let jobs = || {
            vec![
                JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline),
                JobSpec::replay(presets::oltp_db2(), PrefetcherKind::Baseline),
            ]
        };
        let clients = 4;
        let outputs: Vec<Vec<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| scope.spawn(|| campaign.run_jobs(jobs())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for results in &outputs {
            for result in results {
                assert!(result.is_ok());
            }
        }
        // Byte-identical outputs across clients.
        let reference: Vec<_> = outputs[0]
            .iter()
            .map(|r| r.as_ref().unwrap().encode())
            .collect();
        for other in &outputs[1..] {
            let encoded: Vec<_> = other.iter().map(|r| r.as_ref().unwrap().encode()).collect();
            assert_eq!(encoded, reference);
        }
        let flights = campaign.flight_stats();
        assert_eq!(flights.executed, 2, "each distinct job executes once");
        let results = campaign.cache_stats().result.expect("memory memo");
        assert_eq!(
            results.total_hits() + flights.shared + flights.executed,
            (clients * 2) as u64
        );
        assert_eq!(results.stores, 0, "memory-only memo writes no files");
        assert_eq!(campaign.store().stats().generated, 2);
    }

    #[test]
    fn cancelled_token_skips_pending_jobs_and_reports_them() {
        let campaign = Campaign::with_threads(quick(), 1);
        let cancel = CancelToken::new();
        cancel.cancel();
        let plans = vec![crate::experiments::plan_table2(campaign.cfg())];
        let mut results = Vec::new();
        campaign.run_figures_streaming_cancellable(plans, &cancel, |figure| {
            results.push(figure);
        });
        assert_eq!(results.len(), 1);
        let err = results.pop().unwrap().expect_err("all jobs were skipped");
        assert!(err
            .failures
            .iter()
            .all(|f| f.message == "cancelled before execution"));
        // Nothing was generated or replayed: the pool was reclaimed without
        // touching the trace store.
        assert_eq!(campaign.store().stats().generated, 0);
        assert_eq!(campaign.flight_stats(), FlightStats::default());
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let campaign = Campaign::with_threads(quick(), 2);
        let cancel = CancelToken::new();
        let mut cancellable = Vec::new();
        campaign.run_figures_streaming_cancellable(
            vec![crate::experiments::plan_table1(campaign.cfg())],
            &cancel,
            |figure| cancellable.push(figure.expect("no job fails").render()),
        );
        let plain: Vec<String> = campaign
            .run_figures(vec![crate::experiments::plan_table1(campaign.cfg())])
            .into_iter()
            .map(|figure| figure.expect("no job fails").render())
            .collect();
        assert_eq!(cancellable, plain);
    }

    #[test]
    fn abandoned_flight_wakes_followers() {
        // A leader that panics must not strand concurrent followers: they
        // retry, lead themselves, and surface their own per-job error.
        let flights = FlightTable::default();
        let key = Fingerprint::from_raw(42);
        let FlightRole::Leader(slot) = flights.join(key) else {
            panic!("first join must lead");
        };
        let follower = {
            let FlightRole::Follower(slot) = flights.join(key) else {
                panic!("second join must follow");
            };
            slot
        };
        let waiter = std::thread::spawn(move || follower.wait());
        // Simulate the leader unwinding: guard dropped without fill.
        drop(FlightGuard {
            flights: &flights,
            key,
            slot,
            filled: false,
        });
        assert!(waiter.join().unwrap().is_none(), "follower must wake empty");
        // The slot is gone; the next join leads again.
        assert!(matches!(flights.join(key), FlightRole::Leader(_)));
    }

    #[test]
    fn campaign_error_display_lists_failures_with_shard_and_fingerprints() {
        let err = CampaignError {
            figure: "fig4".into(),
            shard: None,
            failures: vec![
                JobError {
                    job: "a".into(),
                    fingerprint: None,
                    message: "x".into(),
                },
                JobError {
                    job: "b".into(),
                    fingerprint: Some(stms_types::Fingerprint::from_raw(0xbeef)),
                    message: "y".into(),
                },
            ],
        };
        let text = err.to_string();
        assert!(text.contains("fig4"));
        assert!(!text.contains("(shard"), "{text}");
        assert!(text.contains("2 job(s)"));
        assert!(text.contains("job `b` [fp"), "{text}");
        assert!(text.contains("failed: y"));

        let sharded = CampaignError {
            shard: Some(ShardSpec { index: 2, count: 4 }),
            ..err
        };
        assert!(sharded.to_string().contains("(shard 2/4)"));
    }

    #[test]
    fn streaming_figures_arrive_in_plan_order_with_identical_content() {
        let campaign = Campaign::with_threads(quick(), 2);
        let cfg = campaign.cfg().clone();
        let plans = |cfg: &ExperimentConfig| {
            vec![
                crate::experiments::plan_table1(cfg),
                crate::experiments::plan_table2(cfg),
                crate::experiments::plan_fig1_right(cfg),
            ]
        };
        let mut streamed = Vec::new();
        campaign.run_figures_streaming(plans(&cfg), |figure| {
            streamed.push(figure.expect("no job fails").render());
        });
        let collected: Vec<String> = campaign
            .run_figures(plans(&cfg))
            .into_iter()
            .map(|figure| figure.expect("no job fails").render())
            .collect();
        assert_eq!(streamed, collected);
        assert_eq!(streamed.len(), 3);
        assert!(streamed[0].contains("Table 1"));
        assert!(streamed[1].contains("Table 2"));
    }

    #[test]
    fn streaming_campaign_renders_byte_identical_figures() {
        let cfg = quick();
        // table2 covers replay jobs; fig6-left covers miss-collection jobs.
        let plans = |cfg: &ExperimentConfig| {
            vec![
                crate::experiments::plan_table2(cfg),
                crate::experiments::plan_fig6_left(cfg),
            ]
        };
        let materialized = Campaign::with_threads(cfg.clone(), 2);
        let direct: Vec<String> = materialized
            .run_figures(plans(&cfg))
            .into_iter()
            .map(|figure| figure.expect("no job fails").render())
            .collect();

        // Streaming without a cache: every job streams its own generator.
        let streaming = Campaign::with_caches(
            cfg.clone(),
            2,
            CampaignCaches {
                stream_traces: true,
                ..Default::default()
            },
        )
        .unwrap();
        let streamed: Vec<String> = streaming
            .run_figures(plans(&cfg))
            .into_iter()
            .map(|figure| figure.expect("no job fails").render())
            .collect();
        assert_eq!(streamed, direct);
        let stats = streaming.store().stats();
        assert!(stats.stream_replays > 0, "{stats:?}");
        assert!(stats.stream_chunks >= stats.stream_replays);
        assert_eq!(stats.hits, 0, "nothing was materialized");

        // Streaming over a shared trace cache: one generation, files
        // streamed by every job, still byte-identical.
        let dir =
            std::env::temp_dir().join(format!("stms-campaign-stream-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cached = Campaign::with_caches(
            cfg.clone(),
            2,
            CampaignCaches {
                trace_dir: Some(dir.clone()),
                stream_traces: true,
                ..Default::default()
            },
        )
        .unwrap();
        let from_disk: Vec<String> = cached
            .run_figures(plans(&cfg))
            .into_iter()
            .map(|figure| figure.expect("no job fails").render())
            .collect();
        assert_eq!(from_disk, direct);
        let stats = cached.store().stats();
        assert_eq!(
            stats.generated, 8,
            "each distinct workload generated exactly once"
        );
        assert!(stats.disk_hits > stats.generated, "jobs streamed the files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_shard_reruns_only_the_missing_jobs_and_completes_the_manifest() {
        let dir =
            std::env::temp_dir().join(format!("stms-campaign-retry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = quick();
        let plans = |cfg: &ExperimentConfig| vec![crate::experiments::plan_table2(cfg)];
        let campaign = Campaign::with_threads(cfg.clone(), 2);

        // Seal a complete shard, then amputate two entries to fake the
        // manifest a partially-failed `--shard` run leaves behind.
        let run = campaign.run_shard(
            plans(&cfg),
            ShardSpec::new(1, 1).unwrap(),
            ShardBalance::Count,
        );
        assert!(run.is_complete());
        let complete_entries = run.manifest.entries.len();
        assert_eq!(run.jobs_rerun, run.jobs_owned);
        let mut partial = run.manifest.clone();
        let removed: Vec<_> = partial.entries.drain(..2).collect();
        let (path, _) = shard::write_manifest(&dir, &partial).unwrap();

        // Retry executes exactly the two missing jobs…
        let retry = campaign.retry_shard(plans(&cfg), &path).unwrap();
        assert_eq!(retry.jobs_rerun, 2);
        assert!(retry.is_complete());
        assert_eq!(retry.manifest.entries.len(), complete_entries);
        retry.write_manifest(&dir).unwrap();

        // …and the rerun outputs are bit-identical to the originals, so the
        // sealed-in-place manifest merges byte-identically.
        let reopened = ShardManifest::open(&std::fs::read(&path).unwrap()).unwrap();
        for (fingerprint, payload) in &removed {
            let healed = reopened
                .entries
                .iter()
                .find(|(fp, _)| fp == fingerprint)
                .expect("missing job was rerun");
            assert_eq!(&healed.1, payload, "deterministic rerun");
        }
        let direct = campaign
            .run_figures(plans(&cfg))
            .pop()
            .unwrap()
            .expect("no job fails")
            .render();
        let merged = campaign
            .merge_shards(plans(&cfg), std::slice::from_ref(&dir))
            .expect("completed manifest merges")
            .pop()
            .unwrap()
            .render();
        assert_eq!(merged, direct);

        // Retrying a complete manifest is a no-op.
        let idle = campaign.retry_shard(plans(&cfg), &path).unwrap();
        assert_eq!(idle.jobs_rerun, 0);
        assert!(idle.is_complete());

        // A manifest sealed under a different configuration is refused.
        let other = Campaign::with_threads(cfg.clone().with_accesses(123), 1);
        match other.retry_shard(plans(&other.cfg().clone()), &path) {
            Err(MergeError::StaleConfig { .. }) => {}
            other => panic!("expected StaleConfig, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_runs_partition_the_grid_and_merge_rebuilds_figures() {
        let dir =
            std::env::temp_dir().join(format!("stms-campaign-shard-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = quick();
        let plans = |cfg: &ExperimentConfig| vec![crate::experiments::plan_table2(cfg)];

        // Run both shards of a 2-way partition.
        let campaign = Campaign::with_threads(cfg.clone(), 2);
        let mut owned_total = 0;
        for index in 1..=2 {
            let spec = ShardSpec::new(index, 2).unwrap();
            let run = campaign.run_shard(plans(&cfg), spec, ShardBalance::Count);
            assert!(run.is_complete(), "{:?}", run.failures);
            assert!(run.error().is_none());
            owned_total += run.jobs_owned;
            assert_eq!(run.jobs_total, 8, "table2 plans 8 distinct jobs");
            let (path, bytes) = run.write_manifest(&dir).expect("manifest written");
            assert!(path.is_file());
            assert!(bytes > 0);
            let report = run.report(bytes);
            assert!(report.is_complete());
        }
        assert_eq!(owned_total, 8, "shards cover the grid exactly once");

        // Merge renders identically to a direct run.
        let direct = campaign
            .run_figures(plans(&cfg))
            .pop()
            .unwrap()
            .expect("no job fails");
        let merged = campaign
            .merge_shards(plans(&cfg), std::slice::from_ref(&dir))
            .expect("valid manifest set")
            .pop()
            .unwrap();
        assert_eq!(merged.render(), direct.render());
        assert_eq!(
            serde_json::to_string(&merged.to_json()),
            serde_json::to_string(&direct.to_json())
        );

        // Removing one manifest is incomplete coverage, a typed error.
        std::fs::remove_file(dir.join("shard-2-of-2.stms")).unwrap();
        match campaign.merge_shards(plans(&cfg), std::slice::from_ref(&dir)) {
            Err(MergeError::IncompleteCoverage { missing_shards, .. }) => {
                assert_eq!(missing_shards, vec![2]);
            }
            other => panic!("expected IncompleteCoverage, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
