//! Campaign orchestration: cached trace generation, bounded scheduling, and
//! declarative figure plans.
//!
//! The paper's evaluation is a `(workload × prefetcher × sweep-point)` grid
//! rendered as 13 tables and figures. This module decomposes the run
//! lifecycle into reusable stages, mirroring how a production pipeline
//! shards a large scan:
//!
//! 1. **Generation** — the [`TraceStore`] generates each distinct workload
//!    trace exactly once per campaign and shares it as a
//!    [`stms_types::SharedTrace`];
//! 2. **Scheduling** — the [`JobPool`] replays figure cells on a bounded
//!    set of worker threads with panic-safe, per-job error reporting;
//! 3. **Aggregation** — each figure is a declarative [`FigurePlan`]: a list
//!    of [`JobSpec`]s plus a render stage that folds the job outputs into a
//!    [`FigureResult`]. [`Campaign::run_figures`] enqueues the jobs of
//!    *every* requested figure up front, so independent cells from
//!    different figures interleave on the same pool.
//!
//! On top of the per-campaign sharing, two *persistent* tiers (enabled with
//! [`Campaign::with_caches`]) extend the sharing across campaign processes,
//! mirroring how the paper's own meta-data earns its keep by living
//! off-chip and persisting across program runs:
//!
//! * the [`TraceStore`]'s disk tier persists generated traces keyed by a
//!   stable content fingerprint of the generating [`WorkloadSpec`], and
//! * the [`ResultStore`] memoizes every finished [`JobOutput`] keyed by the
//!   fingerprint of `(spec, trace length, task, system, engine options)`,
//!   so a warm re-run (say, after a render-stage tweak) replays nothing.
//!
//! Both tiers treat every unreadable, stale or corrupt file as a miss —
//! evict and regenerate — so a cache directory can never poison a result.
//!
//! # Example
//!
//! ```no_run
//! use stms_sim::campaign::Campaign;
//! use stms_sim::{experiments, ExperimentConfig};
//!
//! let campaign = Campaign::with_threads(ExperimentConfig::quick(), 2);
//! let plans = vec![
//!     experiments::plan_table2(campaign.cfg()),
//!     experiments::plan_fig4(campaign.cfg()),
//! ];
//! for figure in campaign.run_figures(plans) {
//!     println!("{}", figure.expect("no simulation failed").render());
//! }
//! // Both figures replayed the same eight cached traces:
//! assert_eq!(campaign.store().stats().generated, 8);
//! ```

mod job;
mod pool;
mod result_store;
mod trace_store;

pub use job::{DecodeJobOutputError, JobError, JobOutput, JobSpec, JobTask};
pub use pool::{JobPanic, JobPool};
pub use result_store::{ResultStore, ResultStoreStats, JOB_OUTPUT_CODEC_VERSION};
pub use trace_store::{DiskTierConfig, TraceStore, TraceStoreStats};

use crate::experiments::FigureResult;
use crate::runner::run_trace;
use crate::system::ExperimentConfig;
use std::fmt;
use std::sync::Arc;
use stms_mem::CmpSimulator;
use stms_prefetch::MissTraceCollector;
use stms_workloads::WorkloadSpec;

/// The render stage of a [`FigurePlan`]: folds the plan's job outputs
/// (delivered in job order) into the rendered figure.
pub type RenderFn = Box<dyn FnOnce(&ExperimentConfig, Vec<JobOutput>) -> FigureResult + Send>;

/// A figure expressed as data: its jobs plus a render stage.
///
/// The jobs say *what* to simulate; the render closure folds the outputs
/// (delivered in job order) into the figure's table. Plans are inert until a
/// [`Campaign`] runs them, which is what lets `run_figures` merge the job
/// lists of many figures into one interleaved batch.
pub struct FigurePlan {
    id: String,
    jobs: Vec<JobSpec>,
    render: RenderFn,
}

impl fmt::Debug for FigurePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FigurePlan")
            .field("id", &self.id)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl FigurePlan {
    /// Creates a plan. `render` receives one [`JobOutput`] per job, in the
    /// order the jobs appear in `jobs`.
    pub fn new(
        id: impl Into<String>,
        jobs: Vec<JobSpec>,
        render: impl FnOnce(&ExperimentConfig, Vec<JobOutput>) -> FigureResult + Send + 'static,
    ) -> Self {
        FigurePlan {
            id: id.into(),
            jobs,
            render: Box::new(render),
        }
    }

    /// The figure id, e.g. `"fig4"`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of simulation jobs the plan schedules.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }
}

/// A figure that could not be rendered because jobs failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// Id of the affected figure.
    pub figure: String,
    /// Every failed job of that figure.
    pub failures: Vec<JobError>,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "figure `{}`: {} job(s) failed: ",
            self.figure,
            self.failures.len()
        )?;
        for (i, failure) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{failure}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CampaignError {}

/// Persistent-cache configuration of a [`Campaign`].
///
/// The default has no persistence: every campaign regenerates and replays
/// from scratch, exactly as before. Point `trace_dir`/`result_dir` at
/// directories (the same directory is fine — the tiers use disjoint file
/// prefixes) to share work across campaign processes.
#[derive(Debug, Clone, Default)]
pub struct CampaignCaches {
    /// Directory of the [`TraceStore`] disk tier (`--trace-cache`).
    pub trace_dir: Option<std::path::PathBuf>,
    /// Directory of the [`ResultStore`] (`--result-cache`).
    pub result_dir: Option<std::path::PathBuf>,
    /// Deep verification of decoded entries (`--cache-verify`): cross-check
    /// each loaded artifact against the spec/job that requested it and
    /// regenerate on mismatch, instead of trusting the sealed envelope.
    pub verify: bool,
    /// Byte budget of the trace tier; oldest entries are evicted after each
    /// write when set.
    pub trace_max_bytes: Option<u64>,
}

impl CampaignCaches {
    /// Both tiers on one shared directory.
    pub fn in_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        let dir = dir.into();
        CampaignCaches {
            trace_dir: Some(dir.clone()),
            result_dir: Some(dir),
            ..Self::default()
        }
    }
}

/// Combined cache counters of one campaign (see [`Campaign::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignCacheStats {
    /// Trace-tier counters.
    pub trace: TraceStoreStats,
    /// Result-tier counters, when a result cache is configured.
    pub result: Option<ResultStoreStats>,
}

/// One experiment campaign: a configuration, a shared trace store, an
/// optional persistent result memo, and a bounded job pool.
#[derive(Debug)]
pub struct Campaign {
    cfg: Arc<ExperimentConfig>,
    store: Arc<TraceStore>,
    results: Option<Arc<ResultStore>>,
    pool: JobPool,
}

impl Campaign {
    /// A campaign with one worker per available hardware thread.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Self::with_threads(cfg, JobPool::default_threads())
    }

    /// A campaign with an explicit worker count.
    pub fn with_threads(cfg: ExperimentConfig, threads: usize) -> Self {
        Self::with_caches(cfg, threads, CampaignCaches::default())
            .expect("no cache directories to create")
    }

    /// A campaign with persistent caches (see [`CampaignCaches`]).
    ///
    /// ```
    /// use stms_sim::campaign::{Campaign, CampaignCaches};
    /// use stms_sim::{ExperimentConfig, PrefetcherKind};
    /// use stms_workloads::presets;
    ///
    /// let dir = std::env::temp_dir().join("stms-doc-campaign-with-caches");
    /// std::fs::remove_dir_all(&dir).ok(); // start cold
    /// let cfg = ExperimentConfig::quick().with_accesses(2_000);
    ///
    /// // Cold campaign: generates and replays, then persists.
    /// let cold = Campaign::with_caches(cfg.clone(), 2, CampaignCaches::in_dir(&dir)).unwrap();
    /// cold.run_matched(&presets::web_apache(), &[PrefetcherKind::Baseline]).unwrap();
    /// assert_eq!(cold.store().stats().generated, 1);
    ///
    /// // Warm campaign (a "new process"): replays nothing at all.
    /// let warm = Campaign::with_caches(cfg, 2, CampaignCaches::in_dir(&dir)).unwrap();
    /// warm.run_matched(&presets::web_apache(), &[PrefetcherKind::Baseline]).unwrap();
    /// assert_eq!(warm.store().stats().generated, 0);
    /// assert_eq!(warm.result_store().unwrap().stats().disk_hits, 1);
    /// std::fs::remove_dir_all(&dir).ok();
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the error from creating a cache directory.
    pub fn with_caches(
        cfg: ExperimentConfig,
        threads: usize,
        caches: CampaignCaches,
    ) -> std::io::Result<Self> {
        let store = match &caches.trace_dir {
            Some(dir) => {
                let mut tier = DiskTierConfig::new(dir).with_verify(caches.verify);
                tier.max_bytes = caches.trace_max_bytes;
                TraceStore::with_disk_tier(tier)?
            }
            None => TraceStore::new(),
        };
        let results = match &caches.result_dir {
            Some(dir) => Some(Arc::new(ResultStore::open(dir)?.with_verify(caches.verify))),
            None => None,
        };
        Ok(Campaign {
            cfg: Arc::new(cfg),
            store: Arc::new(store),
            results,
            pool: JobPool::new(threads),
        })
    }

    /// The campaign configuration.
    pub fn cfg(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The shared trace store (inspect [`TraceStore::stats`] after a run to
    /// see the generation-sharing at work).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The persistent result memo, when one is configured.
    pub fn result_store(&self) -> Option<&ResultStore> {
        self.results.as_deref()
    }

    /// Combined cache counters (for run summaries).
    pub fn cache_stats(&self) -> CampaignCacheStats {
        CampaignCacheStats {
            trace: self.store.stats(),
            result: self.results.as_ref().map(|r| r.stats()),
        }
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs a batch of jobs on the pool, resolving traces through the shared
    /// store. Results come back in job order; a panicking simulation yields
    /// `Err(JobError)` in its slot.
    pub fn run_jobs(&self, jobs: Vec<JobSpec>) -> Vec<Result<JobOutput, JobError>> {
        let labels: Vec<String> = jobs.iter().map(JobSpec::label).collect();
        let tasks: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let cfg = Arc::clone(&self.cfg);
                let store = Arc::clone(&self.store);
                let results = self.results.clone();
                move || execute_job(&cfg, &store, results.as_deref(), job)
            })
            .collect();
        self.pool
            .run_batch(tasks)
            .into_iter()
            .zip(labels)
            .map(|(outcome, job)| {
                outcome.map_err(|panic| JobError {
                    job,
                    message: panic.message().to_string(),
                })
            })
            .collect()
    }

    /// Runs every workload of a suite with the same prefetcher
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns the first failed job's [`JobError`] (remaining jobs still run
    /// to completion; their results are discarded).
    pub fn run_suite(
        &self,
        specs: &[WorkloadSpec],
        kind: &crate::runner::PrefetcherKind,
    ) -> Result<Vec<stms_mem::SimResult>, JobError> {
        let jobs = specs
            .iter()
            .map(|spec| JobSpec::replay(spec.clone(), kind.clone()))
            .collect();
        collect_sims(self.run_jobs(jobs))
    }

    /// Runs several prefetcher configurations against the *same* shared
    /// trace of one workload (matched comparison).
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_suite`].
    pub fn run_matched(
        &self,
        spec: &WorkloadSpec,
        kinds: &[crate::runner::PrefetcherKind],
    ) -> Result<Vec<stms_mem::SimResult>, JobError> {
        let jobs = kinds
            .iter()
            .map(|kind| JobSpec::replay(spec.clone(), kind.clone()))
            .collect();
        collect_sims(self.run_jobs(jobs))
    }

    /// Captures the baseline off-chip read-miss sequence of each core for a
    /// workload.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_suite`].
    pub fn collect_miss_sequences(
        &self,
        spec: &WorkloadSpec,
    ) -> Result<Vec<Vec<stms_types::LineAddr>>, JobError> {
        let mut results = self.run_jobs(vec![JobSpec::collect_misses(spec.clone())]);
        results
            .pop()
            .expect("one job in, one result out")
            .map(JobOutput::into_miss_sequences)
    }

    /// Runs many figures as one interleaved batch.
    ///
    /// All jobs of all plans are enqueued up front, so the pool drains one
    /// flat grid — a slow cell of one figure never serializes the cells of
    /// another. Each figure then renders from its own slice of the outputs;
    /// figures whose jobs all succeeded render even when other figures
    /// failed.
    pub fn run_figures(&self, plans: Vec<FigurePlan>) -> Vec<Result<FigureResult, CampaignError>> {
        let mut all_jobs = Vec::new();
        let mut parts = Vec::new();
        for plan in plans {
            let start = all_jobs.len();
            all_jobs.extend(plan.jobs);
            parts.push((plan.id, start..all_jobs.len(), plan.render));
        }
        let mut outputs: Vec<Option<Result<JobOutput, JobError>>> =
            self.run_jobs(all_jobs).into_iter().map(Some).collect();
        parts
            .into_iter()
            .map(|(id, range, render)| {
                let mut oks = Vec::with_capacity(range.len());
                let mut failures = Vec::new();
                for slot in &mut outputs[range] {
                    match slot.take().expect("each output consumed once") {
                        Ok(output) => oks.push(output),
                        Err(err) => failures.push(err),
                    }
                }
                if failures.is_empty() {
                    Ok(render(&self.cfg, oks))
                } else {
                    Err(CampaignError {
                        figure: id,
                        failures,
                    })
                }
            })
            .collect()
    }
}

fn collect_sims(
    results: Vec<Result<JobOutput, JobError>>,
) -> Result<Vec<stms_mem::SimResult>, JobError> {
    results
        .into_iter()
        .map(|r| r.map(JobOutput::into_sim))
        .collect()
}

fn execute_job(
    cfg: &ExperimentConfig,
    store: &TraceStore,
    results: Option<&ResultStore>,
    job: JobSpec,
) -> JobOutput {
    // A memoized output short-circuits everything, including trace
    // resolution: a fully warm campaign touches no generator and no engine.
    let key = results.map(|memo| (memo, memo.job_key(cfg, &job)));
    if let Some((memo, key)) = &key {
        if let Some(output) = memo.get(*key, cfg, &job) {
            return output;
        }
    }
    let trace = store.get_or_generate(&job.workload, cfg.accesses);
    let output = match job.task {
        JobTask::Replay(ref kind) => JobOutput::Sim(run_trace(cfg, &trace, kind)),
        JobTask::CollectMisses => {
            let mut collector = MissTraceCollector::new(cfg.system.cores);
            let _ = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut collector);
            JobOutput::MissSequences(collector.all_cores())
        }
    };
    if let Some((memo, key)) = key {
        memo.put(key, &output);
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PrefetcherKind;
    use stms_workloads::presets;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick().with_accesses(10_000)
    }

    #[test]
    fn run_matched_shares_one_trace_across_kinds() {
        let campaign = Campaign::with_threads(quick(), 2);
        let results = campaign
            .run_matched(
                &presets::web_apache(),
                &[PrefetcherKind::Baseline, PrefetcherKind::ideal()],
            )
            .expect("no job fails");
        assert_eq!(results.len(), 2);
        let stats = campaign.store().stats();
        assert_eq!(stats.generated, 1, "matched kinds replay one shared trace");
        assert_eq!(stats.hits + stats.misses, 2);
    }

    #[test]
    fn run_suite_preserves_workload_order() {
        let campaign = Campaign::with_threads(quick(), 2);
        let specs = vec![presets::web_apache(), presets::dss_qry17()];
        let results = campaign
            .run_suite(&specs, &PrefetcherKind::Baseline)
            .expect("no job fails");
        assert_eq!(results[0].workload, "Web Apache");
        assert_eq!(results[1].workload, "DSS DB2");
    }

    #[test]
    fn collect_miss_sequences_yields_one_per_core() {
        let campaign = Campaign::with_threads(quick(), 1);
        let seqs = campaign
            .collect_miss_sequences(&presets::oltp_db2())
            .expect("no job fails");
        assert_eq!(seqs.len(), campaign.cfg().system.cores);
        assert!(seqs.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn campaign_error_display_lists_failures() {
        let err = CampaignError {
            figure: "fig4".into(),
            failures: vec![
                JobError {
                    job: "a".into(),
                    message: "x".into(),
                },
                JobError {
                    job: "b".into(),
                    message: "y".into(),
                },
            ],
        };
        let text = err.to_string();
        assert!(text.contains("fig4"));
        assert!(text.contains("2 job(s)"));
        assert!(text.contains("job `b` failed: y"));
    }
}
