//! The declarative unit of campaign work.
//!
//! A [`JobSpec`] names one simulation the campaign must run — a workload
//! trace replayed under one prefetcher configuration, or a baseline
//! miss-sequence capture — without saying *when* or *where* it runs. The
//! campaign schedules jobs from every figure onto one [`super::JobPool`], so
//! cells of different figures interleave, and resolves each job's trace
//! through the shared [`super::TraceStore`].

use crate::runner::PrefetcherKind;
use std::fmt;
use stms_mem::SimResult;
use stms_types::LineAddr;

/// What one job computes.
#[derive(Debug, Clone)]
pub enum JobTask {
    /// Replay the workload's trace with this prefetcher configuration.
    Replay(PrefetcherKind),
    /// Capture the baseline off-chip read-miss sequence of each core
    /// (Figure 6 left's offline stream analysis).
    CollectMisses,
}

/// One schedulable unit: a workload crossed with a task.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The workload whose trace the job replays.
    pub workload: stms_workloads::WorkloadSpec,
    /// What to compute on that trace.
    pub task: JobTask,
}

impl JobSpec {
    /// A replay job.
    pub fn replay(workload: stms_workloads::WorkloadSpec, kind: PrefetcherKind) -> Self {
        JobSpec {
            workload,
            task: JobTask::Replay(kind),
        }
    }

    /// A miss-sequence capture job.
    pub fn collect_misses(workload: stms_workloads::WorkloadSpec) -> Self {
        JobSpec {
            workload,
            task: JobTask::CollectMisses,
        }
    }

    /// Human-readable identity used in error reports, e.g.
    /// `"Web Apache × stms(p=0.125)"`.
    pub fn label(&self) -> String {
        match &self.task {
            JobTask::Replay(kind) => format!("{} × {}", self.workload.name, kind.label()),
            JobTask::CollectMisses => format!("{} × miss-collection", self.workload.name),
        }
    }
}

/// The result of one finished job, mirroring [`JobTask`].
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobTask::Replay`].
    Sim(SimResult),
    /// Result of a [`JobTask::CollectMisses`]: one miss sequence per core.
    MissSequences(Vec<Vec<LineAddr>>),
}

impl JobOutput {
    /// Unwraps a replay result.
    ///
    /// # Panics
    ///
    /// Panics if the job was a miss collection; a figure's render stage only
    /// sees outputs of the jobs it planned, so a mismatch is a plan bug.
    pub fn into_sim(self) -> SimResult {
        match self {
            JobOutput::Sim(result) => result,
            JobOutput::MissSequences(_) => {
                panic!("plan bug: expected a replay output, got miss sequences")
            }
        }
    }

    /// Unwraps a miss-collection result.
    ///
    /// # Panics
    ///
    /// Panics if the job was a replay (see [`JobOutput::into_sim`]).
    pub fn into_miss_sequences(self) -> Vec<Vec<LineAddr>> {
        match self {
            JobOutput::MissSequences(seqs) => seqs,
            JobOutput::Sim(_) => {
                panic!("plan bug: expected miss sequences, got a replay output")
            }
        }
    }
}

/// A job that failed (its simulation panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// `JobSpec::label()` of the failed job.
    pub job: String,
    /// The captured panic message.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job `{}` failed: {}", self.job, self.message)
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    #[test]
    fn labels_identify_workload_and_task() {
        let replay = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        assert_eq!(replay.label(), "Web Apache × baseline");
        let collect = JobSpec::collect_misses(presets::sci_ocean());
        assert!(collect.label().contains("miss-collection"));
    }

    #[test]
    fn error_display_names_the_job() {
        let err = JobError {
            job: "w × k".into(),
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "job `w × k` failed: boom");
    }

    #[test]
    #[should_panic(expected = "plan bug")]
    fn mismatched_output_unwrap_panics() {
        JobOutput::MissSequences(Vec::new()).into_sim();
    }
}
