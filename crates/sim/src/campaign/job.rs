//! The declarative unit of campaign work.
//!
//! A [`JobSpec`] names one simulation the campaign must run — a workload
//! trace replayed under one prefetcher configuration, or a baseline
//! miss-sequence capture — without saying *when* or *where* it runs. The
//! campaign schedules jobs from every figure onto one [`super::JobPool`], so
//! cells of different figures interleave, and resolves each job's trace
//! through the shared [`super::TraceStore`].

use crate::runner::PrefetcherKind;
use crate::system::ExperimentConfig;
use std::fmt;
use stms_mem::SimResult;
use stms_types::{Fingerprint, Fingerprintable, Fingerprinter, LineAddr};

/// What one job computes.
#[derive(Debug, Clone)]
pub enum JobTask {
    /// Replay the workload's trace with this prefetcher configuration.
    Replay(PrefetcherKind),
    /// Capture the baseline off-chip read-miss sequence of each core
    /// (Figure 6 left's offline stream analysis).
    CollectMisses,
}

// Stable fingerprint so a task can contribute to a persistent result-cache
// key (replay tasks include the full prefetcher design point).
impl Fingerprintable for JobTask {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        match self {
            JobTask::Replay(kind) => {
                fp.write_u8(0);
                kind.fingerprint_into(fp);
            }
            JobTask::CollectMisses => fp.write_u8(1),
        }
    }
}

/// One schedulable unit: a workload crossed with a task.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The workload whose trace the job replays.
    pub workload: stms_workloads::WorkloadSpec,
    /// What to compute on that trace.
    pub task: JobTask,
}

impl JobSpec {
    /// A replay job.
    pub fn replay(workload: stms_workloads::WorkloadSpec, kind: PrefetcherKind) -> Self {
        JobSpec {
            workload,
            task: JobTask::Replay(kind),
        }
    }

    /// A miss-sequence capture job.
    pub fn collect_misses(workload: stms_workloads::WorkloadSpec) -> Self {
        JobSpec {
            workload,
            task: JobTask::CollectMisses,
        }
    }

    /// Human-readable identity used in error reports, e.g.
    /// `"Web Apache × stms(p=0.125)"`.
    pub fn label(&self) -> String {
        match &self.task {
            JobTask::Replay(kind) => format!("{} × {}", self.workload.name, kind.label()),
            JobTask::CollectMisses => format!("{} × miss-collection", self.workload.name),
        }
    }
}

/// The stable identity of one job under one campaign configuration: the
/// fingerprint of `(spec at the campaign trace length, system model, engine
/// options, task)`. Two jobs produce bit-identical outputs exactly when
/// their fingerprints agree, which is what lets the same value key the
/// persistent [`super::ResultStore`], partition the grid across shards
/// ([`super::shard`]), and address outputs inside sealed shard manifests.
pub fn job_fingerprint(cfg: &ExperimentConfig, job: &JobSpec) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("stms-job-output/v1");
    job.workload
        .clone()
        .with_accesses(cfg.accesses)
        .fingerprint_into(&mut fp);
    cfg.system.fingerprint_into(&mut fp);
    cfg.sim.fingerprint_into(&mut fp);
    job.task.fingerprint_into(&mut fp);
    fp.finish()
}

/// The result of one finished job, mirroring [`JobTask`].
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobTask::Replay`].
    Sim(SimResult),
    /// Result of a [`JobTask::CollectMisses`]: one miss sequence per core.
    MissSequences(Vec<Vec<LineAddr>>),
}

impl JobOutput {
    /// Unwraps a replay result.
    ///
    /// # Panics
    ///
    /// Panics if the job was a miss collection; a figure's render stage only
    /// sees outputs of the jobs it planned, so a mismatch is a plan bug.
    pub fn into_sim(self) -> SimResult {
        match self {
            JobOutput::Sim(result) => result,
            JobOutput::MissSequences(_) => {
                panic!("plan bug: expected a replay output, got miss sequences")
            }
        }
    }

    /// Unwraps a miss-collection result.
    ///
    /// # Panics
    ///
    /// Panics if the job was a replay (see [`JobOutput::into_sim`]).
    pub fn into_miss_sequences(self) -> Vec<Vec<LineAddr>> {
        match self {
            JobOutput::MissSequences(seqs) => seqs,
            JobOutput::Sim(_) => {
                panic!("plan bug: expected miss sequences, got a replay output")
            }
        }
    }

    /// Encodes the output as a compact binary record (a variant tag followed
    /// by the variant payload), for persistence in the on-disk result cache.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            JobOutput::Sim(result) => {
                let payload = result.encode();
                let mut out = Vec::with_capacity(1 + payload.len());
                out.push(0u8);
                out.extend_from_slice(&payload);
                out
            }
            JobOutput::MissSequences(seqs) => {
                let addrs: usize = seqs.iter().map(Vec::len).sum();
                let mut out = Vec::with_capacity(1 + 8 + seqs.len() * 8 + addrs * 8);
                out.push(1u8);
                out.extend_from_slice(&(seqs.len() as u64).to_le_bytes());
                for core in seqs {
                    out.extend_from_slice(&(core.len() as u64).to_le_bytes());
                    for addr in core {
                        out.extend_from_slice(&addr.raw().to_le_bytes());
                    }
                }
                out
            }
        }
    }

    /// Decodes an output previously produced by [`JobOutput::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeJobOutputError`] for an unknown variant tag or a
    /// malformed payload. Cache readers treat any error as a miss and re-run
    /// the job.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeJobOutputError> {
        let truncated = |what| DecodeJobOutputError::Truncated { what };
        let (&tag, rest) = data.split_first().ok_or(truncated("variant tag"))?;
        match tag {
            0 => Ok(JobOutput::Sim(SimResult::decode(rest)?)),
            1 => {
                let mut data = rest;
                let mut u64_field = |what| -> Result<u64, DecodeJobOutputError> {
                    let (head, rest) = data.split_at_checked(8).ok_or(truncated(what))?;
                    data = rest;
                    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
                };
                let cores = u64_field("core count")? as usize;
                let mut seqs = Vec::with_capacity(cores.min(1024));
                for _ in 0..cores {
                    let len = u64_field("sequence length")? as usize;
                    let mut seq = Vec::with_capacity(len.min(1 << 20));
                    for _ in 0..len {
                        seq.push(LineAddr::new(u64_field("miss address")?));
                    }
                    seqs.push(seq);
                }
                if !data.is_empty() {
                    return Err(DecodeJobOutputError::TrailingData);
                }
                Ok(JobOutput::MissSequences(seqs))
            }
            tag => Err(DecodeJobOutputError::UnknownVariant { tag }),
        }
    }
}

/// Error returned when [`JobOutput::decode`] is given a malformed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeJobOutputError {
    /// The buffer ended before the named field.
    Truncated {
        /// Which encoded field was cut off.
        what: &'static str,
    },
    /// The leading variant tag named no known [`JobOutput`] variant.
    UnknownVariant {
        /// The unknown tag value.
        tag: u8,
    },
    /// The embedded simulation result was malformed.
    BadSimResult(stms_mem::DecodeResultError),
    /// Extra bytes followed the last field.
    TrailingData,
}

impl From<stms_mem::DecodeResultError> for DecodeJobOutputError {
    fn from(err: stms_mem::DecodeResultError) -> Self {
        DecodeJobOutputError::BadSimResult(err)
    }
}

impl fmt::Display for DecodeJobOutputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeJobOutputError::Truncated { what } => {
                write!(f, "malformed job output: truncated at {what}")
            }
            DecodeJobOutputError::UnknownVariant { tag } => {
                write!(f, "malformed job output: unknown variant tag {tag}")
            }
            DecodeJobOutputError::BadSimResult(err) => {
                write!(f, "malformed job output: {err}")
            }
            DecodeJobOutputError::TrailingData => {
                write!(f, "malformed job output: trailing bytes")
            }
        }
    }
}

impl std::error::Error for DecodeJobOutputError {}

/// A job that failed (its simulation panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// `JobSpec::label()` of the failed job.
    pub job: String,
    /// Stable [`job_fingerprint`] of the failed job, when the caller had a
    /// configuration to derive it from. Rendered in the `Display` output
    /// so a partial-shard failure in a CI log names the exact cache/manifest
    /// entry to look for.
    pub fingerprint: Option<Fingerprint>,
    /// The captured panic message.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fingerprint {
            Some(fingerprint) => write!(
                f,
                "job `{}` [fp {fingerprint}] failed: {}",
                self.job, self.message
            ),
            None => write!(f, "job `{}` failed: {}", self.job, self.message),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    #[test]
    fn labels_identify_workload_and_task() {
        let replay = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        assert_eq!(replay.label(), "Web Apache × baseline");
        let collect = JobSpec::collect_misses(presets::sci_ocean());
        assert!(collect.label().contains("miss-collection"));
    }

    #[test]
    fn error_display_names_the_job_and_fingerprint() {
        let err = JobError {
            job: "w × k".into(),
            fingerprint: None,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "job `w × k` failed: boom");
        let with_fp = JobError {
            fingerprint: Some(Fingerprint::from_raw(0xabcd)),
            ..err
        };
        let text = with_fp.to_string();
        assert!(text.contains("[fp"), "{text}");
        assert!(text.contains("0000000000000000000000000000abcd"), "{text}");
        assert!(text.ends_with("failed: boom"), "{text}");
    }

    #[test]
    fn job_fingerprints_separate_every_dimension_and_ignore_duplicates() {
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let base = job_fingerprint(&cfg, &job);
        // Identical job (cloned spec): identical fingerprint.
        assert_eq!(
            base,
            job_fingerprint(
                &cfg,
                &JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline)
            )
        );
        // Any varied dimension changes it.
        assert_ne!(
            base,
            job_fingerprint(
                &cfg,
                &JobSpec::replay(presets::web_apache(), PrefetcherKind::ideal())
            )
        );
        assert_ne!(
            base,
            job_fingerprint(
                &cfg,
                &JobSpec::replay(presets::sci_ocean(), PrefetcherKind::Baseline)
            )
        );
        assert_ne!(base, job_fingerprint(&cfg.clone().with_accesses(1), &job));
        assert_ne!(
            base,
            job_fingerprint(&cfg, &JobSpec::collect_misses(presets::web_apache()))
        );
    }

    #[test]
    #[should_panic(expected = "plan bug")]
    fn mismatched_output_unwrap_panics() {
        JobOutput::MissSequences(Vec::new()).into_sim();
    }
}
