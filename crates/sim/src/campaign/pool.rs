//! A bounded worker pool for simulation jobs.
//!
//! The seed driver spawned one OS thread per workload for every figure cell
//! (`std::thread::scope` in the old `run_suite`/`run_matched`) and aborted
//! the whole process when any simulation panicked. [`JobPool`] replaces that
//! with a fixed set of worker threads fed from a shared queue: batch size is
//! decoupled from thread count, independent batches interleave on the same
//! workers, and a panicking job is captured and surfaced as a per-job
//! [`JobPanic`] instead of tearing the campaign down.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A captured panic from one pool job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    message: String,
}

impl JobPanic {
    /// The panic payload rendered as text (`"non-string panic payload"` when
    /// the payload was neither `&str` nor `String`).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

type Runnable = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing batches of jobs from a shared queue.
///
/// # Example
///
/// ```
/// use stms_sim::campaign::JobPool;
///
/// let pool = JobPool::new(2);
/// let results = pool.run_batch((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// let squares: Vec<i32> = results.into_iter().map(Result::unwrap).collect();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct JobPool {
    queue: Option<Sender<Runnable>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl fmt::Debug for JobPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl JobPool {
    /// Creates a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Runnable>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("stms-job-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn job-pool worker thread")
            })
            .collect();
        JobPool {
            queue: Some(tx),
            workers,
            threads,
        }
    }

    /// A pool sized to the machine (`available_parallelism`, falling back to
    /// one worker when the parallelism cannot be queried).
    pub fn with_default_threads() -> Self {
        Self::new(Self::default_threads())
    }

    /// The thread count [`JobPool::with_default_threads`] uses.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch of jobs and returns their results in submission order.
    ///
    /// The calling thread blocks until every job of the batch has finished;
    /// jobs of concurrently-submitted batches interleave on the same workers.
    /// A job that panics yields `Err(JobPanic)` in its slot without affecting
    /// the other jobs or the pool.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_batch(tasks).run_to_completion()
    }

    /// Enqueues a batch of jobs without waiting for them, returning a handle
    /// that yields `(submission index, result)` pairs *in completion order*.
    ///
    /// This is the streaming primitive behind
    /// [`Campaign::run_figures`](crate::campaign::Campaign::run_figures):
    /// the caller can start consuming (and rendering) early results while
    /// later jobs are still running. Dropping the handle before draining it
    /// is safe — outstanding jobs still run to completion on the workers and
    /// their results are discarded.
    pub fn submit_batch<T, F>(&self, tasks: Vec<F>) -> BatchHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        type Slot<T> = (usize, Result<T, JobPanic>);
        let count = tasks.len();
        let (result_tx, result_rx): (Sender<Slot<T>>, Receiver<Slot<T>>) = channel();
        let queue = self
            .queue
            .as_ref()
            .expect("job pool queue alive until drop");
        for (i, task) in tasks.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            let job: Runnable = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(|payload| {
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    JobPanic { message }
                });
                // The batch submitter may have given up (dropped the
                // handle); a dead receiver must not kill the worker.
                let _ = result_tx.send((i, outcome));
            });
            queue.send(job).expect("job pool workers alive");
        }
        BatchHandle {
            rx: result_rx,
            remaining: count,
        }
    }
}

/// In-flight batch returned by [`JobPool::submit_batch`]: an iterator over
/// `(submission index, result)` pairs in completion order.
#[derive(Debug)]
pub struct BatchHandle<T> {
    rx: Receiver<(usize, Result<T, JobPanic>)>,
    remaining: usize,
}

impl<T> BatchHandle<T> {
    /// Jobs of the batch that have not been yielded yet.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Blocks until every job of the batch has finished and returns the
    /// results in submission order (the behaviour of
    /// [`JobPool::run_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if some results were already consumed through the iterator —
    /// collect a batch either entirely by streaming or entirely here.
    pub fn run_to_completion(self) -> Vec<Result<T, JobPanic>> {
        let count = self.remaining;
        let mut results: Vec<Option<Result<T, JobPanic>>> = (0..count).map(|_| None).collect();
        for (i, outcome) in self {
            results[i] = Some(outcome);
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

impl<T> Iterator for BatchHandle<T> {
    type Item = (usize, Result<T, JobPanic>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.rx.recv().expect("every job reports exactly once"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T> ExactSizeIterator for BatchHandle<T> {
    fn len(&self) -> usize {
        self.remaining
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop; join so no worker
        // outlives the pool.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Runnable>>) {
    loop {
        // Hold the queue lock only while dequeuing, never while running.
        let job = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // queue closed: pool is being dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = JobPool::new(4);
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from submission.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((32 - i) % 7) as u64 * 100,
                    ));
                    i
                }
            })
            .collect();
        let results = pool.run_batch(tasks);
        let values: Vec<i32> = results.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_is_bounded_and_clamped() {
        let pool = JobPool::new(0);
        assert_eq!(pool.threads(), 1);

        // With 2 workers and 8 jobs, at most 2 jobs run at once.
        let pool = JobPool::new(2);
        assert_eq!(pool.threads(), 2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        for r in pool.run_batch(tasks) {
            r.unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert!(JobPool::default_threads() >= 1);
    }

    #[test]
    fn panicking_job_reports_error_without_poisoning_the_pool() {
        // Keep the worker's panic out of the test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = JobPool::new(2);
        let results = pool.run_batch(vec![
            Box::new(|| 1) as Box<dyn FnOnce() -> i32 + Send>,
            Box::new(|| panic!("boom {}", 42)),
            Box::new(|| 3),
        ]);
        std::panic::set_hook(prev);

        assert_eq!(results.len(), 3);
        assert_eq!(*results[0].as_ref().unwrap(), 1);
        let err = results[1].as_ref().unwrap_err();
        assert!(err.message().contains("boom 42"), "{err}");
        assert!(err.to_string().contains("job panicked"));
        assert_eq!(*results[2].as_ref().unwrap(), 3);

        // The pool still works after a panic.
        let again = pool.run_batch(vec![|| "ok"]);
        assert_eq!(*again[0].as_ref().unwrap(), "ok");
    }

    #[test]
    fn submit_batch_streams_results_in_completion_order() {
        let pool = JobPool::new(2);
        // One slow job submitted first; fast jobs must be yielded before it
        // finishes even though it was submitted first.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                0
            }),
            Box::new(|| 1),
            Box::new(|| 2),
            Box::new(|| 3),
        ];
        let mut handle = pool.submit_batch(tasks);
        assert_eq!(handle.remaining(), 4);
        let (first_index, first) = handle.next().expect("four results");
        assert_ne!(first_index, 0, "the slow job cannot complete first");
        assert_eq!(*first.as_ref().unwrap(), first_index);
        let mut seen: Vec<usize> = vec![first_index];
        seen.extend(handle.map(|(i, r)| {
            assert_eq!(r.unwrap(), i);
            i
        }));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dropping_a_batch_handle_leaves_the_pool_usable() {
        let pool = JobPool::new(1);
        drop(pool.submit_batch((0..4).map(|i| move || i).collect::<Vec<_>>()));
        let results = pool.run_batch(vec![|| 7]);
        assert_eq!(*results[0].as_ref().unwrap(), 7);
    }

    #[test]
    fn batches_from_multiple_threads_interleave_on_one_pool() {
        let pool = Arc::new(JobPool::new(2));
        let handles: Vec<_> = (0..3)
            .map(|batch| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let tasks: Vec<_> = (0..5).map(|i| move || batch * 10 + i).collect();
                    pool.run_batch(tasks)
                        .into_iter()
                        .map(Result::unwrap)
                        .collect::<Vec<i32>>()
                })
            })
            .collect();
        for (batch, handle) in handles.into_iter().enumerate() {
            let values = handle.join().unwrap();
            let expect: Vec<i32> = (0..5).map(|i| batch as i32 * 10 + i).collect();
            assert_eq!(values, expect);
        }
    }
}
