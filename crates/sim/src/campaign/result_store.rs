//! A persistent memo of finished job outputs.
//!
//! Replays are deterministic given `(spec, accesses, prefetcher kind,
//! system, sim options)` — the exact key the paper's own meta-data argument
//! rests on: the artifact is a pure function of its generating
//! configuration, so it can live off to the side and be reused. A
//! [`ResultStore`] memoizes every [`JobOutput`] (a [`stms_mem::SimResult`]
//! for replay jobs, per-core miss sequences for collection jobs) by the
//! stable [`stms_types::Fingerprint`] of that tuple, in a memory tier for
//! repeated cells within one campaign and a disk tier for cells across
//! campaign *processes*. Re-rendering one figure after a render-stage tweak
//! then replays nothing at all: every job output is served from
//! `result-<fingerprint>.stms` files.
//!
//! Entries are sealed in the same versioned [`stms_types::blob`] envelope as
//! persisted traces; any stale, truncated or corrupt file fails the checks,
//! is evicted, and the job simply runs again.
//!
//! # Example
//!
//! ```
//! use stms_sim::campaign::{JobSpec, ResultStore};
//! use stms_sim::{ExperimentConfig, PrefetcherKind};
//! use stms_workloads::presets;
//!
//! let dir = std::env::temp_dir().join("stms-doc-result-store");
//! std::fs::remove_dir_all(&dir).ok(); // start cold
//!
//! let cfg = ExperimentConfig::quick();
//! let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
//! let store = ResultStore::open(&dir).unwrap();
//! let key = store.job_key(&cfg, &job);
//!
//! assert!(store.get(key, &cfg, &job).is_none()); // cold
//! # let output = stms_sim::campaign::JobOutput::Sim(stms_mem::SimResult::default());
//! store.put(key, &output);
//! assert!(store.get(key, &cfg, &job).is_some()); // memoized — and now on disk
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use super::job::{JobOutput, JobSpec};
use crate::system::ExperimentConfig;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use stms_types::Fingerprint;

/// Version of the [`JobOutput`] *container* layout (variant tags, the
/// miss-sequence encoding). Bump this when the container itself changes.
const JOB_OUTPUT_CONTAINER_VERSION: u16 = 1;

/// Version stamped on persisted [`JobOutput::encode`] blobs: the container
/// version in the high byte composed with the embedded
/// [`stms_mem::SIM_RESULT_CODEC_VERSION`] in the low byte, so a change to
/// *either* layer turns every old file into a clean version-mismatch miss.
pub const JOB_OUTPUT_CODEC_VERSION: u16 =
    (JOB_OUTPUT_CONTAINER_VERSION << 8) | stms_mem::SIM_RESULT_CODEC_VERSION;

/// File-name prefix of persisted job outputs.
const RESULT_FILE_PREFIX: &str = "result-";

/// Counters describing how a [`ResultStore`] was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultStoreStats {
    /// Lookups served from the memory tier.
    pub hits: u64,
    /// Lookups served by decoding a persisted result file.
    pub disk_hits: u64,
    /// Lookups that found nothing usable (the job must run).
    pub misses: u64,
    /// Unusable result files evicted after failing the envelope, codec or
    /// verification checks (a subset of `misses`).
    pub corrupt: u64,
    /// Result files written by this store.
    pub stores: u64,
}

impl ResultStoreStats {
    /// Total lookups served without running a simulation.
    pub fn total_hits(&self) -> u64 {
        self.hits + self.disk_hits
    }
}

/// A two-tier (memory + disk) memo of job outputs keyed by stable
/// fingerprints (see the module-level docs above).
#[derive(Debug)]
pub struct ResultStore {
    dir: Option<PathBuf>,
    verify: bool,
    memory: Mutex<HashMap<Fingerprint, JobOutput>>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stores: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a result cache directory. The directory
    /// may be shared with a [`super::TraceStore`] disk tier and across
    /// concurrent processes.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self::with_dir(Some(dir)))
    }

    /// A memory-only store: the same memoization and the same counters, but
    /// nothing ever touches disk. This is the dedup tier of a long-lived
    /// server process — concurrent requests for the same job share one
    /// execution even when no cache directory is configured.
    pub fn in_memory() -> Self {
        Self::with_dir(None)
    }

    fn with_dir(dir: Option<PathBuf>) -> Self {
        ResultStore {
            dir,
            verify: false,
            memory: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// Returns a copy with deep verification enabled: a decoded output is
    /// additionally cross-checked against the requesting job (task variant,
    /// workload identity, per-system-core sequence count), catching files
    /// whose content predates a generator or labelling change.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// The cache directory, or `None` for a [`ResultStore::in_memory`]
    /// store.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The stable cache key of one job under one campaign configuration
    /// (see [`super::job::job_fingerprint`] — shard partitioning and shard
    /// manifests key on the same value). Two campaigns share an entry
    /// exactly when a replay would be bit-identical.
    pub fn job_key(&self, cfg: &ExperimentConfig, job: &JobSpec) -> Fingerprint {
        super::job::job_fingerprint(cfg, job)
    }

    /// Looks up a memoized output, consulting the memory tier first and
    /// then the disk tier. `cfg` and `job` are what the key was derived
    /// from; they drive the deep verification of
    /// [`ResultStore::with_verify`].
    pub fn get(
        &self,
        key: Fingerprint,
        cfg: &ExperimentConfig,
        job: &JobSpec,
    ) -> Option<JobOutput> {
        {
            let memory = self.memory.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(output) = memory.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(output.clone());
            }
        }
        match self.load_from_disk(key, cfg, job) {
            Some(output) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.memory
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key, output.clone());
                Some(output)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a finished job's output in both tiers. Persistence failures
    /// are swallowed — the cache is an optimization, never a correctness
    /// dependency.
    pub fn put(&self, key: Fingerprint, output: &JobOutput) {
        self.memory
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, output.clone());
        let Some(dir) = &self.dir else { return };
        let path = result_path_in(dir, key);
        if super::trace_store::write_sealed(
            dir,
            &path,
            JOB_OUTPUT_CODEC_VERSION,
            key,
            &output.encode(),
        ) {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Usage counters.
    pub fn stats(&self) -> ResultStoreStats {
        ResultStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    fn result_path(&self, key: Fingerprint) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| result_path_in(dir, key))
    }

    fn load_from_disk(
        &self,
        key: Fingerprint,
        cfg: &ExperimentConfig,
        job: &JobSpec,
    ) -> Option<JobOutput> {
        let path = self.result_path(key)?;
        let payload = match super::trace_store::read_sealed(&path, JOB_OUTPUT_CODEC_VERSION, key) {
            Ok(Some(payload)) => payload,
            Ok(None) => return None, // plain cold miss
            Err(()) => {
                self.evict_corrupt(&path);
                return None;
            }
        };
        let output = JobOutput::decode(&payload)
            .ok()
            .filter(|output| !self.verify || output_matches_job(output, cfg, job));
        if output.is_none() {
            self.evict_corrupt(&path);
        }
        output
    }

    fn evict_corrupt(&self, path: &std::path::Path) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
    }
}

/// Deep verification: the decoded output plausibly belongs to `job` — the
/// variant matches the task and the workload identity carried inside the
/// result matches the requesting spec. Miss sequences carry one entry per
/// *simulated system* core (the collector is sized by `cfg.system.cores`,
/// not by the workload's own core count). The `prefetcher` field holds the
/// engine's *family* name, not the design-point label, so it cannot
/// distinguish sweep points and is deliberately not checked; sweep points
/// are separated by the key fingerprint itself.
fn result_path_in(dir: &Path, key: Fingerprint) -> PathBuf {
    dir.join(format!(
        "{RESULT_FILE_PREFIX}{}.{}",
        key.to_hex(),
        super::trace_store::CACHE_FILE_EXT
    ))
}

fn output_matches_job(output: &JobOutput, cfg: &ExperimentConfig, job: &JobSpec) -> bool {
    match (output, &job.task) {
        (JobOutput::Sim(result), super::job::JobTask::Replay(_)) => {
            result.workload == job.workload.name
        }
        (JobOutput::MissSequences(seqs), super::job::JobTask::CollectMisses) => {
            seqs.len() == cfg.system.cores
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PrefetcherKind;
    use stms_mem::SimResult;
    use stms_types::LineAddr;
    use stms_workloads::presets;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stms-result-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output(job: &JobSpec) -> JobOutput {
        JobOutput::Sim(SimResult {
            workload: job.workload.name.clone(),
            prefetcher: match &job.task {
                super::super::job::JobTask::Replay(kind) => kind.label(),
                super::super::job::JobTask::CollectMisses => unreachable!(),
            },
            cycles: 1234,
            instructions: 5678,
            ..SimResult::default()
        })
    }

    #[test]
    fn keys_separate_every_dimension() {
        let dir = temp_dir("keys");
        let store = ResultStore::open(&dir).unwrap();
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let base = store.job_key(&cfg, &job);

        // Same inputs, same key.
        assert_eq!(base, store.job_key(&cfg, &job));
        // Different prefetcher, workload, trace length, system or options:
        // different key.
        let other_kind = JobSpec::replay(presets::web_apache(), PrefetcherKind::ideal());
        assert_ne!(base, store.job_key(&cfg, &other_kind));
        let other_load = JobSpec::replay(presets::sci_ocean(), PrefetcherKind::Baseline);
        assert_ne!(base, store.job_key(&cfg, &other_load));
        assert_ne!(base, store.job_key(&cfg.clone().with_accesses(1), &job));
        let mut other_sys = cfg.clone();
        other_sys.system.l2.capacity_bytes *= 2;
        assert_ne!(base, store.job_key(&other_sys, &job));
        let mut other_sim = cfg.clone();
        other_sim.sim.stream_lookahead += 1;
        assert_ne!(base, store.job_key(&other_sim, &job));
        // A collection job never aliases a replay of the same workload.
        let collect = JobSpec::collect_misses(presets::web_apache());
        assert_ne!(base, store.job_key(&cfg, &collect));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_across_stores_and_tiers() {
        let dir = temp_dir("round-trip");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::oltp_db2(), PrefetcherKind::ideal());
        let output = sample_output(&job);

        let first = ResultStore::open(&dir).unwrap();
        let key = first.job_key(&cfg, &job);
        assert!(first.get(key, &cfg, &job).is_none());
        first.put(key, &output);
        // Memory-tier hit.
        let hit = first.get(key, &cfg, &job).expect("memoized");
        assert_eq!(hit.into_sim().cycles, 1234);
        let stats = first.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));

        // A fresh store on the same directory: disk-tier hit, verified.
        let second = ResultStore::open(&dir).unwrap().with_verify(true);
        let hit = second.get(key, &cfg, &job).expect("persisted");
        assert_eq!(hit.into_sim().instructions, 5678);
        let stats = second.stats();
        assert_eq!((stats.disk_hits, stats.hits, stats.misses), (1, 0, 0));
        // And the second lookup is served from memory.
        second.get(key, &cfg, &job).expect("now in memory");
        assert_eq!(second.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn miss_sequences_round_trip() {
        let dir = temp_dir("miss-seqs");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::collect_misses(presets::web_apache());
        let seqs: Vec<Vec<LineAddr>> = (0..presets::web_apache().cores)
            .map(|c| {
                (0..5)
                    .map(|i| LineAddr::new((c * 100 + i) as u64))
                    .collect()
            })
            .collect();

        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        store.put(key, &JobOutput::MissSequences(seqs.clone()));

        let warm = ResultStore::open(&dir).unwrap().with_verify(true);
        let back = warm
            .get(key, &cfg, &job)
            .expect("persisted")
            .into_miss_sequences();
        assert_eq!(back, seqs);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_sizes_miss_sequences_by_system_cores_not_workload_cores() {
        // The collector emits one sequence per *simulated system* core;
        // a workload whose own core count differs must still verify.
        let dir = temp_dir("cores");
        let cfg = ExperimentConfig::quick();
        let mut spec = presets::web_apache();
        spec.cores = 1;
        assert_ne!(spec.cores, cfg.system.cores, "the interesting case");
        let job = JobSpec::collect_misses(spec);
        let seqs: Vec<Vec<LineAddr>> = (0..cfg.system.cores)
            .map(|c| vec![LineAddr::new(c as u64)])
            .collect();

        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        store.put(key, &JobOutput::MissSequences(seqs));

        let verifying = ResultStore::open(&dir).unwrap().with_verify(true);
        assert!(
            verifying.get(key, &cfg, &job).is_some(),
            "a valid entry must not be treated as corrupt"
        );
        assert_eq!(verifying.stats().corrupt, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_fall_back_to_a_miss() {
        let dir = temp_dir("corrupt");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        store.put(key, &sample_output(&job));

        let path = store.result_path(key).expect("disk-backed store");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let fresh = ResultStore::open(&dir).unwrap();
        assert!(fresh.get(key, &cfg, &job).is_none());
        let stats = fresh.stats();
        assert_eq!((stats.corrupt, stats.misses), (1, 1));
        assert!(!path.is_file(), "corrupt entry must be evicted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_store_memoizes_without_touching_disk() {
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let store = ResultStore::in_memory();
        assert!(store.dir().is_none());
        let key = store.job_key(&cfg, &job);
        assert!(store.get(key, &cfg, &job).is_none());
        store.put(key, &sample_output(&job));
        let hit = store.get(key, &cfg, &job).expect("memoized");
        assert_eq!(hit.into_sim().cycles, 1234);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 0));
        // A second in-memory store shares nothing: no hidden global state.
        assert!(ResultStore::in_memory().get(key, &cfg, &job).is_none());
    }

    #[test]
    fn verify_rejects_outputs_that_mismatch_the_job() {
        let dir = temp_dir("verify");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        // Persist an output whose labels do not match the job (as if the
        // labelling scheme changed since the file was written).
        let mut wrong = sample_output(&job).into_sim();
        wrong.workload = "Somebody Else".into();
        store.put(key, &JobOutput::Sim(wrong));

        let trusting = ResultStore::open(&dir).unwrap();
        assert!(trusting.get(key, &cfg, &job).is_some());
        let verifying = ResultStore::open(&dir).unwrap().with_verify(true);
        assert!(verifying.get(key, &cfg, &job).is_none());
        assert_eq!(verifying.stats().corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
