//! A persistent memo of finished job outputs.
//!
//! Replays are deterministic given `(spec, accesses, prefetcher kind,
//! system, sim options)` — the exact key the paper's own meta-data argument
//! rests on: the artifact is a pure function of its generating
//! configuration, so it can live off to the side and be reused. A
//! [`ResultStore`] memoizes every [`JobOutput`] (a [`stms_mem::SimResult`]
//! for replay jobs, per-core miss sequences for collection jobs) by the
//! stable [`stms_types::Fingerprint`] of that tuple, in a memory tier for
//! repeated cells within one campaign and a disk tier for cells across
//! campaign *processes*. Re-rendering one figure after a render-stage tweak
//! then replays nothing at all: every job output is served from
//! `result-<fingerprint>.stms` files.
//!
//! Entries are sealed in the same versioned [`stms_types::blob`] envelope as
//! persisted traces; any stale, truncated or corrupt file fails the checks,
//! is evicted, and the job simply runs again.
//!
//! # Example
//!
//! ```
//! use stms_sim::campaign::{JobSpec, ResultStore};
//! use stms_sim::{ExperimentConfig, PrefetcherKind};
//! use stms_workloads::presets;
//!
//! let dir = std::env::temp_dir().join("stms-doc-result-store");
//! std::fs::remove_dir_all(&dir).ok(); // start cold
//!
//! let cfg = ExperimentConfig::quick();
//! let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
//! let store = ResultStore::open(&dir).unwrap();
//! let key = store.job_key(&cfg, &job);
//!
//! assert!(store.get(key, &cfg, &job).is_none()); // cold
//! # let output = stms_sim::campaign::JobOutput::Sim(stms_mem::SimResult::default());
//! store.put(key, &output);
//! assert!(store.get(key, &cfg, &job).is_some()); // memoized — and now on disk
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use super::job::{JobOutput, JobSpec};
use crate::system::ExperimentConfig;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use stms_types::Fingerprint;

/// Version of the [`JobOutput`] *container* layout (variant tags, the
/// miss-sequence encoding). Bump this when the container itself changes.
const JOB_OUTPUT_CONTAINER_VERSION: u16 = 1;

/// Version stamped on persisted [`JobOutput::encode`] blobs: the container
/// version in the high byte composed with the embedded
/// [`stms_mem::SIM_RESULT_CODEC_VERSION`] in the low byte, so a change to
/// *either* layer turns every old file into a clean version-mismatch miss.
pub const JOB_OUTPUT_CODEC_VERSION: u16 =
    (JOB_OUTPUT_CONTAINER_VERSION << 8) | stms_mem::SIM_RESULT_CODEC_VERSION;

/// File-name prefix of persisted job outputs.
const RESULT_FILE_PREFIX: &str = "result-";

/// Default byte budget of the in-memory memo tier (encoded-output bytes).
/// Generous enough that a one-shot campaign never evicts — job outputs are
/// kilobytes each — while bounding a long-lived daemon that replays an
/// unbounded stream of distinct cells.
pub const DEFAULT_MEMO_BUDGET_BYTES: u64 = 64 << 20;

/// Counters describing how a [`ResultStore`] was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultStoreStats {
    /// Lookups served from the memory tier.
    pub hits: u64,
    /// Lookups served by decoding a persisted result file.
    pub disk_hits: u64,
    /// Lookups that found nothing usable (the job must run).
    pub misses: u64,
    /// Unusable result files evicted after failing the envelope, codec or
    /// verification checks (a subset of `misses`).
    pub corrupt: u64,
    /// Result files written by this store.
    pub stores: u64,
    /// Memory-tier entries evicted to respect the memo byte budget (the
    /// disk tier, when present, still holds them).
    pub memo_evictions: u64,
    /// Encoded bytes currently resident in the memory tier.
    pub memo_bytes: u64,
}

impl ResultStoreStats {
    /// Total lookups served without running a simulation.
    pub fn total_hits(&self) -> u64 {
        self.hits + self.disk_hits
    }
}

/// The bounded in-memory memo tier: an LRU keyed by job fingerprint whose
/// resident size (encoded-output bytes) never exceeds its budget. Recency
/// is a logical clock bumped on every touch; eviction scans for the
/// smallest stamp, which is O(entries) but runs only when an insert pushes
/// the tier over budget — entry counts here are job counts, not accesses.
#[derive(Debug)]
struct MemoTier {
    entries: HashMap<Fingerprint, MemoEntry>,
    budget: u64,
    resident_bytes: u64,
    clock: u64,
}

#[derive(Debug)]
struct MemoEntry {
    output: JobOutput,
    bytes: u64,
    last_used: u64,
}

impl MemoTier {
    fn new(budget: u64) -> Self {
        MemoTier {
            entries: HashMap::new(),
            budget,
            resident_bytes: 0,
            clock: 0,
        }
    }

    fn get(&mut self, key: Fingerprint) -> Option<JobOutput> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|entry| {
            entry.last_used = clock;
            entry.output.clone()
        })
    }

    /// Inserts (or refreshes) an entry, then evicts least-recently-used
    /// entries until the tier fits its budget again. The just-inserted
    /// entry is never evicted: an output larger than the whole budget still
    /// memoizes, the tier just holds that one entry. Returns the eviction
    /// count.
    fn insert(&mut self, key: Fingerprint, output: JobOutput, bytes: u64) -> u64 {
        self.clock += 1;
        let entry = MemoEntry {
            output,
            bytes,
            last_used: self.clock,
        };
        if let Some(old) = self.entries.insert(key, entry) {
            self.resident_bytes -= old.bytes;
        }
        self.resident_bytes += bytes;
        let mut evicted = 0;
        while self.resident_bytes > self.budget && self.entries.len() > 1 {
            let oldest = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("more than one entry resident");
            let gone = self.entries.remove(&oldest).expect("key from this map");
            self.resident_bytes -= gone.bytes;
            evicted += 1;
        }
        evicted
    }
}

/// A two-tier (memory + disk) memo of job outputs keyed by stable
/// fingerprints (see the module-level docs above).
#[derive(Debug)]
pub struct ResultStore {
    dir: Option<PathBuf>,
    verify: bool,
    memory: Mutex<MemoTier>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stores: AtomicU64,
    memo_evictions: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a result cache directory. The directory
    /// may be shared with a [`super::TraceStore`] disk tier and across
    /// concurrent processes.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self::with_dir(Some(dir)))
    }

    /// A memory-only store: the same memoization and the same counters, but
    /// nothing ever touches disk. This is the dedup tier of a long-lived
    /// server process — concurrent requests for the same job share one
    /// execution even when no cache directory is configured.
    pub fn in_memory() -> Self {
        Self::with_dir(None)
    }

    fn with_dir(dir: Option<PathBuf>) -> Self {
        ResultStore {
            dir,
            verify: false,
            memory: Mutex::new(MemoTier::new(DEFAULT_MEMO_BUDGET_BYTES)),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            memo_evictions: AtomicU64::new(0),
        }
    }

    /// Returns a copy with deep verification enabled: a decoded output is
    /// additionally cross-checked against the requesting job (task variant,
    /// workload identity, per-system-core sequence count), catching files
    /// whose content predates a generator or labelling change.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Returns a copy with the memory tier bounded to `bytes` of encoded
    /// output (default [`DEFAULT_MEMO_BUDGET_BYTES`]). Least-recently-used
    /// entries are evicted when an insert pushes the tier over budget; with
    /// a disk tier configured they remain loadable from disk.
    pub fn with_memory_budget(self, bytes: u64) -> Self {
        self.memory
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .budget = bytes;
        self
    }

    /// The cache directory, or `None` for a [`ResultStore::in_memory`]
    /// store.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The stable cache key of one job under one campaign configuration
    /// (see [`super::job::job_fingerprint`] — shard partitioning and shard
    /// manifests key on the same value). Two campaigns share an entry
    /// exactly when a replay would be bit-identical.
    pub fn job_key(&self, cfg: &ExperimentConfig, job: &JobSpec) -> Fingerprint {
        super::job::job_fingerprint(cfg, job)
    }

    /// Looks up a memoized output, consulting the memory tier first and
    /// then the disk tier. `cfg` and `job` are what the key was derived
    /// from; they drive the deep verification of
    /// [`ResultStore::with_verify`].
    pub fn get(
        &self,
        key: Fingerprint,
        cfg: &ExperimentConfig,
        job: &JobSpec,
    ) -> Option<JobOutput> {
        let started = super::trace_store::obs_started();
        {
            let mut memory = self.memory.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(output) = memory.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                drop(memory);
                super::trace_store::record_elapsed("cache.result.hit_ns", started);
                return Some(output);
            }
        }
        match self.load_from_disk(key, cfg, job) {
            Some((output, bytes)) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.memo_insert(key, output.clone(), bytes);
                super::trace_store::record_elapsed("cache.result.disk_hit_ns", started);
                Some(output)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                super::trace_store::record_elapsed("cache.result.miss_ns", started);
                None
            }
        }
    }

    /// Memoizes a finished job's output in both tiers. Persistence failures
    /// are swallowed — the cache is an optimization, never a correctness
    /// dependency.
    pub fn put(&self, key: Fingerprint, output: &JobOutput) {
        let encoded = output.encode();
        self.memo_insert(key, output.clone(), encoded.len() as u64);
        let Some(dir) = &self.dir else { return };
        let path = result_path_in(dir, key);
        if super::trace_store::write_sealed(dir, &path, JOB_OUTPUT_CODEC_VERSION, key, &encoded) {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Inserts into the bounded memory tier and accounts for any evictions
    /// the insert forced (store counter, global telemetry counter and
    /// resident-bytes gauge).
    fn memo_insert(&self, key: Fingerprint, output: JobOutput, bytes: u64) {
        let (evicted, resident) = {
            let mut memory = self.memory.lock().unwrap_or_else(PoisonError::into_inner);
            (memory.insert(key, output, bytes), memory.resident_bytes)
        };
        if evicted > 0 {
            self.memo_evictions.fetch_add(evicted, Ordering::Relaxed);
            stms_obs::counter("cache.result.memo_evictions").add(evicted);
        }
        stms_obs::gauge("cache.result.memo_bytes").set(resident);
    }

    /// Usage counters.
    pub fn stats(&self) -> ResultStoreStats {
        ResultStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            memo_evictions: self.memo_evictions.load(Ordering::Relaxed),
            memo_bytes: self
                .memory
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .resident_bytes,
        }
    }

    fn result_path(&self, key: Fingerprint) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| result_path_in(dir, key))
    }

    /// Loads one output from the disk tier, returning it with its encoded
    /// payload size (the memory tier's accounting unit).
    fn load_from_disk(
        &self,
        key: Fingerprint,
        cfg: &ExperimentConfig,
        job: &JobSpec,
    ) -> Option<(JobOutput, u64)> {
        let path = self.result_path(key)?;
        let payload = match super::trace_store::read_sealed(&path, JOB_OUTPUT_CODEC_VERSION, key) {
            Ok(Some(payload)) => payload,
            Ok(None) => return None, // plain cold miss
            Err(()) => {
                self.evict_corrupt(&path);
                return None;
            }
        };
        let output = JobOutput::decode(&payload)
            .ok()
            .filter(|output| !self.verify || output_matches_job(output, cfg, job));
        if output.is_none() {
            self.evict_corrupt(&path);
        }
        output.map(|output| (output, payload.len() as u64))
    }

    fn evict_corrupt(&self, path: &std::path::Path) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
    }
}

/// Deep verification: the decoded output plausibly belongs to `job` — the
/// variant matches the task and the workload identity carried inside the
/// result matches the requesting spec. Miss sequences carry one entry per
/// *simulated system* core (the collector is sized by `cfg.system.cores`,
/// not by the workload's own core count). The `prefetcher` field holds the
/// engine's *family* name, not the design-point label, so it cannot
/// distinguish sweep points and is deliberately not checked; sweep points
/// are separated by the key fingerprint itself.
fn result_path_in(dir: &Path, key: Fingerprint) -> PathBuf {
    dir.join(format!(
        "{RESULT_FILE_PREFIX}{}.{}",
        key.to_hex(),
        super::trace_store::CACHE_FILE_EXT
    ))
}

fn output_matches_job(output: &JobOutput, cfg: &ExperimentConfig, job: &JobSpec) -> bool {
    match (output, &job.task) {
        (JobOutput::Sim(result), super::job::JobTask::Replay(_)) => {
            result.workload == job.workload.name
        }
        (JobOutput::MissSequences(seqs), super::job::JobTask::CollectMisses) => {
            seqs.len() == cfg.system.cores
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PrefetcherKind;
    use stms_mem::SimResult;
    use stms_types::LineAddr;
    use stms_workloads::presets;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stms-result-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output(job: &JobSpec) -> JobOutput {
        JobOutput::Sim(SimResult {
            workload: job.workload.name.clone(),
            prefetcher: match &job.task {
                super::super::job::JobTask::Replay(kind) => kind.label(),
                super::super::job::JobTask::CollectMisses => unreachable!(),
            },
            cycles: 1234,
            instructions: 5678,
            ..SimResult::default()
        })
    }

    #[test]
    fn keys_separate_every_dimension() {
        let dir = temp_dir("keys");
        let store = ResultStore::open(&dir).unwrap();
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let base = store.job_key(&cfg, &job);

        // Same inputs, same key.
        assert_eq!(base, store.job_key(&cfg, &job));
        // Different prefetcher, workload, trace length, system or options:
        // different key.
        let other_kind = JobSpec::replay(presets::web_apache(), PrefetcherKind::ideal());
        assert_ne!(base, store.job_key(&cfg, &other_kind));
        let other_load = JobSpec::replay(presets::sci_ocean(), PrefetcherKind::Baseline);
        assert_ne!(base, store.job_key(&cfg, &other_load));
        assert_ne!(base, store.job_key(&cfg.clone().with_accesses(1), &job));
        let mut other_sys = cfg.clone();
        other_sys.system.l2.capacity_bytes *= 2;
        assert_ne!(base, store.job_key(&other_sys, &job));
        let mut other_sim = cfg.clone();
        other_sim.sim.stream_lookahead += 1;
        assert_ne!(base, store.job_key(&other_sim, &job));
        // A collection job never aliases a replay of the same workload.
        let collect = JobSpec::collect_misses(presets::web_apache());
        assert_ne!(base, store.job_key(&cfg, &collect));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_across_stores_and_tiers() {
        let dir = temp_dir("round-trip");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::oltp_db2(), PrefetcherKind::ideal());
        let output = sample_output(&job);

        let first = ResultStore::open(&dir).unwrap();
        let key = first.job_key(&cfg, &job);
        assert!(first.get(key, &cfg, &job).is_none());
        first.put(key, &output);
        // Memory-tier hit.
        let hit = first.get(key, &cfg, &job).expect("memoized");
        assert_eq!(hit.into_sim().cycles, 1234);
        let stats = first.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));

        // A fresh store on the same directory: disk-tier hit, verified.
        let second = ResultStore::open(&dir).unwrap().with_verify(true);
        let hit = second.get(key, &cfg, &job).expect("persisted");
        assert_eq!(hit.into_sim().instructions, 5678);
        let stats = second.stats();
        assert_eq!((stats.disk_hits, stats.hits, stats.misses), (1, 0, 0));
        // And the second lookup is served from memory.
        second.get(key, &cfg, &job).expect("now in memory");
        assert_eq!(second.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn miss_sequences_round_trip() {
        let dir = temp_dir("miss-seqs");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::collect_misses(presets::web_apache());
        let seqs: Vec<Vec<LineAddr>> = (0..presets::web_apache().cores)
            .map(|c| {
                (0..5)
                    .map(|i| LineAddr::new((c * 100 + i) as u64))
                    .collect()
            })
            .collect();

        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        store.put(key, &JobOutput::MissSequences(seqs.clone()));

        let warm = ResultStore::open(&dir).unwrap().with_verify(true);
        let back = warm
            .get(key, &cfg, &job)
            .expect("persisted")
            .into_miss_sequences();
        assert_eq!(back, seqs);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_sizes_miss_sequences_by_system_cores_not_workload_cores() {
        // The collector emits one sequence per *simulated system* core;
        // a workload whose own core count differs must still verify.
        let dir = temp_dir("cores");
        let cfg = ExperimentConfig::quick();
        let mut spec = presets::web_apache();
        spec.cores = 1;
        assert_ne!(spec.cores, cfg.system.cores, "the interesting case");
        let job = JobSpec::collect_misses(spec);
        let seqs: Vec<Vec<LineAddr>> = (0..cfg.system.cores)
            .map(|c| vec![LineAddr::new(c as u64)])
            .collect();

        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        store.put(key, &JobOutput::MissSequences(seqs));

        let verifying = ResultStore::open(&dir).unwrap().with_verify(true);
        assert!(
            verifying.get(key, &cfg, &job).is_some(),
            "a valid entry must not be treated as corrupt"
        );
        assert_eq!(verifying.stats().corrupt, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_fall_back_to_a_miss() {
        let dir = temp_dir("corrupt");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        store.put(key, &sample_output(&job));

        let path = store.result_path(key).expect("disk-backed store");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let fresh = ResultStore::open(&dir).unwrap();
        assert!(fresh.get(key, &cfg, &job).is_none());
        let stats = fresh.stats();
        assert_eq!((stats.corrupt, stats.misses), (1, 1));
        assert!(!path.is_file(), "corrupt entry must be evicted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_store_memoizes_without_touching_disk() {
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let store = ResultStore::in_memory();
        assert!(store.dir().is_none());
        let key = store.job_key(&cfg, &job);
        assert!(store.get(key, &cfg, &job).is_none());
        store.put(key, &sample_output(&job));
        let hit = store.get(key, &cfg, &job).expect("memoized");
        assert_eq!(hit.into_sim().cycles, 1234);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 0));
        // A second in-memory store shares nothing: no hidden global state.
        assert!(ResultStore::in_memory().get(key, &cfg, &job).is_none());
    }

    #[test]
    fn memory_tier_evicts_least_recently_used_past_its_byte_budget() {
        let cfg = ExperimentConfig::quick();
        let jobs: Vec<JobSpec> = [
            presets::web_apache(),
            presets::oltp_db2(),
            presets::web_zeus(),
        ]
        .into_iter()
        .map(|spec| JobSpec::replay(spec, PrefetcherKind::Baseline))
        .collect();
        let outputs: Vec<JobOutput> = jobs.iter().map(sample_output).collect();
        let one_entry = outputs[0].encode().len() as u64;
        // Budget fits two entries but not three.
        let store = ResultStore::in_memory().with_memory_budget(one_entry * 5 / 2);
        let keys: Vec<Fingerprint> = jobs.iter().map(|job| store.job_key(&cfg, job)).collect();

        store.put(keys[0], &outputs[0]);
        store.put(keys[1], &outputs[1]);
        assert_eq!(store.stats().memo_evictions, 0);
        // Touch key 0 so key 1 is the least recently used…
        assert!(store.get(keys[0], &cfg, &jobs[0]).is_some());
        // …then overflow: key 1 must go, keys 0 and 2 must stay.
        store.put(keys[2], &outputs[2]);
        let stats = store.stats();
        assert_eq!(stats.memo_evictions, 1);
        assert!(stats.memo_bytes <= one_entry * 5 / 2);
        assert!(store.get(keys[0], &cfg, &jobs[0]).is_some());
        assert!(store.get(keys[2], &cfg, &jobs[2]).is_some());
        assert!(
            store.get(keys[1], &cfg, &jobs[1]).is_none(),
            "evicted entry misses in a memory-only store"
        );

        // An entry larger than the whole budget still memoizes (the tier
        // never evicts the entry it just inserted).
        let tiny = ResultStore::in_memory().with_memory_budget(1);
        tiny.put(keys[0], &outputs[0]);
        assert!(tiny.get(keys[0], &cfg, &jobs[0]).is_some());
    }

    #[test]
    fn disk_tier_backfills_entries_the_memory_tier_evicted() {
        let dir = temp_dir("memo-backfill");
        let cfg = ExperimentConfig::quick();
        let jobs: Vec<JobSpec> = [presets::web_apache(), presets::oltp_db2()]
            .into_iter()
            .map(|spec| JobSpec::replay(spec, PrefetcherKind::Baseline))
            .collect();
        let outputs: Vec<JobOutput> = jobs.iter().map(sample_output).collect();
        let one_entry = outputs[0].encode().len() as u64;
        // Room for one entry only: the second put evicts the first.
        let store = ResultStore::open(&dir)
            .unwrap()
            .with_memory_budget(one_entry * 3 / 2);
        let keys: Vec<Fingerprint> = jobs.iter().map(|job| store.job_key(&cfg, job)).collect();
        store.put(keys[0], &outputs[0]);
        store.put(keys[1], &outputs[1]);
        assert_eq!(store.stats().memo_evictions, 1);
        // The evicted output is still served — from disk — and re-promoted.
        assert!(store.get(keys[0], &cfg, &jobs[0]).is_some());
        let stats = store.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 0, "the disk tier subsumes the eviction");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_rejects_outputs_that_mismatch_the_job() {
        let dir = temp_dir("verify");
        let cfg = ExperimentConfig::quick();
        let job = JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline);
        let store = ResultStore::open(&dir).unwrap();
        let key = store.job_key(&cfg, &job);
        // Persist an output whose labels do not match the job (as if the
        // labelling scheme changed since the file was written).
        let mut wrong = sample_output(&job).into_sim();
        wrong.workload = "Somebody Else".into();
        store.put(key, &JobOutput::Sim(wrong));

        let trusting = ResultStore::open(&dir).unwrap();
        assert!(trusting.get(key, &cfg, &job).is_some());
        let verifying = ResultStore::open(&dir).unwrap().with_verify(true);
        assert!(verifying.get(key, &cfg, &job).is_none());
        assert_eq!(verifying.stats().corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
