//! Deterministic job cost modeling for campaign scheduling.
//!
//! A campaign grid is wildly heterogeneous: a fig5 sweep cell replaying a
//! 2^20-entry history dwarfs a table2 baseline replay, so both the
//! in-process pool and an `fp % N` shard fleet end up rate-limited by
//! whichever unlucky worker drew the expensive cells. This module predicts
//! each job's cost *before* running anything, which unlocks two schedulers:
//!
//! * **LPT pool ordering** — `run_figures_streaming` submits jobs
//!   longest-predicted-first, so stragglers start early and the pool tail
//!   shrinks (rendering is unaffected: figures still emit in plan order).
//! * **Cost-balanced sharding** — [`partition`] greedily bin-packs the
//!   distinct job grid into shards of near-equal *predicted work* instead
//!   of equal job count (`--shard-balance cost`).
//!
//! Both uses demand strict determinism — every shard of a fleet must
//! compute the byte-identical partition without coordinating — so the
//! model is pure integer arithmetic over the job description: trace
//! length, prefetcher family, table/history geometry (log-scaled), and
//! warm-up fraction. The analytic weights are deliberately coarse; what
//! matters for scheduling is the *ordering and rough ratio* of costs, not
//! their absolute scale.
//!
//! The model is also *calibratable*: every shard manifest since v2 embeds
//! measured per-job [`ShardJobTiming`] records, and
//! [`JobCostModel::calibrated`] fits one scale factor per prefetcher
//! family from any prior manifest directory (`--calibrate-from`). The fit
//! is a ratio of sums, so it is independent of record order and identical
//! on every process given the same manifests.

use super::job::{JobSpec, JobTask};
use super::shard;
use crate::runner::PrefetcherKind;
use crate::system::ExperimentConfig;
use std::collections::HashMap;
use std::path::Path;
use stms_types::{Fingerprint, ShardBalance, ShardJobTiming, ShardManifest};

/// Number of cost classes (one per prefetcher family plus miss
/// collection); each gets an independent calibration scale.
const CLASSES: usize = 6;

/// Floor of the integer log2 used for table-size features (log2(0) and
/// log2(1) both map to 0).
fn log2(n: usize) -> u64 {
    (usize::BITS - 1 - n.max(1).leading_zeros()) as u64
}

/// Which calibration class a job belongs to.
fn class_of(job: &JobSpec) -> usize {
    match &job.task {
        JobTask::CollectMisses => 0,
        JobTask::Replay(PrefetcherKind::Baseline) => 1,
        JobTask::Replay(PrefetcherKind::IdealTms { .. }) => 2,
        JobTask::Replay(PrefetcherKind::Stms(_)) => 3,
        JobTask::Replay(PrefetcherKind::FixedDepth(_)) => 4,
        JobTask::Replay(PrefetcherKind::Markov(_)) => 5,
    }
}

/// The analytic per-access weight of a job, in abstract model units. Table
/// and history sizes enter log-scaled (lookups are hash/tree-shaped, and
/// bigger tables mostly cost cache locality, not instructions).
fn per_access_weight(job: &JobSpec) -> u64 {
    match &job.task {
        JobTask::CollectMisses => 60,
        JobTask::Replay(kind) => match kind {
            PrefetcherKind::Baseline => 100,
            PrefetcherKind::IdealTms {
                index_entries,
                history_entries,
            } => {
                let index = index_entries.unwrap_or(*history_entries);
                140 + 4 * log2(*history_entries) + 2 * log2(index)
            }
            PrefetcherKind::Stms(c) => {
                // Probabilistic index updates skip work proportionally to
                // the sampling probability; fixed-point via rounded milli
                // units keeps the arithmetic integral and deterministic.
                let sampling_milli = (c.sampling_probability * 1000.0).round() as u64;
                180 + 6 * log2(c.history_entries_per_core)
                    + 4 * log2(c.index_buckets)
                    + 30 * sampling_milli / 1000
            }
            PrefetcherKind::FixedDepth(c) => 120 + 4 * log2(c.entries) + 6 * c.depth as u64,
            PrefetcherKind::Markov(c) => 120 + 4 * log2(c.entries) + 6 * c.successors as u64,
        },
    }
}

/// One class's calibration scale, applied as `analytic * num / den`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scale {
    num: u128,
    den: u128,
}

impl Scale {
    const IDENTITY: Scale = Scale { num: 1, den: 1 };

    fn apply(self, analytic: u64) -> u64 {
        let scaled = u128::from(analytic) * self.num / self.den;
        u64::try_from(scaled).unwrap_or(u64::MAX).max(1)
    }
}

/// What a calibration fit measured, for the `scheduling:` summary line and
/// the `sched.calibration_error_milli` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Calibration {
    /// Timing records that matched a job of the current grid.
    pub samples: u64,
    /// Mean absolute prediction error of the *calibrated* model against
    /// the matched records, in per-mille of observed time (123 = 12.3%).
    pub error_milli: u64,
}

/// A deterministic predictor of job execution cost.
///
/// The analytic default ranks jobs by structural cost; a calibrated model
/// additionally rescales each prefetcher family to measured wall-clock
/// nanoseconds from prior [`ShardJobTiming`] records. Predictions are pure
/// functions of `(config, job)` — no clocks, no floats beyond one rounded
/// fixed-point conversion — so every process computes identical values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCostModel {
    scales: [Scale; CLASSES],
}

impl Default for JobCostModel {
    fn default() -> Self {
        Self::analytic()
    }
}

impl JobCostModel {
    /// The uncalibrated model: analytic weights, identity scales.
    pub fn analytic() -> Self {
        JobCostModel {
            scales: [Scale::IDENTITY; CLASSES],
        }
    }

    /// Fits per-family scales from measured timings, matching records to
    /// the current grid by job fingerprint (`grid[i].0` must be the
    /// fingerprint of `grid[i].1` under the calibrating configuration — a
    /// record from a different configuration simply matches nothing).
    /// Families without a matched record fall back to the grid-wide global
    /// scale, and to the identity when nothing matched at all.
    pub fn calibrated(
        cfg: &ExperimentConfig,
        grid: &[(Fingerprint, JobSpec)],
        timings: &[ShardJobTiming],
    ) -> (Self, Calibration) {
        let analytic = Self::analytic();
        let features: HashMap<Fingerprint, (usize, u64)> = grid
            .iter()
            .map(|(fingerprint, job)| {
                (
                    *fingerprint,
                    (class_of(job), analytic.predicted_ns(cfg, job)),
                )
            })
            .collect();
        let mut observed = [0u128; CLASSES];
        let mut predicted = [0u128; CLASSES];
        let mut samples = 0u64;
        for timing in timings {
            if let Some(&(class, analytic_ns)) = features.get(&timing.fingerprint) {
                observed[class] += u128::from(timing.run_ns);
                predicted[class] += u128::from(analytic_ns);
                samples += 1;
            }
        }
        let global_obs: u128 = observed.iter().sum();
        let global_pred: u128 = predicted.iter().sum();
        let global = if global_obs > 0 && global_pred > 0 {
            Scale {
                num: global_obs,
                den: global_pred,
            }
        } else {
            Scale::IDENTITY
        };
        let mut scales = [global; CLASSES];
        for class in 0..CLASSES {
            if observed[class] > 0 && predicted[class] > 0 {
                scales[class] = Scale {
                    num: observed[class],
                    den: predicted[class],
                };
            }
        }
        let model = JobCostModel { scales };
        // Residual error of the fitted model against the records it was
        // fitted on — an in-sample figure, but enough to tell a usable
        // calibration from a mismatched one in the run summary.
        let mut abs_err: u128 = 0;
        let mut obs_total: u128 = 0;
        for timing in timings {
            if let Some(&(class, analytic_ns)) = features.get(&timing.fingerprint) {
                let prediction = u128::from(model.scales[class].apply(analytic_ns));
                abs_err += prediction.abs_diff(u128::from(timing.run_ns));
                obs_total += u128::from(timing.run_ns);
            }
        }
        let error_milli = (abs_err * 1000)
            .checked_div(obs_total)
            .map(|milli| u64::try_from(milli).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let calibration = Calibration {
            samples,
            error_milli,
        };
        if stms_obs::is_enabled() {
            stms_obs::gauge("sched.calibration_error_milli").set(error_milli);
            stms_obs::gauge("sched.calibration_samples").set(samples);
        }
        (model, calibration)
    }

    /// Predicts the cost of one job in model nanoseconds (exactly
    /// nanoseconds once calibrated; an arbitrary consistent unit before).
    pub fn predicted_ns(&self, cfg: &ExperimentConfig, job: &JobSpec) -> u64 {
        let accesses = cfg.accesses as u64;
        // Warm-up accesses skip statistics bookkeeping, so a long warm-up
        // shaves a bounded slice off the per-access cost (fixed-point, in
        // milli units; warmup_fraction is validated to [0, 1)).
        let warmup_milli = (cfg.sim.warmup_fraction * 1000.0).round() as u64;
        let base = accesses.saturating_mul(per_access_weight(job));
        let adjusted = (u128::from(base) * u128::from(4000 - warmup_milli) / 4000) as u64;
        self.scales[class_of(job)].apply(adjusted.max(1))
    }
}

/// A full deterministic assignment of the distinct job grid to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// 1-based owning shard of each distinct job, parallel to the grid.
    pub owners: Vec<u32>,
    /// Predicted cost assigned to each shard (index 0 = shard 1) — the
    /// per-shard makespan estimate the `scheduling:` line reports.
    pub shard_cost_ns: Vec<u128>,
}

/// Partitions the distinct job grid across `count` shards.
///
/// * [`ShardBalance::Count`] reproduces the historical modulo partition
///   (`fingerprint % count`), byte-compatible with every v2 fleet.
/// * [`ShardBalance::Cost`] runs greedy longest-processing-time
///   bin-packing: jobs sorted by (predicted cost desc, fingerprint asc)
///   are assigned one by one to the currently lightest shard (ties to the
///   lowest index). Both the sort key and the tie-breaks are total orders,
///   so the assignment is a pure function of the grid *set* — independent
///   of job-list order and identical across processes, which is what lets
///   shards partition without coordinating.
pub fn partition(
    model: &JobCostModel,
    cfg: &ExperimentConfig,
    distinct: &[(Fingerprint, JobSpec)],
    count: u32,
    balance: ShardBalance,
) -> Partition {
    let costs: Vec<u64> = distinct
        .iter()
        .map(|(_, job)| model.predicted_ns(cfg, job))
        .collect();
    let mut owners = vec![0u32; distinct.len()];
    let mut shard_cost_ns = vec![0u128; count as usize];
    match balance {
        ShardBalance::Count => {
            for (i, (fingerprint, _)) in distinct.iter().enumerate() {
                let owner = (fingerprint.raw() % u128::from(count)) as u32 + 1;
                owners[i] = owner;
                shard_cost_ns[(owner - 1) as usize] += u128::from(costs[i]);
            }
        }
        ShardBalance::Cost => {
            let mut order: Vec<usize> = (0..distinct.len()).collect();
            order.sort_by(|&a, &b| {
                costs[b]
                    .cmp(&costs[a])
                    .then_with(|| distinct[a].0.cmp(&distinct[b].0))
            });
            for i in order {
                let lightest = shard_cost_ns
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &cost)| cost)
                    .map(|(index, _)| index)
                    .expect("count >= 1");
                owners[i] = lightest as u32 + 1;
                shard_cost_ns[lightest] += u128::from(costs[i]);
            }
        }
    }
    Partition {
        owners,
        shard_cost_ns,
    }
}

/// Reads the timing records out of every shard manifest in `dir` — the
/// `--calibrate-from` loader. Streams each manifest ([`ShardManifest::scan`])
/// so calibration never materializes payloads, and accepts manifests from
/// *any* configuration or shard layout: records that don't match the
/// current grid simply won't calibrate anything.
///
/// # Errors
///
/// A usage-style message when the directory has no manifests or one of
/// them is unreadable.
pub fn load_timings(dir: &Path) -> Result<Vec<ShardJobTiming>, String> {
    let paths = shard::list_manifests(dir).map_err(|e| e.to_string())?;
    if paths.is_empty() {
        return Err(format!(
            "no shard manifest (shard-*.stms) found in `{}`",
            dir.display()
        ));
    }
    let mut timings = Vec::new();
    for path in paths {
        let file = std::fs::File::open(&path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let scan = ShardManifest::scan(std::io::BufReader::new(file), |_| {})
            .map_err(|e| format!("unusable shard manifest `{}`: {e}", path.display()))?;
        timings.extend(scan.timings);
    }
    // Deterministic regardless of directory enumeration quirks.
    timings.sort_by_key(|t| (t.fingerprint, t.queue_ns, t.run_ns));
    Ok(timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    fn grid(cfg: &ExperimentConfig) -> Vec<(Fingerprint, JobSpec)> {
        let jobs = vec![
            JobSpec::collect_misses(presets::web_apache()),
            JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline),
            JobSpec::replay(presets::web_apache(), PrefetcherKind::ideal()),
            JobSpec::replay(
                presets::web_zeus(),
                PrefetcherKind::stms_with_sampling(0.25),
            ),
        ];
        shard::distinct_jobs(cfg, &jobs)
    }

    #[test]
    fn analytic_costs_rank_structural_weight() {
        let cfg = ExperimentConfig::quick();
        let model = JobCostModel::analytic();
        let collect = model.predicted_ns(&cfg, &JobSpec::collect_misses(presets::web_apache()));
        let baseline = model.predicted_ns(
            &cfg,
            &JobSpec::replay(presets::web_apache(), PrefetcherKind::Baseline),
        );
        let small_ideal = model.predicted_ns(
            &cfg,
            &JobSpec::replay(
                presets::web_apache(),
                PrefetcherKind::IdealTms {
                    index_entries: None,
                    history_entries: 1 << 10,
                },
            ),
        );
        let big_ideal = model.predicted_ns(
            &cfg,
            &JobSpec::replay(
                presets::web_apache(),
                PrefetcherKind::IdealTms {
                    index_entries: None,
                    history_entries: 1 << 20,
                },
            ),
        );
        assert!(collect < baseline, "{collect} vs {baseline}");
        assert!(baseline < small_ideal, "{baseline} vs {small_ideal}");
        assert!(small_ideal < big_ideal, "{small_ideal} vs {big_ideal}");
        // Deterministic: same inputs, same number.
        assert_eq!(
            big_ideal,
            JobCostModel::analytic().predicted_ns(
                &cfg,
                &JobSpec::replay(
                    presets::web_apache(),
                    PrefetcherKind::IdealTms {
                        index_entries: None,
                        history_entries: 1 << 20,
                    },
                ),
            )
        );
    }

    #[test]
    fn calibration_rescales_matched_families_and_reports_error() {
        let cfg = ExperimentConfig::quick();
        let grid = grid(&cfg);
        let analytic = JobCostModel::analytic();
        // Perfect oracle: observed = 7x the analytic prediction for every
        // job. The fitted model should predict exactly 7x with zero error.
        let timings: Vec<ShardJobTiming> = grid
            .iter()
            .map(|(fingerprint, job)| ShardJobTiming {
                fingerprint: *fingerprint,
                queue_ns: 1,
                run_ns: analytic.predicted_ns(&cfg, job) * 7,
            })
            .collect();
        let (model, calibration) = JobCostModel::calibrated(&cfg, &grid, &timings);
        assert_eq!(calibration.samples, grid.len() as u64);
        assert_eq!(calibration.error_milli, 0);
        for (_, job) in &grid {
            assert_eq!(
                model.predicted_ns(&cfg, job),
                analytic.predicted_ns(&cfg, job) * 7
            );
        }
        // Unmatched records calibrate nothing.
        let stranger = vec![ShardJobTiming {
            fingerprint: Fingerprint::from_raw(42),
            queue_ns: 0,
            run_ns: 1_000_000,
        }];
        let (model, calibration) = JobCostModel::calibrated(&cfg, &grid, &stranger);
        assert_eq!(calibration.samples, 0);
        assert_eq!(model, analytic);
    }

    #[test]
    fn calibration_is_order_independent() {
        let cfg = ExperimentConfig::quick();
        let grid = grid(&cfg);
        let mut timings: Vec<ShardJobTiming> = grid
            .iter()
            .enumerate()
            .map(|(i, (fingerprint, _))| ShardJobTiming {
                fingerprint: *fingerprint,
                queue_ns: i as u64,
                run_ns: 1_000_000 + 313 * i as u64,
            })
            .collect();
        let (forward, _) = JobCostModel::calibrated(&cfg, &grid, &timings);
        timings.reverse();
        let (backward, _) = JobCostModel::calibrated(&cfg, &grid, &timings);
        assert_eq!(forward, backward);
    }

    #[test]
    fn cost_partition_balances_better_than_modulo_on_a_skewed_grid() {
        let cfg = ExperimentConfig::quick();
        // A grid dominated by a few huge ideal-TMS sweep cells plus many
        // cheap baselines — the shape that starves modulo sharding.
        let mut jobs = vec![];
        for shift in [10usize, 14, 18, 20, 20, 20] {
            jobs.push(JobSpec::replay(
                presets::web_apache(),
                PrefetcherKind::IdealTms {
                    index_entries: None,
                    history_entries: 1 << shift,
                },
            ));
        }
        for preset in [
            presets::web_apache(),
            presets::web_zeus(),
            presets::oltp_db2(),
            presets::oltp_oracle(),
        ] {
            jobs.push(JobSpec::replay(preset.clone(), PrefetcherKind::Baseline));
            jobs.push(JobSpec::collect_misses(preset));
        }
        let distinct = shard::distinct_jobs(&cfg, &jobs);
        let model = JobCostModel::analytic();
        let modulo = partition(&model, &cfg, &distinct, 3, ShardBalance::Count);
        let balanced = partition(&model, &cfg, &distinct, 3, ShardBalance::Cost);
        let max = |p: &Partition| *p.shard_cost_ns.iter().max().unwrap();
        assert!(
            max(&balanced) <= max(&modulo),
            "LPT makespan {} must not exceed modulo {}",
            max(&balanced),
            max(&modulo)
        );
        // Every job owned exactly once, by a valid shard.
        for p in [&modulo, &balanced] {
            assert_eq!(p.owners.len(), distinct.len());
            assert!(p.owners.iter().all(|&o| (1..=3).contains(&o)));
            let total: u128 = p.shard_cost_ns.iter().sum();
            let expected: u128 = distinct
                .iter()
                .map(|(_, job)| u128::from(model.predicted_ns(&cfg, job)))
                .sum();
            assert_eq!(total, expected);
        }
    }
}
