//! A two-tier (memory + optional disk) cache of generated workload traces.
//!
//! Every figure of the paper replays some subset of the same eight workload
//! traces, but the seed driver regenerated the trace inside each figure cell
//! (once per `(figure, sweep point, workload)` — dozens of regenerations per
//! campaign). [`TraceStore`] keys generated traces by the full
//! [`WorkloadSpec`] identity (every generator parameter, including trace
//! length and seed) and hands out [`SharedTrace`] handles, so each distinct
//! trace is generated exactly once per campaign no matter how many jobs
//! request it, and matched comparisons across figures replay bit-identical
//! inputs.
//!
//! # The disk tier
//!
//! Just as the paper's meta-data is practical because it lives *off-chip*
//! and persists across program runs, a store opened with
//! [`TraceStore::with_disk_tier`] persists each generated trace *across
//! campaign processes*: the [`stms_types::Trace::encode`] blob is sealed in
//! a versioned [`stms_types::blob`] envelope and written to
//! `trace-<fingerprint>.stms`, where the fingerprint is the stable
//! [`stms_types::Fingerprintable`] content fingerprint of the generating
//! spec (never `std::hash::Hash`, whose output changes across builds). A
//! later process re-reads the file instead of regenerating; any stale,
//! truncated or corrupt file fails the envelope or codec checks and is
//! silently evicted and regenerated. An optional byte budget
//! ([`DiskTierConfig::max_bytes`]) evicts the oldest entries after each
//! write, and [`TraceStoreStats`] accounts for every disk interaction.
//!
//! ```
//! use stms_sim::campaign::{DiskTierConfig, TraceStore};
//! use stms_workloads::presets;
//!
//! let dir = std::env::temp_dir().join("stms-doc-trace-store-disk-tier");
//! std::fs::remove_dir_all(&dir).ok(); // start cold
//!
//! // First process: generates the trace and persists it.
//! let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
//! let spec = presets::web_apache();
//! let first = cold.get_or_generate(&spec, 2_000);
//! assert_eq!(cold.stats().generated, 1);
//! assert_eq!(cold.stats().disk_writes, 1);
//!
//! // "Second process" (a fresh store on the same directory): no generation.
//! let warm = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
//! let second = warm.get_or_generate(&spec, 2_000);
//! assert_eq!(warm.stats().generated, 0);
//! assert_eq!(warm.stats().disk_hits, 1);
//! assert_eq!(*first, *second); // bit-identical replay input
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use stms_types::{blob, Fingerprint, Fingerprintable, SharedTrace, Trace, TRACE_CODEC_VERSION};
use stms_workloads::{generate, WorkloadSpec};

/// Counters describing how a [`TraceStore`] was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Requests served from an already-present memory entry (including
    /// requests that waited while another worker generated the trace).
    pub hits: u64,
    /// Requests that created a new memory entry.
    pub misses: u64,
    /// Traces actually generated. Always equals `misses` minus `disk_hits`
    /// once the store is idle: each new entry is loaded from disk or
    /// generated exactly once, even under concurrent first requests.
    pub generated: u64,
    /// Memory misses served by decoding a persisted trace file.
    pub disk_hits: u64,
    /// Memory misses that found no usable trace file (counted only when a
    /// disk tier is configured).
    pub disk_misses: u64,
    /// Unusable trace files evicted after failing the envelope, codec or
    /// verification checks (a subset of `disk_misses`).
    pub disk_corrupt: u64,
    /// Trace files written by this store.
    pub disk_writes: u64,
    /// Trace files evicted to respect [`DiskTierConfig::max_bytes`].
    pub disk_evictions: u64,
    /// Trace-file size accounting: with a byte budget configured, the bytes
    /// resident in the directory after the most recent write/eviction scan;
    /// without one, the cumulative bytes written by this store (the
    /// directory is not rescanned on every write).
    pub disk_bytes: u64,
}

/// Configuration of the persistent tier of a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct DiskTierConfig {
    /// Directory holding the `trace-<fingerprint>.stms` files (created on
    /// open; may be shared with a result cache and across processes).
    pub dir: PathBuf,
    /// Byte budget for the directory's trace files. After each write the
    /// oldest entries are evicted until the total is back under budget.
    /// `None` (the default) never evicts.
    pub max_bytes: Option<u64>,
    /// When set, a decoded trace is additionally cross-checked against the
    /// requesting spec (trace length, workload name, seed, core count), so
    /// a file whose content was produced by a different generator version
    /// is detected and regenerated rather than trusted.
    pub verify: bool,
}

impl DiskTierConfig {
    /// A disk tier on `dir` with no byte budget and no deep verification.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskTierConfig {
            dir: dir.into(),
            max_bytes: None,
            verify: false,
        }
    }

    /// Returns a copy with a byte budget.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Returns a copy with deep verification enabled.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
}

/// A shared, thread-safe store of generated traces keyed by workload spec,
/// with an optional persistent tier (see the module-level docs above).
///
/// # Example
///
/// ```
/// use stms_sim::campaign::TraceStore;
/// use stms_workloads::presets;
///
/// let store = TraceStore::new();
/// let a = store.get_or_generate(&presets::web_apache(), 5_000);
/// let b = store.get_or_generate(&presets::web_apache(), 5_000);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // one generation, shared
/// assert_eq!(store.stats().generated, 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceStore {
    entries: Mutex<HashMap<WorkloadSpec, Arc<OnceLock<SharedTrace>>>>,
    disk: Option<DiskTierConfig>,
    hits: AtomicU64,
    misses: AtomicU64,
    generated: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_corrupt: AtomicU64,
    disk_writes: AtomicU64,
    disk_evictions: AtomicU64,
    disk_bytes: AtomicU64,
}

/// File-name prefix of persisted traces (distinguishes them from result
/// files sharing the same cache directory).
const TRACE_FILE_PREFIX: &str = "trace-";
/// Shared extension of every persisted cache file.
pub(crate) const CACHE_FILE_EXT: &str = "stms";

/// A temp-file name unique across processes (pid) *and* across stores and
/// threads within one process (counter), so concurrent writers of the same
/// key can never interleave on one temp file; the final `rename` is atomic
/// and last-writer-wins with identical content.
pub(crate) fn unique_tmp_name(key: Fingerprint) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        ".tmp-{}-{}-{}.{CACHE_FILE_EXT}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
        key.to_hex()
    )
}

/// Reads and unseals one cache file. Shared by both persistent tiers so
/// the envelope-handling semantics can never diverge between them.
///
/// * `Ok(None)` — no file: a plain cold miss, nothing to evict;
/// * `Err(())` — the file exists but fails the envelope checks: the caller
///   counts it corrupt and evicts it;
/// * `Ok(Some(payload))` — the verified payload bytes.
pub(crate) fn read_sealed(
    path: &Path,
    codec_version: u16,
    key: Fingerprint,
) -> Result<Option<Vec<u8>>, ()> {
    let Ok(bytes) = fs::read(path) else {
        return Ok(None);
    };
    match blob::open(&bytes, codec_version, key) {
        Ok(payload) => Ok(Some(payload.to_vec())),
        Err(_) => Err(()),
    }
}

/// Seals `payload` and atomically publishes it at `path` (unique temp file
/// in `dir`, then `rename`). Shared by both persistent tiers. Returns
/// whether the file was published; failures leave no temp litter and are
/// swallowed by callers — the cache is an optimization, never a
/// correctness dependency.
pub(crate) fn write_sealed(
    dir: &Path,
    path: &Path,
    codec_version: u16,
    key: Fingerprint,
    payload: &[u8],
) -> bool {
    let sealed = blob::seal(codec_version, key, payload);
    let tmp = dir.join(unique_tmp_name(key));
    match fs::write(&tmp, &sealed).and_then(|()| fs::rename(&tmp, path)) {
        Ok(()) => true,
        Err(_) => {
            let _ = fs::remove_file(&tmp);
            false
        }
    }
}

impl TraceStore {
    /// Creates an empty, memory-only store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store whose entries persist under `config.dir`, creating
    /// the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the cache directory.
    pub fn with_disk_tier(config: DiskTierConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        Ok(TraceStore {
            disk: Some(config),
            ..Self::default()
        })
    }

    /// The persistent tier's directory, when one is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_ref().map(|d| d.dir.as_path())
    }

    /// Returns the trace for `spec` at the campaign's trace length, loading
    /// it from the disk tier or generating it on first request.
    ///
    /// ```
    /// use stms_sim::campaign::TraceStore;
    /// use stms_workloads::{generate, presets};
    ///
    /// let store = TraceStore::new();
    /// let spec = presets::oltp_db2();
    /// let trace = store.get_or_generate(&spec, 3_000);
    /// // The cached handle is bit-identical to direct generation…
    /// assert_eq!(*trace, generate(&spec.clone().with_accesses(3_000)));
    /// // …and later requests share it instead of regenerating.
    /// let again = store.get_or_generate(&spec, 3_000);
    /// assert!(std::sync::Arc::ptr_eq(&trace, &again));
    /// ```
    ///
    /// Concurrent first requests for the same key resolve the trace exactly
    /// once: the first requester loads or generates while the others block
    /// on the entry's cell and then share the result. Requests for different
    /// keys never contend beyond the brief map lookup. A freshly generated
    /// trace is persisted before the call returns, so concurrent *processes*
    /// sharing one directory regenerate at most once each, and any unusable
    /// cache file is evicted and regenerated instead of surfacing an error.
    pub fn get_or_generate(&self, spec: &WorkloadSpec, accesses: usize) -> SharedTrace {
        let key = spec.clone().with_accesses(accesses);
        let cell = {
            let mut map = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                Some(cell) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(cell)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    map.insert(key.clone(), Arc::clone(&cell));
                    cell
                }
            }
        };
        // Resolution happens outside the map lock so other keys proceed.
        Arc::clone(cell.get_or_init(|| self.resolve(&key)))
    }

    /// Loads `key` from the disk tier or generates (and persists) it.
    fn resolve(&self, key: &WorkloadSpec) -> SharedTrace {
        let Some(disk) = &self.disk else {
            self.generated.fetch_add(1, Ordering::Relaxed);
            return generate(key).into_shared();
        };
        let fingerprint = key.fingerprint();
        if let Some(trace) = self.load_from_disk(disk, key, fingerprint) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return trace.into_shared();
        }
        self.disk_misses.fetch_add(1, Ordering::Relaxed);
        self.generated.fetch_add(1, Ordering::Relaxed);
        let trace = generate(key);
        self.persist(disk, &trace, fingerprint);
        trace.into_shared()
    }

    /// Attempts to read, unseal and decode the cache file for `key`,
    /// evicting it on any failure.
    fn load_from_disk(
        &self,
        disk: &DiskTierConfig,
        key: &WorkloadSpec,
        fingerprint: Fingerprint,
    ) -> Option<Trace> {
        let path = trace_path(&disk.dir, fingerprint);
        let payload = match read_sealed(&path, TRACE_CODEC_VERSION, fingerprint) {
            Ok(Some(payload)) => payload,
            Ok(None) => return None, // plain cold miss
            Err(()) => {
                self.evict_corrupt(&path);
                return None;
            }
        };
        let trace = Trace::decode(&payload)
            .ok()
            .filter(|trace| !disk.verify || trace_matches_spec(trace, key));
        if trace.is_none() {
            // Stale or corrupt behind a valid envelope: evict so the
            // regenerated trace replaces it.
            self.evict_corrupt(&path);
        }
        trace
    }

    fn evict_corrupt(&self, path: &Path) {
        self.disk_corrupt.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
    }

    /// Writes the sealed trace blob atomically, then enforces the byte
    /// budget. Persistence failures are deliberately swallowed: the cache
    /// is an optimization, never a correctness dependency.
    fn persist(&self, disk: &DiskTierConfig, trace: &Trace, fingerprint: Fingerprint) {
        let path = trace_path(&disk.dir, fingerprint);
        let payload = trace.encode();
        if !write_sealed(&disk.dir, &path, TRACE_CODEC_VERSION, fingerprint, &payload) {
            return;
        }
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(disk, &path, blob::sealed_len(payload.len()) as u64);
    }

    /// Evicts the oldest trace files until the directory's trace bytes fit
    /// the budget again (never evicting the file just written), and updates
    /// the resident-bytes gauge. Without a budget there is nothing to
    /// evict, so the gauge is advanced without scanning the directory — a
    /// shared cache directory would otherwise pay an O(files) metadata scan
    /// per write.
    fn enforce_budget(&self, disk: &DiskTierConfig, just_written: &Path, written_bytes: u64) {
        let Some(budget) = disk.max_bytes else {
            self.disk_bytes.fetch_add(written_bytes, Ordering::Relaxed);
            return;
        };
        let mut files = match list_trace_files(&disk.dir) {
            Ok(files) => files,
            Err(_) => return,
        };
        let mut total: u64 = files.iter().map(|f| f.bytes).sum();
        files.sort_by_key(|f| f.modified);
        for file in &files {
            if total <= budget || file.path == just_written {
                continue;
            }
            if fs::remove_file(&file.path).is_ok() {
                self.disk_evictions.fetch_add(1, Ordering::Relaxed);
                total -= file.bytes;
            }
        }
        self.disk_bytes.store(total, Ordering::Relaxed);
    }

    /// Number of distinct traces currently cached in memory (including any
    /// still being resolved).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the memory tier holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usage counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_evictions: self.disk_evictions.load(Ordering::Relaxed),
            disk_bytes: self.disk_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached trace from the memory tier and resets the
    /// counters (frees the memory of a finished campaign without discarding
    /// the store). Persisted files are left in place — they are the point
    /// of the disk tier.
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        for counter in [
            &self.hits,
            &self.misses,
            &self.generated,
            &self.disk_hits,
            &self.disk_misses,
            &self.disk_corrupt,
            &self.disk_writes,
            &self.disk_evictions,
            &self.disk_bytes,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// Path of the persisted trace for a spec fingerprint.
fn trace_path(dir: &Path, fingerprint: Fingerprint) -> PathBuf {
    dir.join(format!(
        "{TRACE_FILE_PREFIX}{}.{CACHE_FILE_EXT}",
        fingerprint.to_hex()
    ))
}

/// Deep verification: the decoded trace really is what generating `key`
/// would produce.
fn trace_matches_spec(trace: &Trace, key: &WorkloadSpec) -> bool {
    trace.len() == key.accesses
        && trace.meta().workload == key.name
        && trace.meta().seed == key.seed
        && trace.meta().cores == key.cores
}

struct CacheFile {
    path: PathBuf,
    bytes: u64,
    modified: std::time::SystemTime,
}

fn list_trace_files(dir: &Path) -> io::Result<Vec<CacheFile>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with(TRACE_FILE_PREFIX) || !name.ends_with(&format!(".{CACHE_FILE_EXT}")) {
            continue;
        }
        let meta = entry.metadata()?;
        files.push(CacheFile {
            path: entry.path(),
            bytes: meta.len(),
            modified: meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH),
        });
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stms-trace-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn caches_by_full_spec_identity() {
        let store = TraceStore::new();
        let spec = presets::web_apache();

        let first = store.get_or_generate(&spec, 4_000);
        let second = store.get_or_generate(&spec, 4_000);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.len(), 4_000);

        // A different trace length, seed, or workload is a different key.
        let longer = store.get_or_generate(&spec, 8_000);
        assert!(!Arc::ptr_eq(&first, &longer));
        let reseeded = store.get_or_generate(&spec.clone().with_seed(99), 4_000);
        assert!(!Arc::ptr_eq(&first, &reseeded));
        let other = store.get_or_generate(&presets::sci_ocean(), 4_000);
        assert!(!Arc::ptr_eq(&first, &other));

        assert_eq!(store.len(), 4);
        let stats = store.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.generated, 4);
        assert_eq!(stats.hits, 1);
        // No disk tier: disk counters stay untouched.
        assert_eq!(stats.disk_hits + stats.disk_misses + stats.disk_writes, 0);
    }

    #[test]
    fn cached_trace_is_bit_identical_to_direct_generation() {
        let store = TraceStore::new();
        let spec = presets::oltp_db2();
        let cached = store.get_or_generate(&spec, 3_000);
        let direct = generate(&spec.clone().with_accesses(3_000));
        assert_eq!(*cached, direct);
        assert_eq!(cached.encode(), direct.encode());
    }

    #[test]
    fn clear_resets_contents_and_counters() {
        let store = TraceStore::new();
        assert!(store.is_empty());
        store.get_or_generate(&presets::web_apache(), 1_000);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats(), TraceStoreStats::default());
    }

    #[test]
    fn disk_tier_round_trips_across_stores() {
        let dir = temp_dir("round-trip");
        let spec = presets::web_apache();

        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        let generated = cold.get_or_generate(&spec, 2_000);
        let stats = cold.stats();
        assert_eq!(
            (stats.generated, stats.disk_misses, stats.disk_writes),
            (1, 1, 1)
        );
        assert!(stats.disk_bytes > 0);

        let warm = TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true)).unwrap();
        let loaded = warm.get_or_generate(&spec, 2_000);
        let stats = warm.stats();
        assert_eq!((stats.generated, stats.disk_hits), (0, 1));
        assert_eq!(*generated, *loaded);

        // A different key is a cold miss even on a warm directory.
        let other = warm.get_or_generate(&spec, 2_500);
        assert_eq!(other.len(), 2_500);
        assert_eq!(warm.stats().generated, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_files_fall_back_to_regeneration() {
        let dir = temp_dir("corrupt");
        let spec = presets::dss_qry17();
        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        let expect = cold.get_or_generate(&spec, 1_500);

        let path = trace_path(&dir, spec.clone().with_accesses(1_500).fingerprint());
        assert!(path.is_file());
        for mutation in ["flip", "truncate", "garbage"] {
            let mut bytes = fs::read(&path).unwrap();
            match mutation {
                "flip" => {
                    let last = bytes.len() - 10;
                    bytes[last] ^= 0xff;
                }
                "truncate" => bytes.truncate(bytes.len() / 2),
                _ => bytes = b"not a sealed blob at all".to_vec(),
            }
            fs::write(&path, &bytes).unwrap();

            let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
            let regenerated = store.get_or_generate(&spec, 1_500);
            assert_eq!(*regenerated, *expect, "mutation `{mutation}`");
            let stats = store.stats();
            assert_eq!(
                (stats.disk_corrupt, stats.generated, stats.disk_writes),
                (1, 1, 1),
                "mutation `{mutation}` must evict and re-persist"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_detects_stale_content_behind_a_valid_envelope() {
        let dir = temp_dir("stale");
        let spec = presets::sci_ocean();
        let key = spec.clone().with_accesses(1_000);

        // Seal a *different* trace under this key's fingerprint (a stale
        // file from an older generator, say).
        let wrong = generate(&spec.clone().with_seed(spec.seed + 1).with_accesses(1_000));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            trace_path(&dir, key.fingerprint()),
            blob::seal(TRACE_CODEC_VERSION, key.fingerprint(), &wrong.encode()),
        )
        .unwrap();

        // Without verify the envelope looks fine and the stale trace wins…
        let trusting = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        assert_eq!(trusting.stats().disk_corrupt, 0);
        assert_eq!(*trusting.get_or_generate(&spec, 1_000), wrong);

        // …with verify the mismatch is detected and regenerated.
        let verifying =
            TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true)).unwrap();
        let fixed = verifying.get_or_generate(&spec, 1_000);
        assert_eq!(*fixed, generate(&key));
        let stats = verifying.stats();
        assert_eq!((stats.disk_corrupt, stats.generated), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_entries() {
        let dir = temp_dir("budget");
        let spec = presets::web_apache();

        // Size one entry, then budget for roughly two.
        let probe = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        probe.get_or_generate(&spec, 1_000);
        let one = probe.stats().disk_bytes;
        assert!(one > 0);

        let store =
            TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_max_bytes(one * 5 / 2))
                .unwrap();
        for accesses in [1_100, 1_200, 1_300, 1_400] {
            store.get_or_generate(&spec, accesses);
        }
        let stats = store.stats();
        assert!(
            stats.disk_evictions >= 2,
            "evictions: {}",
            stats.disk_evictions
        );
        assert!(
            stats.disk_bytes <= one * 3,
            "resident {} bytes exceeds budget",
            stats.disk_bytes
        );
        // The most recent entry always survives its own write.
        assert!(trace_path(&dir, spec.clone().with_accesses(1_400).fingerprint()).is_file());
        let _ = fs::remove_dir_all(&dir);
    }
}
