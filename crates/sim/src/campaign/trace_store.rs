//! A two-tier (memory + optional disk) cache of generated workload traces.
//!
//! Every figure of the paper replays some subset of the same eight workload
//! traces, but the seed driver regenerated the trace inside each figure cell
//! (once per `(figure, sweep point, workload)` — dozens of regenerations per
//! campaign). [`TraceStore`] keys generated traces by the full
//! [`WorkloadSpec`] identity (every generator parameter, including trace
//! length and seed) and hands out [`SharedTrace`] handles, so each distinct
//! trace is generated exactly once per campaign no matter how many jobs
//! request it, and matched comparisons across figures replay bit-identical
//! inputs.
//!
//! # The disk tier
//!
//! Just as the paper's meta-data is practical because it lives *off-chip*
//! and persists across program runs, a store opened with
//! [`TraceStore::with_disk_tier`] persists each generated trace *across
//! campaign processes*: the trace is streamed through the chunk-framed
//! codec ([`stms_types::stream`], sealed in the versioned
//! [`stms_types::blob`] envelope) into `trace-<fingerprint>.stms`, where
//! the fingerprint is the stable [`stms_types::Fingerprintable`] content
//! fingerprint of the generating spec (never `std::hash::Hash`, whose
//! output changes across builds). A later process re-reads the file instead
//! of regenerating — fully decoded on the materialized path, or chunk by
//! chunk via [`TraceStore::replay_streaming`] so a warm campaign replays a
//! trace it never fully decodes. Any stale, truncated or corrupt file fails
//! the envelope, codec or per-chunk checks and is silently evicted and
//! regenerated. An optional byte budget ([`DiskTierConfig::max_bytes`])
//! evicts the oldest entries after each write, and [`TraceStoreStats`]
//! accounts for every disk interaction.
//!
//! ```
//! use stms_sim::campaign::{DiskTierConfig, TraceStore};
//! use stms_workloads::presets;
//!
//! let dir = std::env::temp_dir().join("stms-doc-trace-store-disk-tier");
//! std::fs::remove_dir_all(&dir).ok(); // start cold
//!
//! // First process: generates the trace and persists it.
//! let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
//! let spec = presets::web_apache();
//! let first = cold.get_or_generate(&spec, 2_000);
//! assert_eq!(cold.stats().generated, 1);
//! assert_eq!(cold.stats().disk_writes, 1);
//!
//! // "Second process" (a fresh store on the same directory): no generation.
//! let warm = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
//! let second = warm.get_or_generate(&spec, 2_000);
//! assert_eq!(warm.stats().generated, 0);
//! assert_eq!(warm.stats().disk_hits, 1);
//! assert_eq!(*first, *second); // bit-identical replay input
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use stms_types::stream::pipeline::{
    ChunkPipeline, InflightBudget, PipeStage, PipelineConfig, PipelineInput, PipelineStats,
    StageObserver,
};
use stms_types::stream::{
    collect_trace, AccessChunk, ChunkedTraceWriter, TraceCodec, TraceReader, TraceSource,
    TraceStreamError, DEFAULT_CHUNK_LEN,
};
use stms_types::{
    blob, Fingerprint, Fingerprintable, SharedTrace, Trace, TraceMeta, ACCESS_RECORD_BYTES,
};
use stms_workloads::{generate, TraceGenerator, WorkloadSpec};

/// Counters describing how a [`TraceStore`] was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Requests served from an already-present memory entry (including
    /// requests that waited while another worker generated the trace).
    pub hits: u64,
    /// Requests that created a new memory entry.
    pub misses: u64,
    /// Traces actually generated. Always equals `misses` minus `disk_hits`
    /// once the store is idle: each new entry is loaded from disk or
    /// generated exactly once, even under concurrent first requests.
    pub generated: u64,
    /// Memory misses served by decoding a persisted trace file.
    pub disk_hits: u64,
    /// Memory misses that found no usable trace file (counted only when a
    /// disk tier is configured).
    pub disk_misses: u64,
    /// Unusable trace files evicted after failing the envelope, codec or
    /// verification checks (a subset of `disk_misses`).
    pub disk_corrupt: u64,
    /// Trace files written by this store.
    pub disk_writes: u64,
    /// Trace files evicted to respect [`DiskTierConfig::max_bytes`].
    pub disk_evictions: u64,
    /// Trace-file size accounting: with a byte budget configured, the bytes
    /// resident in the directory after the most recent write/eviction scan;
    /// without one, the cumulative bytes written by this store (the
    /// directory is not rescanned on every write).
    pub disk_bytes: u64,
    /// Replays served as a chunked stream ([`TraceStore::replay_streaming`])
    /// — from a disk-tier reader or straight from the generator — without
    /// ever materializing the trace.
    pub stream_replays: u64,
    /// Chunks handed to streamed replays (including chunks of attempts that
    /// later failed mid-stream).
    pub stream_chunks: u64,
    /// Streamed replay attempts abandoned because the backing file failed
    /// mid-stream (the file is evicted and the replay retried).
    pub stream_fallbacks: u64,
    /// Chunks prefetched by the staged replay pipeline across all jobs
    /// (zero when replays run serially).
    pub pipeline_chunks: u64,
    /// Times a pipeline's reader stage stalled on a full prefetch window or
    /// an exhausted in-flight byte budget.
    pub pipeline_stalls_full: u64,
    /// Times a pipeline's consumer stalled waiting for the next chunk.
    pub pipeline_stalls_empty: u64,
    /// High-water mark of decoded bytes buffered by any single pipeline.
    pub pipeline_peak_bytes: u64,
    /// Bytes read from disk by successful streamed replays (sealed file
    /// sizes, i.e. compressed bytes under codec v3).
    pub stream_disk_bytes: u64,
    /// Decoded bytes delivered by those same replays (`accesses ×`
    /// [`ACCESS_RECORD_BYTES`]). The ratio of the two is the effective
    /// compression of the on-disk codec.
    pub stream_decoded_bytes: u64,
}

/// Configuration of the persistent tier of a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct DiskTierConfig {
    /// Directory holding the `trace-<fingerprint>.stms` files (created on
    /// open; may be shared with a result cache and across processes).
    pub dir: PathBuf,
    /// Byte budget for the directory's trace files. After each write the
    /// oldest entries are evicted until the total is back under budget.
    /// `None` (the default) never evicts.
    pub max_bytes: Option<u64>,
    /// When set, a decoded trace is additionally cross-checked against the
    /// requesting spec (trace length, workload name, seed, core count), so
    /// a file whose content was produced by a different generator version
    /// is detected and regenerated rather than trusted.
    pub verify: bool,
}

impl DiskTierConfig {
    /// A disk tier on `dir` with no byte budget and no deep verification.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskTierConfig {
            dir: dir.into(),
            max_bytes: None,
            verify: false,
        }
    }

    /// Returns a copy with a byte budget.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Returns a copy with deep verification enabled.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
}

/// A shared, thread-safe store of generated traces keyed by workload spec,
/// with an optional persistent tier (see the module-level docs above).
///
/// # Example
///
/// ```
/// use stms_sim::campaign::TraceStore;
/// use stms_workloads::presets;
///
/// let store = TraceStore::new();
/// let a = store.get_or_generate(&presets::web_apache(), 5_000);
/// let b = store.get_or_generate(&presets::web_apache(), 5_000);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // one generation, shared
/// assert_eq!(store.stats().generated, 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceStore {
    entries: Mutex<HashMap<WorkloadSpec, Arc<OnceLock<SharedTrace>>>>,
    disk: Option<DiskTierConfig>,
    /// Streaming mode: replays flow chunk by chunk through
    /// [`TraceStore::replay_streaming`] instead of materializing traces.
    streaming: bool,
    /// Per-key generation locks of the streaming path (the streaming
    /// counterpart of `entries`: the first requester persists the trace
    /// while concurrent requesters for the same key wait, then stream the
    /// file).
    stream_locks: Mutex<HashMap<WorkloadSpec, Arc<Mutex<()>>>>,
    /// Keys whose chunk-framed file could not be written (full or broken
    /// cache directory); later streamed replays skip straight to the
    /// generator instead of regenerating into the void each time.
    failed_stream_writes: Mutex<HashSet<WorkloadSpec>>,
    /// Shape of the staged replay pipeline wrapped around every streamed
    /// replay. The default (serial) runs the synchronous path unchanged.
    pipeline: PipelineConfig,
    /// Campaign-global cap on decoded bytes buffered by all concurrently
    /// running pipelines — shared across every job of the `JobPool`, not
    /// per job.
    pipeline_budget: Option<Arc<InflightBudget>>,
    /// Payload codec stamped into every trace file this store writes. The
    /// reader side is version-dispatched, so a store always replays files
    /// written under either codec regardless of this setting.
    codec: TraceCodec,
    /// Telemetry forwarder for staged-pipeline stage timings, created on
    /// first instrumented replay (only while the global registry is
    /// enabled, so disabled telemetry costs the pipeline no clock reads).
    stage_observer: OnceLock<PipelineObserver>,
    hits: AtomicU64,
    misses: AtomicU64,
    generated: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_corrupt: AtomicU64,
    disk_writes: AtomicU64,
    disk_evictions: AtomicU64,
    disk_bytes: AtomicU64,
    stream_replays: AtomicU64,
    stream_chunks: AtomicU64,
    stream_fallbacks: AtomicU64,
    pipeline_chunks: AtomicU64,
    pipeline_stalls_full: AtomicU64,
    pipeline_stalls_empty: AtomicU64,
    pipeline_peak_bytes: AtomicU64,
    stream_disk_bytes: AtomicU64,
    stream_decoded_bytes: AtomicU64,
}

/// Saturating add on a stats counter. Every store counter goes through
/// here: a counter that reaches `u64::MAX` pins there instead of wrapping
/// to a small lie under concurrent updates near the limit.
fn counter_add(counter: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// Monotonic-max update for gauge-style counters (peaks).
fn counter_max(counter: &AtomicU64, n: u64) {
    counter.fetch_max(n, Ordering::Relaxed);
}

/// `Instant::now()` gated on telemetry being enabled; pair with
/// [`record_elapsed`]. Cache paths take their clock reads through this so a
/// disabled registry costs them nothing at all.
pub(crate) fn obs_started() -> Option<std::time::Instant> {
    stms_obs::is_enabled().then(std::time::Instant::now)
}

/// Records the nanoseconds elapsed since `started` into the named global
/// histogram; a `None` start (telemetry disabled at the time) records
/// nothing.
pub(crate) fn record_elapsed(name: &str, started: Option<std::time::Instant>) {
    if let Some(started) = started {
        let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        stms_obs::histogram(name).record(nanos);
    }
}

/// Forwards staged-pipeline stage timings into the global telemetry
/// registry: per-chunk prefetch (frame read / generation) and
/// checksum/decode service time, plus time a reader spent stalled on the
/// shared in-flight byte budget.
#[derive(Debug)]
struct PipelineObserver {
    prefetch: stms_obs::Histogram,
    decode: stms_obs::Histogram,
    stall: stms_obs::Histogram,
}

impl PipelineObserver {
    fn new() -> Self {
        PipelineObserver {
            prefetch: stms_obs::histogram("pipeline.prefetch_ns"),
            decode: stms_obs::histogram("pipeline.decode_ns"),
            stall: stms_obs::histogram("pipeline.budget_stall_ns"),
        }
    }
}

impl StageObserver for PipelineObserver {
    fn record(&self, stage: PipeStage, nanos: u64) {
        match stage {
            PipeStage::Prefetch => self.prefetch.record(nanos),
            PipeStage::Decode => self.decode.record(nanos),
            PipeStage::BudgetStall => self.stall.record(nanos),
        }
    }
}

/// File-name prefix of persisted traces (distinguishes them from result
/// files sharing the same cache directory).
const TRACE_FILE_PREFIX: &str = "trace-";
/// Shared extension of every persisted cache file.
pub(crate) const CACHE_FILE_EXT: &str = "stms";

/// A temp-file name unique across processes (pid) *and* across stores and
/// threads within one process (counter), so concurrent writers of the same
/// key can never interleave on one temp file; the final `rename` is atomic
/// and last-writer-wins with identical content.
pub(crate) fn unique_tmp_name(key: Fingerprint) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        ".tmp-{}-{}-{}.{CACHE_FILE_EXT}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
        key.to_hex()
    )
}

/// Reads and unseals one cache file. Shared by both persistent tiers so
/// the envelope-handling semantics can never diverge between them.
///
/// * `Ok(None)` — no file: a plain cold miss, nothing to evict;
/// * `Err(())` — the file exists but fails the envelope checks: the caller
///   counts it corrupt and evicts it;
/// * `Ok(Some(payload))` — the verified payload bytes.
pub(crate) fn read_sealed(
    path: &Path,
    codec_version: u16,
    key: Fingerprint,
) -> Result<Option<Vec<u8>>, ()> {
    let Ok(bytes) = fs::read(path) else {
        return Ok(None);
    };
    match blob::open(&bytes, codec_version, key) {
        Ok(payload) => Ok(Some(payload.to_vec())),
        Err(_) => Err(()),
    }
}

/// Seals `payload` and atomically publishes it at `path` (unique temp file
/// in `dir`, then `rename`). Shared by both persistent tiers. Returns
/// whether the file was published; failures leave no temp litter and are
/// swallowed by callers — the cache is an optimization, never a
/// correctness dependency.
pub(crate) fn write_sealed(
    dir: &Path,
    path: &Path,
    codec_version: u16,
    key: Fingerprint,
    payload: &[u8],
) -> bool {
    let sealed = blob::seal(codec_version, key, payload);
    let tmp = dir.join(unique_tmp_name(key));
    match fs::write(&tmp, &sealed).and_then(|()| fs::rename(&tmp, path)) {
        Ok(()) => true,
        Err(_) => {
            let _ = fs::remove_file(&tmp);
            false
        }
    }
}

impl TraceStore {
    /// Creates an empty, memory-only store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store whose entries persist under `config.dir`, creating
    /// the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the cache directory.
    pub fn with_disk_tier(config: DiskTierConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        Ok(TraceStore {
            disk: Some(config),
            ..Self::default()
        })
    }

    /// The persistent tier's directory, when one is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_ref().map(|d| d.dir.as_path())
    }

    /// Returns the store with streaming mode switched on or off.
    ///
    /// In streaming mode the campaign replays traces through
    /// [`TraceStore::replay_streaming`] — chunk by chunk, never
    /// materialized — so peak memory is independent of trace length.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Whether replays should stream instead of materializing.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Returns the store with a staged replay pipeline of the given shape
    /// wrapped around every streamed replay. The default (serial) config
    /// runs the unchanged synchronous path; any non-zero depth prefetches
    /// and decodes chunks ahead of the simulator on dedicated threads.
    pub fn with_pipeline(mut self, config: PipelineConfig) -> Self {
        self.pipeline = config;
        self
    }

    /// Returns the store with the given on-disk payload codec. New trace
    /// files are written under it; existing files of either codec stay
    /// readable (the reader dispatches on the envelope version).
    pub fn with_codec(mut self, codec: TraceCodec) -> Self {
        self.codec = codec;
        self
    }

    /// The codec stamped into trace files this store writes.
    pub fn codec(&self) -> TraceCodec {
        self.codec
    }

    /// Shares a campaign-global in-flight byte budget across every pipeline
    /// this store constructs (and, via clones of the `Arc`, across other
    /// stores of the same campaign). Without one, each pipeline is bounded
    /// only by its own depth.
    pub fn with_pipeline_budget(mut self, budget: Arc<InflightBudget>) -> Self {
        self.pipeline_budget = Some(budget);
        self
    }

    /// The configured pipeline shape.
    pub fn pipeline_config(&self) -> PipelineConfig {
        self.pipeline
    }

    /// Wraps `input` in this store's pipeline shape and shared budget.
    fn pipeline_for<'a>(&'a self, input: PipelineInput<'a>) -> ChunkPipeline<'a> {
        let mut pipeline = ChunkPipeline::new(input, self.pipeline);
        if let Some(budget) = &self.pipeline_budget {
            pipeline = pipeline.with_budget(budget);
        }
        if stms_obs::is_enabled() {
            pipeline =
                pipeline.with_observer(self.stage_observer.get_or_init(PipelineObserver::new));
        }
        pipeline
    }

    /// Folds one pipeline run's counters into the store-level gauges.
    fn note_pipeline(&self, stats: &PipelineStats) {
        counter_add(&self.pipeline_chunks, stats.chunks_prefetched);
        counter_add(&self.pipeline_stalls_full, stats.stalls_full);
        counter_add(&self.pipeline_stalls_empty, stats.stalls_empty);
        counter_max(&self.pipeline_peak_bytes, stats.peak_bytes_in_flight);
    }

    /// Replays the trace for `spec` as a chunked stream, without ever
    /// materializing it: `run` receives a [`TraceSource`] and drives the
    /// simulation to completion.
    ///
    /// With a disk tier, the trace is generated *straight to a sealed
    /// chunk-framed file* on first request (concurrent requesters of the
    /// same key wait, then stream the file), and every replay — cold or
    /// warm, this process or a later one — reads it back one chunk at a
    /// time, so neither the encoded nor the decoded trace is ever resident.
    /// Without a disk tier, `run` streams directly from the resumable
    /// generator.
    ///
    /// `run` may be invoked more than once: when a backing file fails
    /// mid-stream (corrupt chunk, truncation), the file is evicted, the
    /// attempt is counted in [`TraceStoreStats::stream_fallbacks`], and the
    /// replay restarts — regenerating the file once, then falling back to
    /// the generator directly. Failures therefore never surface to the
    /// caller; the streamed access sequence is always exactly what
    /// [`TraceStore::get_or_generate`] would have replayed.
    pub fn replay_streaming<T>(
        &self,
        spec: &WorkloadSpec,
        accesses: usize,
        mut run: impl FnMut(&mut dyn TraceSource) -> Result<T, TraceStreamError>,
    ) -> T {
        let key = spec.clone().with_accesses(accesses);
        if let Some(disk) = &self.disk {
            let fingerprint = key.fingerprint();
            // Two rounds: if the file from the first round fails mid-stream
            // it is evicted, and the second round regenerates it once. A
            // key whose file cannot be *written* (full or broken cache
            // directory) skips straight to the generator instead of
            // regenerating into the void every round.
            for round in 0..2 {
                if !self.ensure_on_disk(disk, &key, fingerprint) {
                    break;
                }
                match self.stream_from_disk(disk, &key, fingerprint, &mut run) {
                    Ok(value) => {
                        counter_add(&self.stream_replays, 1);
                        return value;
                    }
                    Err(()) => {
                        counter_add(&self.stream_fallbacks, 1);
                        if round == 0 {
                            continue;
                        }
                    }
                }
            }
        }
        // No disk tier (or a disk that keeps failing): stream straight from
        // the resumable generator. Under a pipeline, generation itself runs
        // on the reader thread, overlapping with simulation.
        counter_add(&self.generated, 1);
        counter_add(&self.stream_replays, 1);
        let mut generator = TraceGenerator::new(&key);
        let (result, stats) = self
            .pipeline_for(PipelineInput::Decoded(&mut generator))
            .run(|source| {
                let mut counted = CountingSource::new(source, &self.stream_chunks);
                run(&mut counted)
            });
        self.note_pipeline(&stats);
        result.expect("generator-backed trace sources cannot fail")
    }

    /// Makes sure a sealed chunk-framed file exists for `key`, generating
    /// it chunk by chunk if missing, and reports whether the file is
    /// available. Concurrent requesters of the same key serialize on a
    /// per-key lock so the trace is generated at most once; a failed write
    /// is remembered per key, so a full or broken cache directory costs one
    /// wasted generation per key, not one per replay attempt.
    fn ensure_on_disk(
        &self,
        disk: &DiskTierConfig,
        key: &WorkloadSpec,
        fingerprint: Fingerprint,
    ) -> bool {
        let lock = self.stream_lock_for(key);
        let _guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
        if self
            .failed_stream_writes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(key)
        {
            return false;
        }
        let path = trace_path(&disk.dir, fingerprint);
        if path.is_file() {
            return true;
        }
        counter_add(&self.disk_misses, 1);
        counter_add(&self.generated, 1);
        let mut generator = TraceGenerator::new(key);
        match write_chunked_file(&disk.dir, &path, fingerprint, self.codec, &mut generator) {
            Ok(bytes) => {
                counter_add(&self.disk_writes, 1);
                self.enforce_budget(disk, &path, bytes);
                true
            }
            Err(_) => {
                self.failed_stream_writes
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key.clone());
                false
            }
        }
    }

    /// The per-key serialization point of the streaming path.
    fn stream_lock_for(&self, key: &WorkloadSpec) -> Arc<Mutex<()>> {
        let mut locks = self
            .stream_locks
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            locks
                .entry(key.clone())
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        )
    }

    /// Evicts the streamed cache file for `key` — but only if the file at
    /// `path` is still the one this attempt opened (same length and mtime,
    /// checked under the per-key lock). A concurrent attempt that already
    /// evicted the bad file and regenerated a good one at the same path
    /// must not have its fresh file deleted by a straggler still reading
    /// the old inode.
    fn evict_stream_file(&self, key: &WorkloadSpec, path: &Path, opened: Option<&fs::Metadata>) {
        let lock = self.stream_lock_for(key);
        let _guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
        let unchanged = match (opened, fs::metadata(path)) {
            (Some(opened), Ok(current)) => {
                current.len() == opened.len() && current.modified().ok() == opened.modified().ok()
            }
            // File already gone: nothing to evict.
            (_, Err(_)) => false,
            // Could not stat the opened file: be conservative and evict.
            (None, Ok(_)) => true,
        };
        if unchanged {
            self.evict_corrupt(path);
        }
    }

    /// One streamed replay attempt against the persisted file. `Err(())`
    /// means the file was unusable (now evicted) and the caller should
    /// retry or fall back.
    fn stream_from_disk<T>(
        &self,
        disk: &DiskTierConfig,
        key: &WorkloadSpec,
        fingerprint: Fingerprint,
        run: &mut impl FnMut(&mut dyn TraceSource) -> Result<T, TraceStreamError>,
    ) -> Result<T, ()> {
        let path = trace_path(&disk.dir, fingerprint);
        let Ok(file) = fs::File::open(&path) else {
            return Err(()); // generation failed or the file was evicted
        };
        // Identity of the file this attempt reads, for the eviction check:
        // taken from the open handle, so it cannot race a replacement.
        let opened = file.metadata().ok();
        let mut reader = match TraceReader::new(BufReader::new(file), fingerprint) {
            Ok(reader) => reader,
            Err(_) => {
                self.evict_stream_file(key, &path, opened.as_ref());
                return Err(());
            }
        };
        // Deep verification (`--cache-verify`), mirroring the materialized
        // path's `trace_matches_spec`: the stream's header must describe
        // exactly what generating `key` would produce.
        if disk.verify && !reader_matches_spec(&reader, key) {
            self.evict_stream_file(key, &path, opened.as_ref());
            return Err(());
        }
        let total_accesses = reader.total_accesses();
        // Under a pipeline, frame I/O runs on the reader thread and
        // checksum/decode on the worker threads; serially, this is the
        // unchanged synchronous read-verify-decode loop.
        let (outcome, stats) =
            self.pipeline_for(PipelineInput::Frames(&mut reader))
                .run(|source| {
                    let mut counted = CountingSource::new(source, &self.stream_chunks);
                    run(&mut counted)
                });
        self.note_pipeline(&stats);
        match outcome {
            Ok(value) => {
                counter_add(&self.disk_hits, 1);
                // On-disk vs decoded byte accounting of the replay that
                // actually completed: the ratio is the run summary's
                // `compression:` line.
                counter_add(
                    &self.stream_disk_bytes,
                    opened.as_ref().map_or(0, std::fs::Metadata::len),
                );
                counter_add(
                    &self.stream_decoded_bytes,
                    total_accesses.saturating_mul(ACCESS_RECORD_BYTES as u64),
                );
                Ok(value)
            }
            Err(_) => {
                // Corrupt or truncated mid-stream: the partial simulation
                // is discarded with the file (unless a concurrent attempt
                // already replaced it with a regenerated one).
                self.evict_stream_file(key, &path, opened.as_ref());
                Err(())
            }
        }
    }

    /// Returns the trace for `spec` at the campaign's trace length, loading
    /// it from the disk tier or generating it on first request.
    ///
    /// ```
    /// use stms_sim::campaign::TraceStore;
    /// use stms_workloads::{generate, presets};
    ///
    /// let store = TraceStore::new();
    /// let spec = presets::oltp_db2();
    /// let trace = store.get_or_generate(&spec, 3_000);
    /// // The cached handle is bit-identical to direct generation…
    /// assert_eq!(*trace, generate(&spec.clone().with_accesses(3_000)));
    /// // …and later requests share it instead of regenerating.
    /// let again = store.get_or_generate(&spec, 3_000);
    /// assert!(std::sync::Arc::ptr_eq(&trace, &again));
    /// ```
    ///
    /// Concurrent first requests for the same key resolve the trace exactly
    /// once: the first requester loads or generates while the others block
    /// on the entry's cell and then share the result. Requests for different
    /// keys never contend beyond the brief map lookup. A freshly generated
    /// trace is persisted before the call returns, so concurrent *processes*
    /// sharing one directory regenerate at most once each, and any unusable
    /// cache file is evicted and regenerated instead of surfacing an error.
    pub fn get_or_generate(&self, spec: &WorkloadSpec, accesses: usize) -> SharedTrace {
        let key = spec.clone().with_accesses(accesses);
        let started = obs_started();
        let (cell, hit) = {
            let mut map = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                Some(cell) => {
                    counter_add(&self.hits, 1);
                    (Arc::clone(cell), true)
                }
                None => {
                    counter_add(&self.misses, 1);
                    let cell = Arc::new(OnceLock::new());
                    map.insert(key.clone(), Arc::clone(&cell));
                    (cell, false)
                }
            }
        };
        // Resolution happens outside the map lock so other keys proceed.
        let trace = Arc::clone(cell.get_or_init(|| self.resolve(&key)));
        record_elapsed(
            if hit {
                "cache.trace.hit_ns"
            } else {
                "cache.trace.miss_ns"
            },
            started,
        );
        trace
    }

    /// Loads `key` from the disk tier or generates (and persists) it.
    fn resolve(&self, key: &WorkloadSpec) -> SharedTrace {
        let Some(disk) = &self.disk else {
            counter_add(&self.generated, 1);
            let started = obs_started();
            let trace = generate(key).into_shared();
            record_elapsed("cache.trace.generate_ns", started);
            return trace;
        };
        let fingerprint = key.fingerprint();
        let started = obs_started();
        if let Some(trace) = self.load_from_disk(disk, key, fingerprint) {
            counter_add(&self.disk_hits, 1);
            record_elapsed("cache.trace.disk_hit_ns", started);
            return trace.into_shared();
        }
        record_elapsed("cache.trace.disk_miss_ns", started);
        counter_add(&self.disk_misses, 1);
        counter_add(&self.generated, 1);
        let started = obs_started();
        let trace = generate(key);
        record_elapsed("cache.trace.generate_ns", started);
        self.persist(disk, &trace, fingerprint);
        trace.into_shared()
    }

    /// Attempts to open and fully decode the chunk-framed cache file for
    /// `key`, evicting it on any failure.
    fn load_from_disk(
        &self,
        disk: &DiskTierConfig,
        key: &WorkloadSpec,
        fingerprint: Fingerprint,
    ) -> Option<Trace> {
        let path = trace_path(&disk.dir, fingerprint);
        let Ok(file) = fs::File::open(&path) else {
            return None; // plain cold miss
        };
        let trace = TraceReader::new(BufReader::new(file), fingerprint)
            .and_then(|mut reader| collect_trace(&mut reader))
            .ok()
            .filter(|trace| !disk.verify || trace_matches_spec(trace, key));
        if trace.is_none() {
            // Stale or corrupt behind a valid envelope (or a legacy
            // whole-trace blob from an older codec): evict so the
            // regenerated trace replaces it.
            self.evict_corrupt(&path);
        }
        trace
    }

    fn evict_corrupt(&self, path: &Path) {
        counter_add(&self.disk_corrupt, 1);
        let started = obs_started();
        let _ = fs::remove_file(path);
        record_elapsed("cache.trace.evict_ns", started);
    }

    /// Streams the sealed chunk-framed trace blob to disk atomically, then
    /// enforces the byte budget. Persistence failures are deliberately
    /// swallowed: the cache is an optimization, never a correctness
    /// dependency.
    fn persist(&self, disk: &DiskTierConfig, trace: &Trace, fingerprint: Fingerprint) {
        let path = trace_path(&disk.dir, fingerprint);
        let mut source = trace.chunks(DEFAULT_CHUNK_LEN);
        let Ok(bytes) = write_chunked_file(&disk.dir, &path, fingerprint, self.codec, &mut source)
        else {
            return;
        };
        counter_add(&self.disk_writes, 1);
        self.enforce_budget(disk, &path, bytes);
    }

    /// Evicts the oldest trace files until the directory's trace bytes fit
    /// the budget again (never evicting the file just written), and updates
    /// the resident-bytes gauge. Without a budget there is nothing to
    /// evict, so the gauge is advanced without scanning the directory — a
    /// shared cache directory would otherwise pay an O(files) metadata scan
    /// per write.
    fn enforce_budget(&self, disk: &DiskTierConfig, just_written: &Path, written_bytes: u64) {
        let Some(budget) = disk.max_bytes else {
            counter_add(&self.disk_bytes, written_bytes);
            return;
        };
        let mut files = match list_trace_files(&disk.dir) {
            Ok(files) => files,
            Err(_) => return,
        };
        let mut total: u64 = files.iter().map(|f| f.bytes).sum();
        files.sort_by_key(|f| f.modified);
        for file in &files {
            if total <= budget || file.path == just_written {
                continue;
            }
            if fs::remove_file(&file.path).is_ok() {
                counter_add(&self.disk_evictions, 1);
                total -= file.bytes;
            }
        }
        self.disk_bytes.store(total, Ordering::Relaxed);
    }

    /// Number of distinct traces currently cached in memory (including any
    /// still being resolved).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the memory tier holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usage counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_evictions: self.disk_evictions.load(Ordering::Relaxed),
            disk_bytes: self.disk_bytes.load(Ordering::Relaxed),
            stream_replays: self.stream_replays.load(Ordering::Relaxed),
            stream_chunks: self.stream_chunks.load(Ordering::Relaxed),
            stream_fallbacks: self.stream_fallbacks.load(Ordering::Relaxed),
            pipeline_chunks: self.pipeline_chunks.load(Ordering::Relaxed),
            pipeline_stalls_full: self.pipeline_stalls_full.load(Ordering::Relaxed),
            pipeline_stalls_empty: self.pipeline_stalls_empty.load(Ordering::Relaxed),
            pipeline_peak_bytes: self.pipeline_peak_bytes.load(Ordering::Relaxed),
            stream_disk_bytes: self.stream_disk_bytes.load(Ordering::Relaxed),
            stream_decoded_bytes: self.stream_decoded_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached trace from the memory tier and resets the
    /// counters (frees the memory of a finished campaign without discarding
    /// the store). Persisted files are left in place — they are the point
    /// of the disk tier.
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.stream_locks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.failed_stream_writes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        for counter in [
            &self.hits,
            &self.misses,
            &self.generated,
            &self.disk_hits,
            &self.disk_misses,
            &self.disk_corrupt,
            &self.disk_writes,
            &self.disk_evictions,
            &self.disk_bytes,
            &self.stream_replays,
            &self.stream_chunks,
            &self.stream_fallbacks,
            &self.pipeline_chunks,
            &self.pipeline_stalls_full,
            &self.pipeline_stalls_empty,
            &self.pipeline_peak_bytes,
            &self.stream_disk_bytes,
            &self.stream_decoded_bytes,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// Streams any [`TraceSource`] into a sealed chunk-framed trace file,
/// atomically (unique temp file, then rename). Returns the sealed size in
/// bytes. Neither the trace nor its encoding is ever materialized — the
/// writer computes the envelope up front and folds the checksum as chunks
/// flow through, so this is the out-of-core write path.
fn write_chunked_file(
    dir: &Path,
    path: &Path,
    key: Fingerprint,
    codec: TraceCodec,
    source: &mut dyn TraceSource,
) -> Result<u64, TraceStreamError> {
    let tmp = dir.join(unique_tmp_name(key));
    let result = (|| {
        let file = fs::File::create(&tmp)?;
        let meta: TraceMeta = source.meta().clone();
        let total = source.total_accesses();
        let mut writer = ChunkedTraceWriter::with_codec(
            BufWriter::new(file),
            key,
            &meta,
            total,
            DEFAULT_CHUNK_LEN,
            codec,
        )?;
        while let Some(chunk) = source.next_chunk()? {
            writer.push(chunk.accesses)?;
        }
        writer.finish()?;
        let bytes = fs::metadata(&tmp)?.len();
        fs::rename(&tmp, path)?;
        Ok(bytes)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// A pass-through [`TraceSource`] that counts delivered chunks into a
/// store-level gauge (the `streamed N chunks` line of the run summary) and,
/// while telemetry is enabled, records the simulate-stage service time of
/// each chunk — the gap between one chunk's delivery and the next request,
/// which is exactly how long the simulator spent consuming it.
struct CountingSource<'a, S: TraceSource + ?Sized> {
    inner: &'a mut S,
    chunks: &'a AtomicU64,
    simulate: Option<stms_obs::Histogram>,
    delivered: Option<std::time::Instant>,
}

impl<'a, S: TraceSource + ?Sized> CountingSource<'a, S> {
    fn new(inner: &'a mut S, chunks: &'a AtomicU64) -> Self {
        CountingSource {
            inner,
            chunks,
            simulate: stms_obs::is_enabled().then(|| stms_obs::histogram("pipeline.simulate_ns")),
            delivered: None,
        }
    }
}

impl<S: TraceSource + ?Sized> TraceSource for CountingSource<'_, S> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn total_accesses(&self) -> u64 {
        self.inner.total_accesses()
    }

    fn next_chunk(&mut self) -> Result<Option<AccessChunk<'_>>, TraceStreamError> {
        if let (Some(simulate), Some(delivered)) = (&self.simulate, self.delivered.take()) {
            let nanos = delivered.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            simulate.record(nanos);
        }
        let chunks = self.chunks;
        let result = self.inner.next_chunk();
        if let Ok(Some(_)) = &result {
            counter_add(chunks, 1);
            if self.simulate.is_some() {
                self.delivered = Some(std::time::Instant::now());
            }
        }
        result
    }
}

/// Path of the persisted trace for a spec fingerprint.
fn trace_path(dir: &Path, fingerprint: Fingerprint) -> PathBuf {
    dir.join(format!(
        "{TRACE_FILE_PREFIX}{}.{CACHE_FILE_EXT}",
        fingerprint.to_hex()
    ))
}

/// Deep verification: the decoded trace really is what generating `key`
/// would produce.
fn trace_matches_spec(trace: &Trace, key: &WorkloadSpec) -> bool {
    trace.len() == key.accesses
        && trace.meta().workload == key.name
        && trace.meta().seed == key.seed
        && trace.meta().cores == key.cores
}

/// The streaming counterpart of [`trace_matches_spec`]: the same checks
/// against a chunk-framed stream's header, before any chunk is replayed.
fn reader_matches_spec<R: std::io::Read>(reader: &TraceReader<R>, key: &WorkloadSpec) -> bool {
    reader.total_accesses() == key.accesses as u64
        && reader.meta().workload == key.name
        && reader.meta().seed == key.seed
        && reader.meta().cores == key.cores
}

struct CacheFile {
    path: PathBuf,
    bytes: u64,
    modified: std::time::SystemTime,
}

fn list_trace_files(dir: &Path) -> io::Result<Vec<CacheFile>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with(TRACE_FILE_PREFIX) || !name.ends_with(&format!(".{CACHE_FILE_EXT}")) {
            continue;
        }
        let meta = entry.metadata()?;
        files.push(CacheFile {
            path: entry.path(),
            bytes: meta.len(),
            modified: meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH),
        });
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stms-trace-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn caches_by_full_spec_identity() {
        let store = TraceStore::new();
        let spec = presets::web_apache();

        let first = store.get_or_generate(&spec, 4_000);
        let second = store.get_or_generate(&spec, 4_000);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.len(), 4_000);

        // A different trace length, seed, or workload is a different key.
        let longer = store.get_or_generate(&spec, 8_000);
        assert!(!Arc::ptr_eq(&first, &longer));
        let reseeded = store.get_or_generate(&spec.clone().with_seed(99), 4_000);
        assert!(!Arc::ptr_eq(&first, &reseeded));
        let other = store.get_or_generate(&presets::sci_ocean(), 4_000);
        assert!(!Arc::ptr_eq(&first, &other));

        assert_eq!(store.len(), 4);
        let stats = store.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.generated, 4);
        assert_eq!(stats.hits, 1);
        // No disk tier: disk counters stay untouched.
        assert_eq!(stats.disk_hits + stats.disk_misses + stats.disk_writes, 0);
    }

    #[test]
    fn cached_trace_is_bit_identical_to_direct_generation() {
        let store = TraceStore::new();
        let spec = presets::oltp_db2();
        let cached = store.get_or_generate(&spec, 3_000);
        let direct = generate(&spec.clone().with_accesses(3_000));
        assert_eq!(*cached, direct);
        assert_eq!(cached.encode(), direct.encode());
    }

    #[test]
    fn clear_resets_contents_and_counters() {
        let store = TraceStore::new();
        assert!(store.is_empty());
        store.get_or_generate(&presets::web_apache(), 1_000);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats(), TraceStoreStats::default());
    }

    #[test]
    fn disk_tier_round_trips_across_stores() {
        let dir = temp_dir("round-trip");
        let spec = presets::web_apache();

        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        let generated = cold.get_or_generate(&spec, 2_000);
        let stats = cold.stats();
        assert_eq!(
            (stats.generated, stats.disk_misses, stats.disk_writes),
            (1, 1, 1)
        );
        assert!(stats.disk_bytes > 0);

        let warm = TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true)).unwrap();
        let loaded = warm.get_or_generate(&spec, 2_000);
        let stats = warm.stats();
        assert_eq!((stats.generated, stats.disk_hits), (0, 1));
        assert_eq!(*generated, *loaded);

        // A different key is a cold miss even on a warm directory.
        let other = warm.get_or_generate(&spec, 2_500);
        assert_eq!(other.len(), 2_500);
        assert_eq!(warm.stats().generated, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_files_fall_back_to_regeneration() {
        let dir = temp_dir("corrupt");
        let spec = presets::dss_qry17();
        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        let expect = cold.get_or_generate(&spec, 1_500);

        let path = trace_path(&dir, spec.clone().with_accesses(1_500).fingerprint());
        assert!(path.is_file());
        for mutation in ["flip", "truncate", "garbage"] {
            let mut bytes = fs::read(&path).unwrap();
            match mutation {
                "flip" => {
                    let last = bytes.len() - 10;
                    bytes[last] ^= 0xff;
                }
                "truncate" => bytes.truncate(bytes.len() / 2),
                _ => bytes = b"not a sealed blob at all".to_vec(),
            }
            fs::write(&path, &bytes).unwrap();

            let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
            let regenerated = store.get_or_generate(&spec, 1_500);
            assert_eq!(*regenerated, *expect, "mutation `{mutation}`");
            let stats = store.stats();
            assert_eq!(
                (stats.disk_corrupt, stats.generated, stats.disk_writes),
                (1, 1, 1),
                "mutation `{mutation}` must evict and re-persist"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_detects_stale_content_behind_a_valid_envelope() {
        let dir = temp_dir("stale");
        let spec = presets::sci_ocean();
        let key = spec.clone().with_accesses(1_000);

        // Seal a *different* trace under this key's fingerprint (a stale
        // file from an older generator, say).
        let wrong = generate(&spec.clone().with_seed(spec.seed + 1).with_accesses(1_000));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            trace_path(&dir, key.fingerprint()),
            stms_types::stream::encode_chunked(&wrong, key.fingerprint(), DEFAULT_CHUNK_LEN),
        )
        .unwrap();

        // Without verify the envelope looks fine and the stale trace wins…
        let trusting = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        assert_eq!(trusting.stats().disk_corrupt, 0);
        assert_eq!(*trusting.get_or_generate(&spec, 1_000), wrong);

        // …with verify the mismatch is detected and regenerated.
        let verifying =
            TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true)).unwrap();
        let fixed = verifying.get_or_generate(&spec, 1_000);
        assert_eq!(*fixed, generate(&key));
        let stats = verifying.stats();
        assert_eq!((stats.disk_corrupt, stats.generated), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Collects a streamed replay into a flat access vector (stand-in for
    /// the simulator driving a [`TraceSource`]).
    fn drain(source: &mut dyn TraceSource) -> Result<Vec<stms_types::MemAccess>, TraceStreamError> {
        let mut all = Vec::new();
        while let Some(chunk) = source.next_chunk()? {
            all.extend_from_slice(chunk.accesses);
        }
        Ok(all)
    }

    #[test]
    fn streaming_replay_without_disk_streams_the_generator() {
        let store = TraceStore::new().with_streaming(true);
        assert!(store.is_streaming());
        let spec = presets::web_apache();
        let accesses = store.replay_streaming(&spec, 2_000, drain);
        assert_eq!(
            accesses,
            generate(&spec.clone().with_accesses(2_000)).accesses()
        );
        let stats = store.stats();
        assert_eq!((stats.generated, stats.stream_replays), (1, 1));
        assert!(stats.stream_chunks >= 1);
        assert_eq!(stats.disk_writes, 0);
    }

    #[test]
    fn streaming_replay_persists_once_and_streams_warm_from_disk() {
        let dir = temp_dir("stream-warm");
        let spec = presets::web_apache();
        let expect = generate(&spec.clone().with_accesses(3_000));

        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        let first = cold.replay_streaming(&spec, 3_000, drain);
        assert_eq!(first, expect.accesses());
        let stats = cold.stats();
        assert_eq!(
            (stats.generated, stats.disk_writes, stats.disk_hits),
            (1, 1, 1),
            "generated straight to disk, then streamed back"
        );
        // A second replay in the same process streams the same file.
        let again = cold.replay_streaming(&spec, 3_000, drain);
        assert_eq!(again, expect.accesses());
        assert_eq!(cold.stats().generated, 1, "no regeneration");

        // A fresh store (a new process) streams without generating at all.
        let warm = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        let streamed = warm.replay_streaming(&spec, 3_000, drain);
        assert_eq!(streamed, expect.accesses());
        let stats = warm.stats();
        assert_eq!((stats.generated, stats.disk_hits), (0, 1));
        assert!(stats.stream_chunks >= 1);

        // And the file is shared with the materialized path: bit-identical.
        let materialized = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        assert_eq!(*materialized.get_or_generate(&spec, 3_000), expect);
        assert_eq!(materialized.stats().disk_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_codec_shrinks_the_warm_tier_at_least_two_fold() {
        let spec = presets::oltp_db2();
        let key = spec.clone().with_accesses(6_000).fingerprint();

        let v2_dir = temp_dir("codec-v2");
        let v2 = TraceStore::with_disk_tier(DiskTierConfig::new(&v2_dir))
            .unwrap()
            .with_streaming(true)
            .with_codec(TraceCodec::V2);
        assert_eq!(v2.codec(), TraceCodec::V2);
        let baseline = v2.replay_streaming(&spec, 6_000, drain);

        let v3_dir = temp_dir("codec-v3");
        let v3 = TraceStore::with_disk_tier(DiskTierConfig::new(&v3_dir))
            .unwrap()
            .with_streaming(true);
        assert_eq!(v3.codec(), TraceCodec::V3, "v3 is the default");
        assert_eq!(v3.replay_streaming(&spec, 6_000, drain), baseline);

        let v2_bytes = fs::metadata(trace_path(&v2_dir, key)).unwrap().len();
        let v3_bytes = fs::metadata(trace_path(&v3_dir, key)).unwrap().len();
        assert!(
            v3_bytes.saturating_mul(2) <= v2_bytes,
            "v3 file must be at least 2x smaller: v2={v2_bytes} v3={v3_bytes}"
        );
        let _ = fs::remove_dir_all(&v2_dir);
        let _ = fs::remove_dir_all(&v3_dir);
    }

    #[test]
    fn v2_files_replay_under_a_v3_default_store() {
        let dir = temp_dir("codec-compat");
        let spec = presets::web_zeus();
        let expect = generate(&spec.clone().with_accesses(2_000));

        // An old deployment populated the cache with v2 files…
        let old = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true)
            .with_codec(TraceCodec::V2);
        old.replay_streaming(&spec, 2_000, drain);

        // …and a v3-default binary must stream them untouched: no flag, no
        // eviction, no regeneration, same bytes.
        let new = TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true))
            .unwrap()
            .with_streaming(true);
        assert_eq!(new.replay_streaming(&spec, 2_000, drain), expect.accesses());
        let stats = new.stats();
        assert_eq!(
            (stats.generated, stats.disk_hits, stats.disk_corrupt),
            (0, 1, 0)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_byte_counters_report_on_disk_and_decoded_bytes() {
        let dir = temp_dir("stream-bytes");
        let spec = presets::web_apache();
        let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        store.replay_streaming(&spec, 3_000, drain);
        store.replay_streaming(&spec, 3_000, drain);

        let file_len = fs::metadata(trace_path(
            &dir,
            spec.clone().with_accesses(3_000).fingerprint(),
        ))
        .unwrap()
        .len();
        let stats = store.stats();
        assert_eq!(stats.stream_disk_bytes, 2 * file_len);
        assert_eq!(
            stats.stream_decoded_bytes,
            2 * 3_000 * ACCESS_RECORD_BYTES as u64
        );
        assert!(
            stats.stream_disk_bytes < stats.stream_decoded_bytes,
            "the default codec must compress"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_replay_recovers_from_mid_stream_corruption() {
        let dir = temp_dir("stream-corrupt");
        let spec = presets::dss_qry17();
        let expect = generate(&spec.clone().with_accesses(2_500));

        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        cold.replay_streaming(&spec, 2_500, drain);
        let path = trace_path(&dir, spec.clone().with_accesses(2_500).fingerprint());
        assert!(path.is_file());

        // Corrupt a byte deep in the payload: the header still opens, so the
        // failure only surfaces mid-stream.
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 100;
        bytes[at] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let fresh = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        let streamed = fresh.replay_streaming(&spec, 2_500, drain);
        assert_eq!(streamed, expect.accesses(), "fallback replays correctly");
        let stats = fresh.stats();
        assert!(stats.stream_fallbacks >= 1, "{stats:?}");
        assert_eq!(stats.disk_corrupt, 1, "the bad file was evicted");
        assert_eq!(stats.generated, 1, "regenerated once");
        // The regenerated file is intact for the next replay.
        let verify = TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true))
            .unwrap()
            .with_streaming(true);
        assert_eq!(
            verify.replay_streaming(&spec, 2_500, drain),
            expect.accesses()
        );
        assert_eq!(verify.stats().generated, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_verify_rejects_stale_content_behind_a_valid_envelope() {
        let dir = temp_dir("stream-stale");
        let spec = presets::sci_ocean();
        let key = spec.clone().with_accesses(1_000);

        // Seal a *different* trace (other seed) under this key's name.
        let wrong = generate(&spec.clone().with_seed(spec.seed + 1).with_accesses(1_000));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            trace_path(&dir, key.fingerprint()),
            stms_types::stream::encode_chunked(&wrong, key.fingerprint(), DEFAULT_CHUNK_LEN),
        )
        .unwrap();

        // Without verify the envelope looks fine and the stale stream wins…
        let trusting = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        assert_eq!(
            trusting.replay_streaming(&spec, 1_000, drain),
            wrong.accesses()
        );

        // …with verify the header mismatch is caught before any chunk is
        // replayed, the file evicted, and the right trace regenerated.
        let verifying = TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_verify(true))
            .unwrap()
            .with_streaming(true);
        assert_eq!(
            verifying.replay_streaming(&spec, 1_000, drain),
            generate(&key).accesses()
        );
        let stats = verifying.stats();
        assert_eq!(stats.disk_corrupt, 1, "{stats:?}");
        assert_eq!(stats.generated, 1, "{stats:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_remembers_unwritable_cache_dirs() {
        let dir = temp_dir("stream-unwritable");
        let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        // Break the cache directory after the store opened it: every write
        // attempt now fails.
        fs::remove_dir_all(&dir).unwrap();
        fs::write(&dir, b"not a directory").unwrap();

        let spec = presets::web_apache();
        let expect = generate(&spec.clone().with_accesses(1_200));
        assert_eq!(
            store.replay_streaming(&spec, 1_200, drain),
            expect.accesses()
        );
        let after_first = store.stats().generated;
        assert_eq!(
            store.replay_streaming(&spec, 1_200, drain),
            expect.accesses()
        );
        let stats = store.stats();
        assert_eq!(
            stats.generated,
            after_first + 1,
            "the failed write is remembered: later replays generate once, \
             not once per round ({stats:?})"
        );
        assert_eq!(stats.disk_writes, 0);
        assert_eq!(stats.stream_replays, 2);
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_entries() {
        let dir = temp_dir("budget");
        let spec = presets::web_apache();

        // Size one entry, then budget for roughly two.
        let probe = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
        probe.get_or_generate(&spec, 1_000);
        let one = probe.stats().disk_bytes;
        assert!(one > 0);

        let store =
            TraceStore::with_disk_tier(DiskTierConfig::new(&dir).with_max_bytes(one * 5 / 2))
                .unwrap();
        for accesses in [1_100, 1_200, 1_300, 1_400] {
            store.get_or_generate(&spec, accesses);
        }
        let stats = store.stats();
        assert!(
            stats.disk_evictions >= 2,
            "evictions: {}",
            stats.disk_evictions
        );
        assert!(
            stats.disk_bytes <= one * 3,
            "resident {} bytes exceeds budget",
            stats.disk_bytes
        );
        // The most recent entry always survives its own write.
        assert!(trace_path(&dir, spec.clone().with_accesses(1_400).fingerprint()).is_file());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stat_counters_saturate_instead_of_wrapping() {
        let store = TraceStore::new();
        // A counter poised one below the limit must pin at the limit, not
        // wrap to a small lie.
        store.stream_chunks.store(u64::MAX - 1, Ordering::Relaxed);
        counter_add(&store.stream_chunks, 5);
        assert_eq!(store.stats().stream_chunks, u64::MAX);
        counter_add(&store.stream_chunks, 1);
        assert_eq!(store.stats().stream_chunks, u64::MAX);
        // Zero-adds are free and never touch the cell.
        counter_add(&store.hits, 0);
        assert_eq!(store.stats().hits, 0);
        // The high-water-mark combinator only ever moves up.
        counter_max(&store.pipeline_peak_bytes, 100);
        counter_max(&store.pipeline_peak_bytes, 40);
        counter_max(&store.pipeline_peak_bytes, 120);
        assert_eq!(store.stats().pipeline_peak_bytes, 120);
    }

    #[test]
    fn concurrent_streamed_replays_count_chunks_exactly() {
        // Regression: chunk counters were bumped with plain loads+stores in
        // an early draft; racing replays must still sum exactly.
        let store = TraceStore::new().with_streaming(true);
        let spec = presets::web_apache();
        // One warm-up replay tells us the per-replay chunk count.
        store.replay_streaming(&spec, 2_000, drain);
        let per_replay = store.stats().stream_chunks;
        assert!(per_replay >= 1);

        const THREADS: u64 = 4;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| store.replay_streaming(&spec, 2_000, drain));
            }
        });
        let stats = store.stats();
        assert_eq!(stats.stream_chunks, per_replay * (THREADS + 1));
        assert_eq!(stats.stream_replays, THREADS + 1);
    }

    /// The pipelined configurations the identity tests sweep: serial,
    /// minimum depth single decoder, and deep multi-decoder.
    fn pipeline_matrix() -> Vec<PipelineConfig> {
        vec![
            PipelineConfig::serial(),
            PipelineConfig::with_depth(2),
            PipelineConfig::with_depth(8).with_decode_threads(3),
        ]
    }

    #[test]
    fn pipelined_replay_is_bit_identical_to_serial() {
        let dir = temp_dir("pipe-identity");
        let spec = presets::oltp_db2();
        let expect = generate(&spec.clone().with_accesses(3_000));

        for config in pipeline_matrix() {
            // Generator-backed (no disk tier) and disk-backed replays must
            // both be byte-for-byte identical to the serial baseline.
            let memory = TraceStore::new().with_streaming(true).with_pipeline(config);
            assert_eq!(
                memory.replay_streaming(&spec, 3_000, drain),
                expect.accesses(),
                "generator path, {config:?}"
            );

            let disk = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
                .unwrap()
                .with_streaming(true)
                .with_pipeline(config);
            assert_eq!(
                disk.replay_streaming(&spec, 3_000, drain),
                expect.accesses(),
                "cold disk path, {config:?}"
            );
            assert_eq!(
                disk.replay_streaming(&spec, 3_000, drain),
                expect.accesses(),
                "warm disk path, {config:?}"
            );
            let stats = disk.stats();
            if config.is_serial() {
                assert_eq!(stats.pipeline_chunks, 0, "serial replays bypass stages");
            } else {
                assert!(stats.pipeline_chunks >= 1, "{config:?}: {stats:?}");
                assert!(stats.pipeline_peak_bytes >= 1, "{config:?}: {stats:?}");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_corrupt_fallback_regenerates_exactly_once() {
        let dir = temp_dir("pipe-corrupt");
        let spec = presets::dss_qry17();
        let expect = generate(&spec.clone().with_accesses(2_500));

        let cold = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .unwrap()
            .with_streaming(true);
        cold.replay_streaming(&spec, 2_500, drain);
        let path = trace_path(&dir, spec.clone().with_accesses(2_500).fingerprint());
        let pristine = fs::read(&path).unwrap();

        for config in pipeline_matrix() {
            // Re-corrupt for each configuration: a payload byte deep in the
            // stream, so the error surfaces mid-replay inside the pipeline.
            let mut bytes = pristine.clone();
            let at = bytes.len() - 100;
            bytes[at] ^= 0xff;
            fs::write(&path, &bytes).unwrap();

            let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
                .unwrap()
                .with_streaming(true)
                .with_pipeline(config);
            assert_eq!(
                store.replay_streaming(&spec, 2_500, drain),
                expect.accesses(),
                "{config:?}"
            );
            let stats = store.stats();
            assert_eq!(
                stats.generated, 1,
                "{config:?}: regenerated once, not per retry"
            );
            assert_eq!(
                stats.disk_corrupt, 1,
                "{config:?}: the bad file was evicted"
            );
            assert!(stats.stream_fallbacks >= 1, "{config:?}: {stats:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_budget_spans_concurrent_pipelined_replays() {
        // One campaign-global byte budget across many jobs: replays stay
        // correct (the at-least-one admission rule prevents starvation) even
        // when the cap is far below one chunk's decoded size.
        let budget = Arc::new(InflightBudget::new(512));
        let store = TraceStore::new()
            .with_streaming(true)
            .with_pipeline(PipelineConfig::with_depth(4).with_decode_threads(2))
            .with_pipeline_budget(Arc::clone(&budget));
        let spec = presets::web_apache();
        let expect = generate(&spec.clone().with_accesses(2_000));

        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    assert_eq!(
                        store.replay_streaming(&spec, 2_000, drain),
                        expect.accesses()
                    );
                });
            }
        });
        assert_eq!(store.stats().stream_replays, 3);
        assert_eq!(budget.in_use(), 0, "all in-flight bytes were released");
    }
}
