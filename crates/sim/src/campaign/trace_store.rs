//! A concurrent cache of generated workload traces.
//!
//! Every figure of the paper replays some subset of the same eight workload
//! traces, but the seed driver regenerated the trace inside each figure cell
//! (once per `(figure, sweep point, workload)` — dozens of regenerations per
//! campaign). [`TraceStore`] keys generated traces by the full
//! [`WorkloadSpec`] identity (every generator parameter, including trace
//! length and seed) and hands out [`SharedTrace`] handles, so each distinct
//! trace is generated exactly once per campaign no matter how many jobs
//! request it, and matched comparisons across figures replay bit-identical
//! inputs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use stms_types::SharedTrace;
use stms_workloads::{generate, WorkloadSpec};

/// Counters describing how a [`TraceStore`] was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Requests served from an already-present entry (including requests
    /// that waited while another worker generated the trace).
    pub hits: u64,
    /// Requests that created a new entry.
    pub misses: u64,
    /// Traces actually generated. Always equals `misses` once the store is
    /// idle: each new entry is generated exactly once, even under
    /// concurrent first requests.
    pub generated: u64,
}

/// A shared, thread-safe store of generated traces keyed by workload spec.
///
/// # Example
///
/// ```
/// use stms_sim::campaign::TraceStore;
/// use stms_workloads::presets;
///
/// let store = TraceStore::new();
/// let a = store.get_or_generate(&presets::web_apache(), 5_000);
/// let b = store.get_or_generate(&presets::web_apache(), 5_000);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // one generation, shared
/// assert_eq!(store.stats().generated, 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceStore {
    entries: Mutex<HashMap<WorkloadSpec, Arc<OnceLock<SharedTrace>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    generated: AtomicU64,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trace for `spec` at the campaign's trace length,
    /// generating it on first request.
    ///
    /// Concurrent first requests for the same key generate the trace exactly
    /// once: the first requester runs the generator while the others block on
    /// the entry's cell and then share the result. Requests for different
    /// keys never contend beyond the brief map lookup.
    pub fn get_or_generate(&self, spec: &WorkloadSpec, accesses: usize) -> SharedTrace {
        let key = spec.clone().with_accesses(accesses);
        let cell = {
            let mut map = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                Some(cell) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(cell)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    map.insert(key.clone(), Arc::clone(&cell));
                    cell
                }
            }
        };
        // Generation happens outside the map lock so other keys proceed.
        Arc::clone(cell.get_or_init(|| {
            self.generated.fetch_add(1, Ordering::Relaxed);
            generate(&key).into_shared()
        }))
    }

    /// Number of distinct traces currently cached (including any still being
    /// generated).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usage counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached trace and resets the counters (frees the memory of
    /// a finished campaign without discarding the store).
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.generated.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    #[test]
    fn caches_by_full_spec_identity() {
        let store = TraceStore::new();
        let spec = presets::web_apache();

        let first = store.get_or_generate(&spec, 4_000);
        let second = store.get_or_generate(&spec, 4_000);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.len(), 4_000);

        // A different trace length, seed, or workload is a different key.
        let longer = store.get_or_generate(&spec, 8_000);
        assert!(!Arc::ptr_eq(&first, &longer));
        let reseeded = store.get_or_generate(&spec.clone().with_seed(99), 4_000);
        assert!(!Arc::ptr_eq(&first, &reseeded));
        let other = store.get_or_generate(&presets::sci_ocean(), 4_000);
        assert!(!Arc::ptr_eq(&first, &other));

        assert_eq!(store.len(), 4);
        let stats = store.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.generated, 4);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cached_trace_is_bit_identical_to_direct_generation() {
        let store = TraceStore::new();
        let spec = presets::oltp_db2();
        let cached = store.get_or_generate(&spec, 3_000);
        let direct = generate(&spec.clone().with_accesses(3_000));
        assert_eq!(*cached, direct);
        assert_eq!(cached.encode(), direct.encode());
    }

    #[test]
    fn clear_resets_contents_and_counters() {
        let store = TraceStore::new();
        assert!(store.is_empty());
        store.get_or_generate(&presets::web_apache(), 1_000);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats(), TraceStoreStats::default());
    }
}
