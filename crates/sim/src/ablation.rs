//! Ablation study of the index-table organization (§4.3 / §5.4).
//!
//! The paper states that alternative index organizations (open-address
//! hashing, longer bucket chains, trees) were "either less storage efficient
//! or sacrificed additional coverage due to increased lookup latency". This
//! experiment replays a real baseline miss sequence against three
//! organizations — the paper's single-block bucketized hash table, an
//! open-addressing table and a chained-bucket table — and reports the
//! quantities that drive that conclusion: memory blocks touched per lookup
//! and per update, lookup hit rate, and main-memory storage.

use crate::runner::collect_miss_sequences;
use crate::system::ExperimentConfig;
use stms_core::{ChainedIndex, HashIndexTable, HistoryPointer, OpenAddressIndex};
use stms_mem::{DramModel, SystemConfig};
use stms_stats::{ratio, TextTable};
use stms_types::{CoreId, Cycle, LineAddr};
use stms_workloads::WorkloadSpec;

/// Per-organization measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexAblationRow {
    /// Organization name.
    pub organization: String,
    /// Mean 64-byte blocks read per lookup.
    pub blocks_per_lookup: f64,
    /// Mean 64-byte blocks touched per update.
    pub blocks_per_update: f64,
    /// Fraction of lookups that found a pointer.
    pub hit_rate: f64,
    /// Main-memory storage in MiB.
    pub storage_mib: f64,
}

/// Result of the index-organization ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexAblation {
    /// Workload whose miss stream drove the comparison.
    pub workload: String,
    /// Number of misses replayed.
    pub misses: usize,
    /// One row per organization.
    pub rows: Vec<IndexAblationRow>,
}

impl IndexAblation {
    /// Renders the ablation as a text table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "organization".into(),
            "blocks/lookup".into(),
            "blocks/update".into(),
            "lookup hit rate".into(),
            "storage (MiB)".into(),
        ])
        .with_title(format!(
            "Index-organization ablation on {} ({} misses)",
            self.workload, self.misses
        ));
        for row in &self.rows {
            t.add_row(vec![
                row.organization.clone(),
                ratio(row.blocks_per_lookup),
                ratio(row.blocks_per_update),
                format!("{:.1}%", row.hit_rate * 100.0),
                format!("{:.2}", row.storage_mib),
            ]);
        }
        t
    }
}

fn dram() -> DramModel {
    DramModel::new(SystemConfig::hpca09_baseline().dram)
}

/// Runs the ablation for one workload: every baseline off-chip read miss is
/// first looked up and then inserted in each organization (mimicking the
/// lookup-then-record flow of the prefetcher at 100% update sampling).
pub fn index_organization_ablation(cfg: &ExperimentConfig, spec: &WorkloadSpec) -> IndexAblation {
    index_organization_ablation_from(&spec.name, &collect_miss_sequences(cfg, spec))
}

/// The pure analysis stage of [`index_organization_ablation`]: replays
/// already-captured per-core miss sequences against each index organization.
/// Campaign plans use this form so the expensive capture runs as a pooled
/// job against the shared trace store.
pub fn index_organization_ablation_from(
    workload: &str,
    per_core: &[Vec<LineAddr>],
) -> IndexAblation {
    // Rebuild a single interleaved sequence (round-robin over cores keeps the
    // per-core orders intact, which is all the index cares about).
    let mut misses: Vec<(CoreId, LineAddr, u64)> = Vec::new();
    let mut cursors = vec![0usize; per_core.len()];
    let mut positions = vec![0u64; per_core.len()];
    loop {
        let mut progressed = false;
        for (core, seq) in per_core.iter().enumerate() {
            if cursors[core] < seq.len() {
                misses.push((
                    CoreId::new(core as u16),
                    seq[cursors[core]],
                    positions[core],
                ));
                cursors[core] += 1;
                positions[core] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // The three organizations, sized to comparable entry counts.
    let buckets = 8 * 1024;
    let entries = buckets * 12;
    let mut bucketized = HashIndexTable::new(buckets, 12, 0);
    let mut open = OpenAddressIndex::new(entries);
    let mut chained = ChainedIndex::new(buckets, 12);

    let mut d_bucket = dram();
    let mut d_open = dram();
    let mut d_chain = dram();

    let (mut hits_b, mut hits_o, mut hits_c) = (0u64, 0u64, 0u64);
    let (mut lookup_blocks_o, mut lookup_blocks_c) = (0u64, 0u64);
    let (mut update_blocks_o, mut update_blocks_c) = (0u64, 0u64);

    for &(core, line, position) in &misses {
        let pointer = HistoryPointer { core, position };
        // Bucketized (block counts come from the DRAM traffic counters).
        if bucketized
            .lookup(line, Cycle::ZERO, &mut d_bucket)
            .0
            .is_some()
        {
            hits_b += 1;
        }
        bucketized.update(line, pointer, Cycle::ZERO, &mut d_bucket);
        // Open addressing.
        let l = open.lookup(line, Cycle::ZERO, &mut d_open);
        if l.pointer.is_some() {
            hits_o += 1;
        }
        lookup_blocks_o += l.blocks_read as u64;
        update_blocks_o += open.update(line, pointer, Cycle::ZERO, &mut d_open) as u64;
        // Chained buckets.
        let l = chained.lookup(line, Cycle::ZERO, &mut d_chain);
        if l.pointer.is_some() {
            hits_c += 1;
        }
        lookup_blocks_c += l.blocks_read as u64;
        update_blocks_c += chained.update(line, pointer, Cycle::ZERO, &mut d_chain) as u64;
    }

    let n = misses.len().max(1) as f64;
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    let rows = vec![
        IndexAblationRow {
            organization: "bucketized (STMS)".into(),
            blocks_per_lookup: d_bucket.traffic().meta_lookup as f64 / 64.0 / n,
            blocks_per_update: d_bucket.traffic().meta_update as f64 / 64.0 / n,
            hit_rate: hits_b as f64 / n,
            storage_mib: mib(buckets as u64 * 64),
        },
        IndexAblationRow {
            organization: "open addressing".into(),
            blocks_per_lookup: lookup_blocks_o as f64 / n,
            blocks_per_update: update_blocks_o as f64 / n,
            hit_rate: hits_o as f64 / n,
            storage_mib: mib(open.storage_bytes()),
        },
        IndexAblationRow {
            organization: "chained buckets".into(),
            blocks_per_lookup: lookup_blocks_c as f64 / n,
            blocks_per_update: update_blocks_c as f64 / n,
            hit_rate: hits_c as f64 / n,
            storage_mib: mib(chained.storage_bytes()),
        },
    ];
    IndexAblation {
        workload: workload.to_string(),
        misses: misses.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_workloads::presets;

    #[test]
    fn ablation_reports_three_organizations_with_sane_costs() {
        let cfg = ExperimentConfig::quick().with_accesses(20_000);
        let ablation = index_organization_ablation(&cfg, &presets::oltp_db2());
        assert_eq!(ablation.rows.len(), 3);
        assert!(ablation.misses > 500);
        let bucketized = &ablation.rows[0];
        // The paper's design touches exactly one block per lookup.
        assert!((bucketized.blocks_per_lookup - 1.0).abs() < 0.01);
        for row in &ablation.rows {
            assert!(row.blocks_per_lookup >= 0.99, "{row:?}");
            assert!(row.blocks_per_update >= 0.99, "{row:?}");
            assert!((0.0..=1.0).contains(&row.hit_rate));
            assert!(row.storage_mib > 0.0);
        }
        // Rendering works and includes every organization.
        let rendered = ablation.table().render();
        assert!(rendered.contains("open addressing"));
        assert!(rendered.contains("chained buckets"));
    }
}
