//! Drives the real `stms-experiments` binary twice against one cache
//! directory and checks the acceptance contract of the persistent cache:
//! the warm run's stdout is byte-identical to the cold run's, all trace
//! generation and replay is skipped, and the stderr run summary says so.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stms-cli-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stms-experiments"))
        .args(args)
        .output()
        .expect("spawn stms-experiments")
}

#[test]
fn warm_full_run_is_byte_identical_and_skips_all_work() {
    let dir = temp_dir("full");
    let dir_str = dir.to_str().expect("utf-8 temp path");
    let args = [
        "--quick",
        "--accesses",
        "4000",
        "--threads",
        "2",
        "--figures",
        "all",
        "--trace-cache",
        dir_str,
        "--result-cache",
        dir_str,
        "--cache-verify",
    ];

    let cold = run_cli(&args);
    assert!(
        cold.status.success(),
        "cold stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_summary = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_summary.contains("run summary:"),
        "stderr must report cache usage: {cold_summary}"
    );
    assert!(
        !cold_summary.contains("generated 0,"),
        "the cold run generates traces: {cold_summary}"
    );

    let warm = run_cli(&args);
    assert!(warm.status.success());
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&warm.stdout),
        "warm stdout must be byte-identical to cold stdout"
    );
    let warm_summary = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_summary.contains("generated 0,"),
        "warm run must skip all trace generation: {warm_summary}"
    );
    assert!(
        warm_summary.contains("replayed 0,"),
        "warm run must skip all replay: {warm_summary}"
    );
    assert!(
        warm_summary.contains("result cache:") && warm_summary.contains("0 misses"),
        "warm run must serve every job from the result cache: {warm_summary}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_flags_validate_their_arguments() {
    // A missing value is a usage error, not a panic.
    let out = run_cli(&["--trace-cache"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace-cache requires a value"));

    // An unopenable directory is a clean error.
    let out = run_cli(&[
        "--figures",
        "table1",
        "--result-cache",
        "/dev/null/not-a-dir",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open cache directory"));
}

#[test]
fn runs_without_cache_flags_print_no_summary() {
    let out = run_cli(&["--quick", "--accesses", "4000", "--figures", "table1"]);
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("run summary:"));
}
