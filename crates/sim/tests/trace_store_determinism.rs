//! Trace-store determinism under concurrency: many pool workers requesting
//! the same `(spec, accesses)` must share one bit-identical trace, and
//! different specs must never alias a cache entry.

use std::sync::Arc;
use stms_sim::campaign::{JobPool, TraceStore};
use stms_types::SharedTrace;
use stms_workloads::{generate, presets};

const ACCESSES: usize = 6_000;

#[test]
fn concurrent_requests_for_one_spec_share_one_bit_identical_trace() {
    let store = Arc::new(TraceStore::new());
    let pool = JobPool::new(8);
    let requests = 16;

    let tasks: Vec<_> = (0..requests)
        .map(|_| {
            let store = Arc::clone(&store);
            move || store.get_or_generate(&presets::web_apache(), ACCESSES)
        })
        .collect();
    let traces: Vec<SharedTrace> = pool
        .run_batch(tasks)
        .into_iter()
        .map(|r| r.expect("generation never panics"))
        .collect();

    // Every worker got the same allocation — not merely an equal trace.
    for trace in &traces[1..] {
        assert!(Arc::ptr_eq(&traces[0], trace));
    }
    // And it is bit-identical to a from-scratch generation of the same spec.
    let direct = generate(&presets::web_apache().with_accesses(ACCESSES));
    assert_eq!(traces[0].encode(), direct.encode());

    let stats = store.stats();
    assert_eq!(stats.generated, 1, "the trace was generated exactly once");
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, requests - 1);
    assert_eq!(store.len(), 1);
}

#[test]
fn distinct_specs_never_alias_a_cache_entry() {
    let store = Arc::new(TraceStore::new());
    let pool = JobPool::new(4);

    // 4 distinct keys requested twice each, interleaved: different workloads,
    // a reseeded twin, and a different trace length of the same workload.
    let specs = [
        (presets::web_apache(), ACCESSES),
        (presets::sci_ocean(), ACCESSES),
        (presets::web_apache().with_seed(0xDEAD), ACCESSES),
        (presets::web_apache(), 2 * ACCESSES),
    ];
    let tasks: Vec<_> = (0..2 * specs.len())
        .map(|i| {
            let store = Arc::clone(&store);
            let (spec, accesses) = specs[i % specs.len()].clone();
            move || store.get_or_generate(&spec, accesses)
        })
        .collect();
    let traces: Vec<SharedTrace> = pool
        .run_batch(tasks)
        .into_iter()
        .map(|r| r.expect("generation never panics"))
        .collect();

    // Same key -> same allocation; different key -> different allocation.
    for (i, a) in traces.iter().enumerate() {
        for (j, b) in traces.iter().enumerate() {
            let same_key = i % specs.len() == j % specs.len();
            assert_eq!(
                Arc::ptr_eq(a, b),
                same_key,
                "request {i} vs {j}: aliasing must follow key identity"
            );
        }
    }
    let stats = store.stats();
    assert_eq!(stats.generated, specs.len() as u64);
    assert_eq!(stats.misses, specs.len() as u64);
    assert_eq!(stats.hits, specs.len() as u64);
    assert_eq!(store.len(), specs.len());

    // The distinct entries really hold different traces.
    assert_ne!(
        traces[0].encode(),
        traces[2].encode(),
        "seed changes content"
    );
    assert_ne!(traces[0].len(), traces[3].len(), "length changes content");
}
