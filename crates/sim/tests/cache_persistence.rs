//! The persistent two-tier cache across campaign "processes": a warm
//! campaign renders byte-identical figures while skipping all trace
//! generation and replay, survives corrupt cache files, and shares one
//! directory between concurrent pool workers.

use std::fs;
use std::path::PathBuf;
use stms_sim::campaign::{Campaign, CampaignCaches, DiskTierConfig, TraceStore};
use stms_sim::{experiments, ExperimentConfig};
use stms_workloads::presets;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stms-cache-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick() -> ExperimentConfig {
    ExperimentConfig::quick().with_accesses(6_000)
}

/// Renders a figure selection through a fresh campaign on `dir`, returning
/// the rendered text and the campaign for stats inspection.
fn run(dir: &PathBuf, ids: &[&str]) -> (Vec<String>, Campaign, usize) {
    let cfg = quick();
    let campaign =
        Campaign::with_caches(cfg.clone(), 2, CampaignCaches::in_dir(dir)).expect("open caches");
    let plans: Vec<_> = ids
        .iter()
        .map(|id| experiments::plan_for_id(id, campaign.cfg()).expect("known id"))
        .collect();
    let jobs: usize = plans.iter().map(|p| p.job_count()).sum();
    let rendered: Vec<String> = campaign
        .run_figures(plans)
        .into_iter()
        .map(|figure| figure.expect("no job fails").render())
        .collect();
    (rendered, campaign, jobs)
}

#[test]
fn warm_campaign_is_byte_identical_and_replays_nothing() {
    let dir = temp_dir("warm");
    // fig6-left exercises the CollectMisses job family; table2 and fig4 are
    // replay grids over all eight workloads.
    let ids = ["table2", "fig4", "fig6-left"];

    let (cold_tables, cold, jobs) = run(&dir, &ids);
    let cold_stats = cold.cache_stats();
    assert!(cold_stats.trace.generated > 0, "cold run must generate");
    let cold_results = cold_stats.result.expect("result cache configured");
    // table2's baseline cells recur inside fig4, so some jobs are served
    // without executing: from the memo, or — when the duplicate lands while
    // its twin is still running — from the in-flight dedup table. Every
    // *distinct* cell executes exactly once, and each execution is memoized
    // exactly once.
    assert!(cold_results.misses > 0, "cold run must simulate");
    let cold_flights = cold.flight_stats();
    assert!(cold_flights.executed > 0, "cold run executes leaders");
    assert_eq!(
        cold_results.stores, cold_flights.executed,
        "each executed job is persisted exactly once"
    );
    assert_eq!(
        cold_results.total_hits() + cold_flights.shared + cold_flights.executed,
        jobs as u64,
        "every job is a memo hit, a shared flight, or an execution"
    );

    // A fresh campaign on the same directory models the next process.
    let (warm_tables, warm, _) = run(&dir, &ids);
    assert_eq!(
        warm_tables, cold_tables,
        "warm rendering must be byte-identical to cold"
    );
    let warm_stats = warm.cache_stats();
    assert_eq!(
        warm_stats.trace.generated, 0,
        "warm run must skip all trace generation"
    );
    assert_eq!(
        warm_stats.trace.hits + warm_stats.trace.misses,
        0,
        "memoized outputs never even consult the trace store"
    );
    let warm_results = warm_stats.result.expect("result cache configured");
    assert_eq!(warm_results.misses, 0, "warm run must skip all replay");
    assert_eq!(warm_results.total_hits(), jobs as u64);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_every_cache_file_falls_back_to_regeneration() {
    let dir = temp_dir("corrupt");
    let ids = ["fig4"];
    let (cold_tables, _, jobs) = run(&dir, &ids);

    // Vandalize the whole directory: truncate result files, garble traces.
    let mut mutated = 0;
    for entry in fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("entry").path();
        let bytes = fs::read(&path).expect("cache file");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("result-") {
            fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        } else {
            let mut garbled = bytes;
            let mid = garbled.len() / 2;
            garbled[mid] ^= 0xff;
            fs::write(&path, garbled).unwrap();
        }
        mutated += 1;
    }
    assert!(mutated > 0, "the cold run must have persisted something");

    let (recovered_tables, campaign, _) = run(&dir, &ids);
    assert_eq!(
        recovered_tables, cold_tables,
        "regenerated output must match the original"
    );
    let stats = campaign.cache_stats();
    let results = stats.result.expect("result cache configured");
    assert_eq!(results.corrupt, jobs as u64, "every result file was bad");
    assert_eq!(results.stores, jobs as u64, "…and was re-persisted");
    assert!(stats.trace.disk_corrupt > 0, "trace files were bad too");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_workers_and_stores_share_one_cache_dir() {
    let dir = temp_dir("concurrent");

    // Many pool workers racing on the same cold keys: each trace must be
    // resolved exactly once per store, and every handle must agree.
    let campaign = Campaign::with_caches(quick(), 4, CampaignCaches::in_dir(&dir)).unwrap();
    let plans = vec![
        experiments::plan_table2(campaign.cfg()),
        experiments::plan_fig4(campaign.cfg()),
    ];
    for figure in campaign.run_figures(plans) {
        figure.expect("no job fails under concurrency");
    }
    let stats = campaign.store().stats();
    assert_eq!(
        stats.generated + stats.disk_hits,
        stats.misses,
        "each distinct key resolved exactly once"
    );

    // Several stores (modeling separate processes) hammering the same
    // directory concurrently: all must converge on the same bytes.
    let accesses = 2_000;
    let expect = campaign
        .store()
        .get_or_generate(&presets::web_apache(), accesses);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let dir = &dir;
            let expect = &expect;
            scope.spawn(move || {
                let store =
                    TraceStore::with_disk_tier(DiskTierConfig::new(dir).with_verify(true)).unwrap();
                let trace = store.get_or_generate(&presets::web_apache(), accesses);
                assert_eq!(**expect, *trace);
            });
        }
    });
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn memory_only_campaigns_are_unchanged() {
    // No cache directories: behavior (and stats shape) matches the old
    // purely in-memory campaign.
    let campaign = Campaign::with_threads(quick(), 2);
    assert!(campaign.result_store().is_none());
    assert!(campaign.store().disk_dir().is_none());
    let results = campaign
        .run_matched(
            &presets::web_apache(),
            &[stms_sim::PrefetcherKind::Baseline],
        )
        .expect("no job fails");
    assert_eq!(results.len(), 1);
    let stats = campaign.cache_stats();
    assert_eq!(stats.trace.generated, 1);
    assert_eq!(stats.result, None);
    assert_eq!(
        stats.trace.disk_hits + stats.trace.disk_misses + stats.trace.disk_writes,
        0
    );
}
