//! Drives the real `stms-experiments` binary through the streaming trace
//! pipeline and the shard-retry lifecycle: `--stream-traces` must render
//! stdout byte-identical to the materialized path (cold, cached, and warm),
//! and `--retry-failed` must heal a partial shard manifest in place by
//! rerunning only the missing jobs.

use std::path::PathBuf;
use std::process::Command;
use stms_types::ShardManifest;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stms-cli-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stms-experiments"))
        .args(args)
        .output()
        .expect("spawn stms-experiments")
}

const COMMON: &[&str] = &[
    "--quick",
    "--accesses",
    "4000",
    "--threads",
    "2",
    "--figures",
    "table2,fig6-left",
];

fn with(common: &[&str], extra: &[&str]) -> Vec<&'static str> {
    // Leak is fine in a test binary; keeps the call sites readable.
    common
        .iter()
        .chain(extra.iter())
        .map(|s| Box::leak(s.to_string().into_boxed_str()) as &'static str)
        .collect()
}

#[test]
fn streamed_replay_renders_byte_identical_stdout() {
    let direct = run_cli(COMMON);
    assert!(direct.status.success());
    assert!(!direct.stdout.is_empty());

    // Cache-less streaming: every job streams its own generator.
    let streamed = run_cli(&with(COMMON, &["--stream-traces"]));
    let stderr = String::from_utf8_lossy(&streamed.stderr);
    assert!(streamed.status.success(), "stderr: {stderr}");
    assert_eq!(
        streamed.stdout, direct.stdout,
        "streamed stdout must be byte-identical to the materialized path"
    );
    assert!(stderr.contains("streamed replay:"), "{stderr}");
    assert!(stderr.contains("0 fallbacks"), "{stderr}");

    // Streaming over a trace cache: cold run generates each trace once,
    // straight to chunk-framed files.
    let dir = temp_dir("cache");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();
    let cold = run_cli(&with(
        COMMON,
        &["--stream-traces", "--trace-cache", &dir_str],
    ));
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold.status.success(), "stderr: {cold_err}");
    assert_eq!(cold.stdout, direct.stdout);
    assert!(cold_err.contains("generated 8,"), "{cold_err}");
    assert!(
        std::fs::read_dir(&dir).unwrap().count() >= 8,
        "one sealed chunk-framed file per distinct workload"
    );

    // Warm run: replays the files it never fully decodes, generates nothing.
    let warm = run_cli(&with(
        COMMON,
        &["--stream-traces", "--trace-cache", &dir_str],
    ));
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(warm.status.success(), "stderr: {warm_err}");
    assert_eq!(warm.stdout, direct.stdout);
    assert!(warm_err.contains("generated 0,"), "{warm_err}");
    assert!(warm_err.contains("streamed replay:"), "{warm_err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_failed_heals_a_partial_manifest_in_place() {
    let dir = temp_dir("retry");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    // Reference output and a complete 1-of-2 shard.
    let direct = run_cli(COMMON);
    assert!(direct.status.success());
    for shard in ["1/2", "2/2"] {
        let out = run_cli(&with(COMMON, &["--shard", shard, "--shard-out", &dir_str]));
        assert!(out.status.success());
    }

    // Amputate two entries from shard 1's manifest, as if two of its jobs
    // had failed and exit code 3 been reported.
    let path = dir.join("shard-1-of-2.stms");
    let mut manifest = ShardManifest::open(&std::fs::read(&path).unwrap()).unwrap();
    let before = manifest.entries.len();
    assert!(before >= 2, "shard 1 owns at least two jobs");
    manifest.entries.drain(..2);
    std::fs::write(&path, manifest.seal()).unwrap();

    // The incomplete set must not merge.
    let rejected = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert_eq!(rejected.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&rejected.stderr).contains("incomplete shard coverage"));

    // Retry reruns exactly the missing jobs and seals in place.
    let path_str = path.to_str().unwrap().to_string();
    let retry = run_cli(&with(COMMON, &["--retry-failed", &path_str]));
    let stderr = String::from_utf8_lossy(&retry.stderr);
    assert!(retry.status.success(), "stderr: {stderr}");
    assert!(retry.stdout.is_empty(), "retry mode renders nothing");
    assert!(
        stderr.contains("retried shard 1/2: 2 missing job(s) rerun"),
        "{stderr}"
    );
    assert!(stderr.contains("sealed "), "{stderr}");
    assert!(stderr.contains("run summary:"), "{stderr}");
    let healed = ShardManifest::open(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(healed.entries.len(), before);

    // The healed set merges byte-identical to the direct run.
    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert!(merged.status.success());
    assert_eq!(merged.stdout, direct.stdout);

    // Retrying the now-complete manifest reruns nothing.
    let idle = run_cli(&with(COMMON, &["--retry-failed", &path_str]));
    assert!(idle.status.success());
    assert!(
        String::from_utf8_lossy(&idle.stderr).contains("0 missing job(s) rerun"),
        "idle retry is a no-op"
    );

    // A *renamed* partial still heals in place: the sealed manifest lands
    // under its conventional name and the stale file is removed, so the
    // directory stays mergeable (no DuplicateShard).
    let renamed = dir.join("shard-1-renamed.stms");
    std::fs::rename(&path, &renamed).unwrap();
    let renamed_str = renamed.to_str().unwrap().to_string();
    let healed = run_cli(&with(COMMON, &["--retry-failed", &renamed_str]));
    assert!(healed.status.success());
    assert!(path.is_file(), "sealed under the conventional name");
    assert!(!renamed.is_file(), "stale renamed partial removed");
    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert!(merged.status.success());
    assert_eq!(merged.stdout, direct.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_failed_usage_errors() {
    // Mutually exclusive with the other distributed modes.
    let out = run_cli(&[
        "--retry-failed",
        "x.stms",
        "--shard",
        "1/2",
        "--shard-out",
        "s",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_cli(&["--retry-failed", "x.stms", "--merge-shards", "d"]);
    assert_eq!(out.status.code(), Some(2));
    // Nothing renders, so render-output flags are refused.
    let out = run_cli(&["--retry-failed", "x.stms", "--format", "json"]);
    assert_eq!(out.status.code(), Some(2));
    // A missing manifest is a runtime failure, not a usage error.
    let out = run_cli(&[
        "--quick",
        "--figures",
        "table2",
        "--retry-failed",
        "absent.stms",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
