//! End-to-end checks of the campaign orchestration layer: a full `run_all`
//! grid generates each workload trace exactly once, every figure renders
//! through the job layer with the expected shape, and the cached-trace path
//! reproduces the regeneration path bit-for-bit.

use std::collections::HashSet;
use stms_sim::campaign::Campaign;
use stms_sim::experiments::{self, ALL_IDS};
use stms_sim::ExperimentConfig;
use stms_workloads::{presets, WorkloadSpec};

fn tiny() -> ExperimentConfig {
    ExperimentConfig::quick().with_accesses(8_000)
}

#[test]
fn full_grid_generates_each_workload_trace_exactly_once() {
    let cfg = tiny();
    let campaign = Campaign::with_threads(cfg.clone(), 2);
    let figures = campaign.run_figures(experiments::all_plans(&cfg));

    // All 13 experiments render through the job layer, in ALL_IDS order.
    assert_eq!(figures.len(), ALL_IDS.len());
    for (figure, &id) in figures.iter().zip(ALL_IDS) {
        let figure = figure.as_ref().expect("no job fails on the tiny grid");
        assert_eq!(figure.id, id);
        assert!(!figure.render().trim().is_empty(), "{id}: empty output");
    }

    // The distinct workload specs the grid can touch: the paper suite and
    // the commercial suite (the ablation reuses a suite workload).
    let distinct: HashSet<WorkloadSpec> = presets::paper_figure_suite()
        .into_iter()
        .chain(presets::commercial_suite())
        .map(|s| s.with_accesses(cfg.accesses))
        .collect();

    let stats = campaign.store().stats();
    assert_eq!(
        stats.generated,
        distinct.len() as u64,
        "each distinct workload trace is generated exactly once per campaign"
    );
    assert_eq!(stats.misses, stats.generated);
    assert!(
        stats.hits > 100,
        "the grid re-uses cached traces heavily (got {} hits)",
        stats.hits
    );
}

#[test]
fn figure_shapes_match_the_paper_grid() {
    let cfg = tiny();
    let campaign = Campaign::with_threads(cfg.clone(), 2);
    let figures: Vec<_> = campaign
        .run_figures(experiments::all_plans(&cfg))
        .into_iter()
        .map(|f| f.expect("no job fails"))
        .collect();

    let by_id = |id: &str| {
        figures
            .iter()
            .find(|f| f.id == id)
            .unwrap_or_else(|| panic!("figure {id} missing"))
    };
    // Workload-per-row figures have one row per suite workload.
    assert_eq!(by_id("table2").table.row_count(), 8);
    assert_eq!(by_id("fig4").table.row_count(), 8);
    assert_eq!(by_id("fig9").table.row_count(), 8);
    // Sweep figures have one row per sweep point.
    assert_eq!(by_id("fig1-left").table.row_count(), 6);
    assert_eq!(by_id("fig5-left").table.row_count(), 6);
    assert_eq!(by_id("fig5-right").table.row_count(), 6);
    // fig8's header carries traffic+coverage per probability.
    assert_eq!(by_id("fig8").table.headers().len(), 1 + 2 * 7);
    // fig7 shows two sampling rows per workload.
    assert_eq!(by_id("fig7").table.row_count(), 16);
    // The ablation compares three organizations.
    assert_eq!(by_id("ablation-index").table.row_count(), 3);
}

#[test]
fn cached_traces_reproduce_the_regeneration_path() {
    let cfg = tiny();
    // Through the shared campaign (fig4's cells replay cached traces that
    // many other figures also used)...
    let campaign = Campaign::with_threads(cfg.clone(), 2);
    let plans = vec![
        experiments::plan_table2(&cfg),
        experiments::plan_fig4(&cfg),
        experiments::plan_fig6_right(&cfg),
    ];
    let mut batched = campaign.run_figures(plans);
    let fig4_batched = batched.remove(1).expect("no job fails");

    // ...and through the standalone wrapper with its own fresh store.
    let fig4_direct = experiments::fig4_potential(&cfg);

    assert_eq!(fig4_batched.render(), fig4_direct.render());
}
