//! Drives the real `stms-experiments` binary and checks that `--format json`
//! emits a document that round-trips through `serde_json`.

use std::process::Command;
use stms_sim::FigureResult;

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stms-experiments"))
        .args(args)
        .output()
        .expect("spawn stms-experiments")
}

#[test]
fn json_output_round_trips_through_serde_json() {
    let out = run_cli(&[
        "--quick",
        "--accesses",
        "8000",
        "--threads",
        "2",
        "--figures",
        "table2,fig4",
        "--format",
        "json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let doc = serde_json::from_str(&stdout).expect("stdout is one valid JSON document");
    let items = doc.as_array().expect("top level is an array");
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].get("id").unwrap().as_str(), Some("table2"));
    assert_eq!(items[1].get("id").unwrap().as_str(), Some("fig4"));

    // Each figure deserializes back into a FigureResult with the full grid.
    for item in items {
        let figure = FigureResult::from_json(item).expect("complete figure object");
        assert_eq!(figure.table.row_count(), 8);
        assert!(!figure.notes.is_empty());
    }
}

#[test]
fn unknown_figure_and_invalid_options_exit_with_usage_error() {
    let out = run_cli(&["--figures", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));

    let out = run_cli(&["--warmup", "1.5", "--figures", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("warmup_fraction"));

    let out = run_cli(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn text_mode_renders_selected_figures_only() {
    let out = run_cli(&["--quick", "--accesses", "8000", "--figures", "table1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"));
    assert!(!stdout.contains("Figure 4"));
}
