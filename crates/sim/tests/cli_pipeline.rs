//! Drives the real `stms-experiments` binary through the staged replay
//! pipeline: `--replay-pipeline` must render stdout byte-identical to the
//! serial path (with and without a trace cache, cold and warm), recover
//! from mid-stream corruption by regenerating exactly once, and reject
//! incoherent flag combinations.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stms-cli-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stms-experiments"))
        .args(args)
        .output()
        .expect("spawn stms-experiments")
}

const COMMON: &[&str] = &[
    "--quick",
    "--accesses",
    "4000",
    "--threads",
    "2",
    "--figures",
    "table2,fig6-left",
];

fn with(common: &[&str], extra: &[&str]) -> Vec<&'static str> {
    common
        .iter()
        .chain(extra.iter())
        .map(|s| Box::leak(s.to_string().into_boxed_str()) as &'static str)
        .collect()
}

#[test]
fn pipelined_replay_renders_byte_identical_stdout() {
    let direct = run_cli(COMMON);
    assert!(direct.status.success());
    assert!(!direct.stdout.is_empty());

    // Cache-less pipelining: streaming is implied, each job's generator is
    // prefetched ahead of its simulator.
    let piped = run_cli(&with(
        COMMON,
        &["--replay-pipeline", "4", "--decode-threads", "2"],
    ));
    let stderr = String::from_utf8_lossy(&piped.stderr);
    assert!(piped.status.success(), "stderr: {stderr}");
    assert_eq!(
        piped.stdout, direct.stdout,
        "pipelined stdout must be byte-identical to the serial path"
    );
    assert!(
        stderr.contains("pipelined replay: depth 4, 2 decode threads"),
        "{stderr}"
    );
    assert!(
        stderr.contains("streamed replay:"),
        "implied streaming: {stderr}"
    );

    // Over a trace cache: the cold run generates into chunk-framed files,
    // the warm run decodes them on pipeline workers. Identical both times.
    let dir = temp_dir("cache");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();
    let flags = [
        "--replay-pipeline",
        "4",
        "--decode-threads",
        "2",
        "--trace-cache",
        &dir_str,
    ];
    let cold = run_cli(&with(COMMON, &flags));
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold.status.success(), "stderr: {cold_err}");
    assert_eq!(cold.stdout, direct.stdout);
    assert!(cold_err.contains("generated 8,"), "{cold_err}");

    let warm = run_cli(&with(COMMON, &flags));
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(warm.status.success(), "stderr: {warm_err}");
    assert_eq!(warm.stdout, direct.stdout);
    assert!(warm_err.contains("generated 0,"), "{warm_err}");
    assert!(warm_err.contains("pipelined replay:"), "{warm_err}");
    assert!(warm_err.contains("0 fallbacks"), "{warm_err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_replay_recovers_from_a_corrupt_cache_file() {
    let direct = run_cli(COMMON);
    assert!(direct.status.success());

    let dir = temp_dir("corrupt");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();
    let flags = [
        "--replay-pipeline",
        "4",
        "--decode-threads",
        "2",
        "--trace-cache",
        &dir_str,
    ];
    let cold = run_cli(&with(COMMON, &flags));
    assert!(cold.status.success());

    // Corrupt a payload byte deep inside every cached trace file: the
    // envelope still opens, so each failure surfaces mid-stream inside a
    // decode worker.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 100;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        corrupted += 1;
    }
    assert!(corrupted >= 8, "one file per distinct workload");

    let healed = run_cli(&with(COMMON, &flags));
    let stderr = String::from_utf8_lossy(&healed.stderr);
    assert!(healed.status.success(), "stderr: {stderr}");
    assert_eq!(
        healed.stdout, direct.stdout,
        "fallback replay must stay byte-identical"
    );
    // Every corrupt file was evicted and regenerated exactly once — the
    // `generated` count matches the cold run, not a per-retry multiple.
    assert!(stderr.contains("generated 8,"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_usage_errors() {
    // A depth-1 pipeline can never overlap anything; 0 would silently mean
    // "serial" and is refused for the same reason.
    for depth in ["0", "1"] {
        let out = run_cli(&["--replay-pipeline", depth, "table2"]);
        assert_eq!(out.status.code(), Some(2), "depth {depth}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("at least 2"),
            "depth {depth}"
        );
    }
    let out = run_cli(&["--replay-pipeline", "two", "table2"]);
    assert_eq!(out.status.code(), Some(2));

    // Decode workers only exist inside a pipeline.
    let out = run_cli(&["--decode-threads", "2", "table2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--replay-pipeline"));
    let out = run_cli(&["--replay-pipeline", "4", "--decode-threads", "0", "table2"]);
    assert_eq!(out.status.code(), Some(2));
}
