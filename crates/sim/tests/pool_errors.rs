//! A poisoned configuration must surface as a per-job error, not abort the
//! process (the seed driver's `.expect("simulation thread panicked")` took
//! the whole campaign down with it).

use stms_prefetch::MarkovConfig;
use stms_sim::{run_matched, run_suite, ExperimentConfig, PrefetcherKind};
use stms_workloads::presets;

/// A Markov table whose entry count is not a multiple of its associativity:
/// `MarkovPrefetcher::new` panics when the job builds the prefetcher.
fn poisoned_kind() -> PrefetcherKind {
    PrefetcherKind::Markov(MarkovConfig {
        entries: 3,
        associativity: 2,
        ..Default::default()
    })
}

#[test]
fn poisoned_config_yields_a_job_error_instead_of_aborting() {
    // Silence the worker threads' panic backtraces for this test binary.
    std::panic::set_hook(Box::new(|_| {}));

    let cfg = ExperimentConfig::quick().with_accesses(5_000);

    // run_suite: the error names the workload × prefetcher cell that died.
    let specs = vec![presets::web_apache(), presets::dss_qry17()];
    let err = run_suite(&cfg, &specs, &poisoned_kind()).unwrap_err();
    assert!(err.job.contains("markov"), "job label: {}", err.job);
    assert!(
        err.job.contains("Web Apache") || err.job.contains("DSS DB2"),
        "job label names the workload: {}",
        err.job
    );
    assert!(!err.message.is_empty());

    // run_matched: healthy kinds in the same batch are unaffected — only the
    // poisoned cell errors, and a follow-up run still works.
    let err = run_matched(
        &cfg,
        &presets::web_apache(),
        &[PrefetcherKind::Baseline, poisoned_kind()],
    )
    .unwrap_err();
    assert!(err.to_string().contains("failed"));

    let ok = run_matched(&cfg, &presets::web_apache(), &[PrefetcherKind::Baseline])
        .expect("the pool survives earlier panics");
    assert_eq!(ok.len(), 1);

    let _ = std::panic::take_hook();
}
