//! Ignored-by-default long run used to document the effect of stream
//! recurrence counts on probabilistic-update coverage loss (EXPERIMENTS.md).
use stms_sim::{run_matched, ExperimentConfig, PrefetcherKind};
use stms_workloads::presets;

#[test]
#[ignore = "long-running calibration check; run with --ignored"]
fn sampling_loss_shrinks_with_longer_traces() {
    for accesses in [600_000usize, 2_400_000] {
        let cfg = ExperimentConfig::scaled().with_accesses(accesses);
        let spec = presets::web_apache();
        let r = run_matched(
            &cfg,
            &spec,
            &[
                PrefetcherKind::ideal(),
                PrefetcherKind::stms_with_sampling(0.125),
            ],
        )
        .expect("no simulation panics");
        println!(
            "accesses={accesses} ideal_cov={:.3} stms_cov={:.3} ratio={:.2}",
            r[0].coverage(),
            r[1].coverage(),
            r[1].coverage() / r[0].coverage().max(1e-9)
        );
    }
}
