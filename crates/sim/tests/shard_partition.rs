//! Property tests for the deterministic shard partitioner: for any job list
//! and any shard count `N`, the shards must be pairwise disjoint, cover
//! every job, be independent of the job-list ordering, and be stable across
//! "process runs" (a fresh recomputation from equal inputs).

use proptest::prelude::*;
use stms_sim::campaign::{job_fingerprint, shard::distinct_jobs, JobSpec, ShardSpec};
use stms_sim::{ExperimentConfig, PrefetcherKind};
use stms_workloads::presets;

/// A small pool of distinct workloads to draw from.
fn workload(index: usize) -> stms_workloads::WorkloadSpec {
    let pool = [
        presets::web_apache(),
        presets::web_zeus(),
        presets::oltp_db2(),
        presets::oltp_oracle(),
        presets::dss_qry17(),
        presets::sci_ocean(),
    ];
    pool[index % pool.len()].clone()
}

/// Decodes one drawn case into a concrete job. The integers are the
/// generator's whole output, so equal draws always rebuild equal jobs.
fn job(workload_index: usize, kind_code: usize, parameter: usize) -> JobSpec {
    let spec = workload(workload_index);
    match kind_code % 4 {
        0 => JobSpec::replay(spec, PrefetcherKind::Baseline),
        1 => JobSpec::replay(
            spec,
            PrefetcherKind::IdealTms {
                index_entries: Some(1 << (8 + parameter % 8)),
                history_entries: 1 << 16,
            },
        ),
        2 => JobSpec::replay(
            spec,
            PrefetcherKind::stms_with_sampling(1.0 / (1 + parameter % 16) as f64),
        ),
        _ => JobSpec::collect_misses(spec),
    }
}

/// Strategy: a job list as raw draw tuples (kept as data so a test can
/// rebuild identical jobs for the stability property).
fn arb_job_draws() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0usize..6, 0usize..4, 0usize..64), 0..40)
}

fn build_jobs(draws: &[(usize, usize, usize)]) -> Vec<JobSpec> {
    draws.iter().map(|&(w, k, p)| job(w, k, p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn shards_are_disjoint_and_cover_every_job(
        draws in arb_job_draws(),
        count in 1u32..9,
    ) {
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let distinct = distinct_jobs(&cfg, &jobs);

        // Every distinct job is owned by exactly one of the N shards.
        for (fingerprint, job) in &distinct {
            let owners: Vec<u32> = (1..=count)
                .filter(|&index| ShardSpec::new(index, count).unwrap().owns(*fingerprint))
                .collect();
            prop_assert_eq!(
                owners.len(),
                1,
                "job `{}` owned by shards {:?} of {}",
                job.label(),
                owners,
                count
            );
        }

        // The per-shard slices partition the distinct set exactly.
        let total_owned: usize = (1..=count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                distinct.iter().filter(|(fp, _)| shard.owns(*fp)).count()
            })
            .sum();
        prop_assert_eq!(total_owned, distinct.len());
    }

    #[test]
    fn assignment_ignores_job_list_order(
        draws in arb_job_draws(),
        count in 1u32..9,
        rotation in 0usize..40,
    ) {
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        // A rotation is an order change that keeps the multiset intact.
        let mut rotated = jobs.clone();
        if !rotated.is_empty() {
            let mid = rotation % rotated.len();
            rotated.rotate_left(mid);
        }

        let assignment = |jobs: &[JobSpec]| -> Vec<(u128, u32)> {
            let mut owned: Vec<(u128, u32)> = distinct_jobs(&cfg, jobs)
                .into_iter()
                .map(|(fp, _)| {
                    let owner = (1..=count)
                        .find(|&index| ShardSpec::new(index, count).unwrap().owns(fp))
                        .expect("exactly one owner");
                    (fp.raw(), owner)
                })
                .collect();
            owned.sort_unstable();
            owned
        };
        prop_assert_eq!(assignment(&jobs), assignment(&rotated));
    }

    #[test]
    fn assignment_is_stable_across_recomputation(
        draws in arb_job_draws(),
        count in 1u32..9,
    ) {
        // A "second process": rebuild everything from the same draws. The
        // fingerprints are content hashes, so equal inputs must reproduce
        // the identical partition (nothing depends on allocation order,
        // HashMap iteration, or process identity).
        let cfg = ExperimentConfig::quick();
        let first = build_jobs(&draws);
        let second = build_jobs(&draws);
        for (a, b) in first.iter().zip(&second) {
            let fa = job_fingerprint(&cfg, a);
            let fb = job_fingerprint(&cfg, b);
            prop_assert_eq!(fa, fb);
            for index in 1..=count {
                let shard = ShardSpec::new(index, count).unwrap();
                prop_assert_eq!(shard.owns(fa), shard.owns(fb));
            }
        }
    }

    #[test]
    fn single_shard_owns_everything(draws in arb_job_draws()) {
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let shard = ShardSpec::new(1, 1).unwrap();
        for (fingerprint, _) in distinct_jobs(&cfg, &jobs) {
            prop_assert!(shard.owns(fingerprint));
        }
    }
}

#[test]
fn full_campaign_grid_partitions_without_gaps() {
    // The real thing, not synthetic draws: the full `--figures all` grid.
    // No figure is simulated — partitioning is pure arithmetic on specs.
    let cfg = ExperimentConfig::quick();
    let jobs: Vec<JobSpec> = stms_sim::experiments::all_plans(&cfg)
        .iter()
        .flat_map(|plan| plan.jobs().to_vec())
        .collect();
    let distinct = distinct_jobs(&cfg, &jobs);
    assert!(distinct.len() > 100, "the full grid is substantial");
    assert!(
        distinct.len() < jobs.len(),
        "figures share cells, so the distinct set must be smaller"
    );
    for count in [2u32, 3, 5] {
        let owned_sum: usize = (1..=count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                distinct.iter().filter(|(fp, _)| shard.owns(*fp)).count()
            })
            .sum();
        assert_eq!(
            owned_sum,
            distinct.len(),
            "{count} shards must cover the grid exactly once"
        );
    }
}
