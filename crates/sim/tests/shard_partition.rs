//! Property tests for the deterministic shard partitioners: for any job
//! list and any shard count `N`, the shards must be pairwise disjoint,
//! cover every job, be independent of the job-list ordering, and be stable
//! across "process runs" (a fresh recomputation from equal inputs) — under
//! both the modulo (`count`) and the greedy cost-balanced (`cost`)
//! assignment. Plus the in-process scheduling invariant: LPT submission
//! order renders byte-identical figures to plan-order submission.

use std::collections::BTreeMap;

use proptest::prelude::*;
use stms_sim::campaign::{
    cost, job_fingerprint, shard::distinct_jobs, JobCostModel, JobSpec, ShardSpec,
};
use stms_sim::{ExperimentConfig, PrefetcherKind};
use stms_types::{Fingerprint, ShardBalance};
use stms_workloads::presets;

/// A small pool of distinct workloads to draw from.
fn workload(index: usize) -> stms_workloads::WorkloadSpec {
    let pool = [
        presets::web_apache(),
        presets::web_zeus(),
        presets::oltp_db2(),
        presets::oltp_oracle(),
        presets::dss_qry17(),
        presets::sci_ocean(),
    ];
    pool[index % pool.len()].clone()
}

/// Decodes one drawn case into a concrete job. The integers are the
/// generator's whole output, so equal draws always rebuild equal jobs.
fn job(workload_index: usize, kind_code: usize, parameter: usize) -> JobSpec {
    let spec = workload(workload_index);
    match kind_code % 4 {
        0 => JobSpec::replay(spec, PrefetcherKind::Baseline),
        1 => JobSpec::replay(
            spec,
            PrefetcherKind::IdealTms {
                index_entries: Some(1 << (8 + parameter % 8)),
                history_entries: 1 << 16,
            },
        ),
        2 => JobSpec::replay(
            spec,
            PrefetcherKind::stms_with_sampling(1.0 / (1 + parameter % 16) as f64),
        ),
        _ => JobSpec::collect_misses(spec),
    }
}

/// Strategy: a job list as raw draw tuples (kept as data so a test can
/// rebuild identical jobs for the stability property).
fn arb_job_draws() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0usize..6, 0usize..4, 0usize..64), 0..40)
}

fn build_jobs(draws: &[(usize, usize, usize)]) -> Vec<JobSpec> {
    draws.iter().map(|&(w, k, p)| job(w, k, p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn shards_are_disjoint_and_cover_every_job(
        draws in arb_job_draws(),
        count in 1u32..9,
    ) {
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let distinct = distinct_jobs(&cfg, &jobs);

        // Every distinct job is owned by exactly one of the N shards.
        for (fingerprint, job) in &distinct {
            let owners: Vec<u32> = (1..=count)
                .filter(|&index| ShardSpec::new(index, count).unwrap().owns(*fingerprint))
                .collect();
            prop_assert_eq!(
                owners.len(),
                1,
                "job `{}` owned by shards {:?} of {}",
                job.label(),
                owners,
                count
            );
        }

        // The per-shard slices partition the distinct set exactly.
        let total_owned: usize = (1..=count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                distinct.iter().filter(|(fp, _)| shard.owns(*fp)).count()
            })
            .sum();
        prop_assert_eq!(total_owned, distinct.len());
    }

    #[test]
    fn assignment_ignores_job_list_order(
        draws in arb_job_draws(),
        count in 1u32..9,
        rotation in 0usize..40,
    ) {
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        // A rotation is an order change that keeps the multiset intact.
        let mut rotated = jobs.clone();
        if !rotated.is_empty() {
            let mid = rotation % rotated.len();
            rotated.rotate_left(mid);
        }

        let assignment = |jobs: &[JobSpec]| -> Vec<(u128, u32)> {
            let mut owned: Vec<(u128, u32)> = distinct_jobs(&cfg, jobs)
                .into_iter()
                .map(|(fp, _)| {
                    let owner = (1..=count)
                        .find(|&index| ShardSpec::new(index, count).unwrap().owns(fp))
                        .expect("exactly one owner");
                    (fp.raw(), owner)
                })
                .collect();
            owned.sort_unstable();
            owned
        };
        prop_assert_eq!(assignment(&jobs), assignment(&rotated));
    }

    #[test]
    fn assignment_is_stable_across_recomputation(
        draws in arb_job_draws(),
        count in 1u32..9,
    ) {
        // A "second process": rebuild everything from the same draws. The
        // fingerprints are content hashes, so equal inputs must reproduce
        // the identical partition (nothing depends on allocation order,
        // HashMap iteration, or process identity).
        let cfg = ExperimentConfig::quick();
        let first = build_jobs(&draws);
        let second = build_jobs(&draws);
        for (a, b) in first.iter().zip(&second) {
            let fa = job_fingerprint(&cfg, a);
            let fb = job_fingerprint(&cfg, b);
            prop_assert_eq!(fa, fb);
            for index in 1..=count {
                let shard = ShardSpec::new(index, count).unwrap();
                prop_assert_eq!(shard.owns(fa), shard.owns(fb));
            }
        }
    }

    #[test]
    fn single_shard_owns_everything(draws in arb_job_draws()) {
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let shard = ShardSpec::new(1, 1).unwrap();
        for (fingerprint, _) in distinct_jobs(&cfg, &jobs) {
            prop_assert!(shard.owns(fingerprint));
        }
    }
}

/// Owner of every distinct job keyed by fingerprint — the order-free view
/// two partitions are compared through.
fn owners_by_fingerprint(
    cfg: &ExperimentConfig,
    jobs: &[JobSpec],
    count: u32,
    balance: ShardBalance,
) -> (BTreeMap<Fingerprint, u32>, Vec<u128>) {
    let distinct = distinct_jobs(cfg, jobs);
    let model = JobCostModel::analytic();
    let partition = cost::partition(&model, cfg, &distinct, count, balance);
    let owners = distinct
        .iter()
        .zip(&partition.owners)
        .map(|((fingerprint, _), owner)| (*fingerprint, *owner))
        .collect();
    (owners, partition.shard_cost_ns)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cost_partition_is_disjoint_covering_and_accounted(
        draws in arb_job_draws(),
        count in 1u32..9,
        cost_mode in 0usize..2,
    ) {
        let balance = if cost_mode == 1 { ShardBalance::Cost } else { ShardBalance::Count };
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let distinct = distinct_jobs(&cfg, &jobs);
        let model = JobCostModel::analytic();
        let partition = cost::partition(&model, &cfg, &distinct, count, balance);

        // One owner per distinct job (disjoint + covering by construction
        // of the parallel array — but every owner must be a real shard).
        prop_assert_eq!(partition.owners.len(), distinct.len());
        for &owner in &partition.owners {
            prop_assert!(owner >= 1 && owner <= count, "owner {} of {}", owner, count);
        }

        // Cost accounting: each shard's reported load is exactly the sum
        // of its jobs' predictions, and nothing is lost or invented.
        prop_assert_eq!(partition.shard_cost_ns.len(), count as usize);
        let mut tallied = vec![0u128; count as usize];
        for ((_, job), &owner) in distinct.iter().zip(&partition.owners) {
            tallied[owner as usize - 1] += u128::from(model.predicted_ns(&cfg, job));
        }
        prop_assert_eq!(&tallied, &partition.shard_cost_ns);
    }

    #[test]
    fn cost_partition_ignores_job_list_order(
        draws in arb_job_draws(),
        count in 1u32..9,
        rotation in 0usize..40,
        cost_mode in 0usize..2,
    ) {
        let balance = if cost_mode == 1 { ShardBalance::Cost } else { ShardBalance::Count };
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let mut rotated = jobs.clone();
        if !rotated.is_empty() {
            let mid = rotation % rotated.len();
            rotated.rotate_left(mid);
        }
        prop_assert_eq!(
            owners_by_fingerprint(&cfg, &jobs, count, balance),
            owners_by_fingerprint(&cfg, &rotated, count, balance)
        );
    }

    #[test]
    fn cost_partition_is_stable_across_recomputation(
        draws in arb_job_draws(),
        count in 1u32..9,
        cost_mode in 0usize..2,
    ) {
        // A "second process": every input rebuilt from the same draws must
        // reproduce the byte-identical partition — the coordination-free
        // contract that lets fleet shards compute their slices
        // independently. Nothing may depend on HashMap iteration order,
        // allocation addresses, or process identity.
        let balance = if cost_mode == 1 { ShardBalance::Cost } else { ShardBalance::Count };
        let cfg = ExperimentConfig::quick();
        let first = build_jobs(&draws);
        let second = build_jobs(&draws);
        prop_assert_eq!(
            owners_by_fingerprint(&cfg, &first, count, balance),
            owners_by_fingerprint(&cfg, &second, count, balance)
        );
    }

    #[test]
    fn cost_partition_meets_the_greedy_balance_bounds(
        draws in arb_job_draws(),
        count in 1u32..9,
    ) {
        // The classical greedy guarantees, which hold for *every* input
        // (unlike "beats modulo", which a lucky modulo split can violate):
        // the heaviest shard carries at most the mean load plus one job,
        // and the spread between heaviest and lightest is at most the
        // largest single job. Both follow from each job landing on the
        // then-lightest shard.
        let cfg = ExperimentConfig::quick();
        let jobs = build_jobs(&draws);
        let distinct = distinct_jobs(&cfg, &jobs);
        let model = JobCostModel::analytic();
        let partition = cost::partition(&model, &cfg, &distinct, count, ShardBalance::Cost);
        let max_job = distinct
            .iter()
            .map(|(_, job)| u128::from(model.predicted_ns(&cfg, job)))
            .max()
            .unwrap_or(0);
        let total: u128 = partition.shard_cost_ns.iter().sum();
        let heaviest = partition.shard_cost_ns.iter().max().copied().unwrap_or(0);
        let lightest = partition.shard_cost_ns.iter().min().copied().unwrap_or(0);
        prop_assert!(
            heaviest <= total / u128::from(count) + max_job,
            "heaviest shard {} exceeds mean {} + max job {}",
            heaviest,
            total / u128::from(count),
            max_job
        );
        prop_assert!(
            heaviest - lightest <= max_job,
            "spread {} exceeds the largest job {}",
            heaviest - lightest,
            max_job
        );
    }
}

#[test]
fn lpt_submission_renders_byte_identical_to_plan_order() {
    // The whole point of LPT ordering is that it is *invisible* on stdout:
    // jobs start in a different order, figures render in selection order
    // from plan-indexed slots either way. Render the same two figures
    // under both orders and demand byte equality.
    let cfg = ExperimentConfig::quick().with_accesses(20_000);
    let render = |plan_order: bool| -> (Vec<String>, Option<String>) {
        let campaign = stms_sim::campaign::Campaign::with_threads(cfg.clone(), 2);
        campaign.set_plan_order(plan_order);
        let plans: Vec<_> = ["table2", "fig4"]
            .iter()
            .map(|id| stms_sim::experiments::plan_for_id(id, &cfg).expect("known id"))
            .collect();
        let mut rendered = Vec::new();
        campaign.run_figures_streaming(plans, |figure| {
            rendered.push(figure.expect("figure renders").render());
        });
        let order = campaign.take_sched_report().and_then(|sched| sched.order);
        (rendered, order)
    };
    let (lpt, lpt_order) = render(false);
    let (plan, plan_order) = render(true);
    // Both paths really ran: the sched reports name their orders.
    assert_eq!(lpt_order.as_deref(), Some("lpt"));
    assert_eq!(plan_order.as_deref(), Some("plan"));
    assert_eq!(lpt, plan, "submission order leaked into figure bytes");
}

#[test]
fn full_campaign_grid_partitions_without_gaps() {
    // The real thing, not synthetic draws: the full `--figures all` grid.
    // No figure is simulated — partitioning is pure arithmetic on specs.
    let cfg = ExperimentConfig::quick();
    let jobs: Vec<JobSpec> = stms_sim::experiments::all_plans(&cfg)
        .iter()
        .flat_map(|plan| plan.jobs().to_vec())
        .collect();
    let distinct = distinct_jobs(&cfg, &jobs);
    assert!(distinct.len() > 100, "the full grid is substantial");
    assert!(
        distinct.len() < jobs.len(),
        "figures share cells, so the distinct set must be smaller"
    );
    for count in [2u32, 3, 5] {
        let owned_sum: usize = (1..=count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                distinct.iter().filter(|(fp, _)| shard.owns(*fp)).count()
            })
            .sum();
        assert_eq!(
            owned_sum,
            distinct.len(),
            "{count} shards must cover the grid exactly once"
        );
    }
}
