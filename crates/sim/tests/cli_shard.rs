//! Drives the real `stms-experiments` binary through the distributed
//! campaign lifecycle and checks the acceptance contract: a campaign
//! executed as two shard processes plus a merge renders stdout
//! byte-identical to a single-process run, and the merge rejects
//! incomplete or duplicate shard coverage with a typed error.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stms-cli-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stms-experiments"))
        .args(args)
        .output()
        .expect("spawn stms-experiments")
}

const COMMON: &[&str] = &[
    "--quick",
    "--accesses",
    "4000",
    "--threads",
    "2",
    "--figures",
    "table2,fig4,table1",
];

fn with(common: &[&str], extra: &[&str]) -> Vec<&'static str> {
    // Leak is fine in a test binary; keeps the call sites readable.
    common
        .iter()
        .chain(extra.iter())
        .map(|s| Box::leak(s.to_string().into_boxed_str()) as &'static str)
        .collect()
}

#[test]
fn two_shards_plus_merge_render_byte_identical_stdout() {
    let dir = temp_dir("merge");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    let direct = run_cli(COMMON);
    assert!(direct.status.success());
    assert!(!direct.stdout.is_empty());

    for shard in ["1/2", "2/2"] {
        let out = run_cli(&with(COMMON, &["--shard", shard, "--shard-out", &dir_str]));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "shard {shard} stderr: {stderr}");
        assert!(
            out.stdout.is_empty(),
            "shard mode must render nothing to stdout"
        );
        assert!(stderr.contains("run summary:"), "{stderr}");
        assert!(stderr.contains(&format!("shard {shard}:")), "{stderr}");
        assert!(stderr.contains("0 failed"), "{stderr}");
    }
    assert!(dir.join("shard-1-of-2.stms").is_file());
    assert!(dir.join("shard-2-of-2.stms").is_file());

    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert!(
        merged.status.success(),
        "merge stderr: {}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&direct.stdout),
        String::from_utf8_lossy(&merged.stdout),
        "merged stdout must be byte-identical to the single-process run"
    );

    // JSON mode merges identically too (raw metrics hydrate from the
    // manifests, so even the "metrics" arrays agree).
    let direct_json = run_cli(&with(COMMON, &["--format", "json"]));
    let merged_json = run_cli(&with(
        COMMON,
        &["--format", "json", "--merge-shards", &dir_str],
    ));
    assert!(direct_json.status.success() && merged_json.status.success());
    assert_eq!(
        String::from_utf8_lossy(&direct_json.stdout),
        String::from_utf8_lossy(&merged_json.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_incomplete_and_duplicate_coverage() {
    let dir = temp_dir("reject");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    // Seal only shard 1 of 2: incomplete coverage.
    let out = run_cli(&with(COMMON, &["--shard", "1/2", "--shard-out", &dir_str]));
    assert!(out.status.success());
    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert_eq!(merged.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&merged.stderr);
    assert!(stderr.contains("incomplete shard coverage"), "{stderr}");
    assert!(stderr.contains("absent shard(s): 2"), "{stderr}");

    // A duplicate of the same shard under another name: duplicate coverage.
    std::fs::copy(
        dir.join("shard-1-of-2.stms"),
        dir.join("shard-1-of-2-copy.stms"),
    )
    .unwrap();
    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert_eq!(merged.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&merged.stderr);
    assert!(stderr.contains("duplicate shard 1/2"), "{stderr}");

    // A manifest sealed under a different configuration: stale.
    let _ = std::fs::remove_file(dir.join("shard-1-of-2-copy.stms"));
    let stale = run_cli(&[
        "--quick",
        "--accesses",
        "5000", // different trace length = different config fingerprint
        "--figures",
        "table2",
        "--shard",
        "2/2",
        "--shard-out",
        &dir_str,
    ]);
    assert!(stale.status.success());
    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert_eq!(merged.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&merged.stderr);
    assert!(stderr.contains("stale shard manifest"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_flags_validate_their_combinations() {
    for (args, needle) in [
        (vec!["--shard", "1/2"], "--shard requires --shard-out"),
        (
            vec!["--shard-out", "/tmp/x"],
            "only meaningful with --shard",
        ),
        (
            vec!["--shard", "0/2", "--shard-out", "/tmp/x"],
            "1 <= I <= N",
        ),
        (vec!["--shard", "nope", "--shard-out", "/tmp/x"], "I/N"),
        // An unset `$SHARD_DIRS` must not silently simulate from scratch.
        (vec!["--merge-shards", ""], "at least one directory"),
        (vec!["--merge-shards", " , "], "at least one directory"),
        // Output flags are dead in shard mode (nothing renders) and must
        // not be silently ignored.
        (
            vec!["--shard", "1/2", "--shard-out", "/tmp/x", "--csv", "out"],
            "--csv has no effect with --shard",
        ),
        (
            vec![
                "--shard",
                "1/2",
                "--shard-out",
                "/tmp/x",
                "--format",
                "json",
            ],
            "--format json has no effect with --shard",
        ),
        (
            vec![
                "--shard",
                "1/2",
                "--shard-out",
                "/tmp/x",
                "--merge-shards",
                "/tmp/y",
            ],
            "mutually exclusive",
        ),
    ] {
        let out = run_cli(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn cost_balanced_shards_merge_byte_identical_and_report_makespan() {
    let dir = temp_dir("cost-balance");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    let direct = run_cli(COMMON);
    assert!(direct.status.success());

    for shard in ["1/2", "2/2"] {
        let out = run_cli(&with(
            COMMON,
            &[
                "--shard",
                shard,
                "--shard-out",
                &dir_str,
                "--shard-balance",
                "cost",
            ],
        ));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "shard {shard} stderr: {stderr}");
        // The scheduling line reports the predicted makespan of the fleet.
        assert!(stderr.contains("scheduling:"), "{stderr}");
        assert!(stderr.contains("balance cost"), "{stderr}");
        assert!(stderr.contains("max shard"), "{stderr}");
    }

    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert!(
        merged.status.success(),
        "merge stderr: {}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&direct.stdout),
        String::from_utf8_lossy(&merged.stdout),
        "cost-balanced merge must be byte-identical to the single-process run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_mixed_balance_modes() {
    let dir = temp_dir("mixed-balance");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    // Shard 1 partitioned by cost, shard 2 by the modulo default: the
    // slices come from different partitions, so the merge must refuse
    // rather than risk silent gaps or overlaps.
    let out = run_cli(&with(
        COMMON,
        &[
            "--shard",
            "1/2",
            "--shard-out",
            &dir_str,
            "--shard-balance",
            "cost",
        ],
    ));
    assert!(out.status.success());
    let out = run_cli(&with(COMMON, &["--shard", "2/2", "--shard-out", &dir_str]));
    assert!(out.status.success());

    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert_eq!(merged.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&merged.stderr);
    assert!(stderr.contains("partitioned by"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calibrate_from_reports_fit_and_keeps_stdout_identical() {
    let dir = temp_dir("calibrate");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    // Seal a manifest so its per-job timings exist to calibrate from.
    for shard in ["1/2", "2/2"] {
        let out = run_cli(&with(COMMON, &["--shard", shard, "--shard-out", &dir_str]));
        assert!(out.status.success());
    }

    let plain = run_cli(COMMON);
    assert!(plain.status.success());
    let calibrated = run_cli(&with(COMMON, &["--calibrate-from", &dir_str]));
    let stderr = String::from_utf8_lossy(&calibrated.stderr);
    assert!(calibrated.status.success(), "{stderr}");
    assert!(stderr.contains("scheduling:"), "{stderr}");
    assert!(stderr.contains("calibrated on"), "{stderr}");
    // Calibration reorders the pool at most; figure bytes never move.
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&calibrated.stdout)
    );

    // A directory with no manifests is a usage error, not a partial run.
    let empty = temp_dir("calibrate-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = run_cli(&with(
        COMMON,
        &["--calibrate-from", empty.to_str().unwrap()],
    ));
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no shard manifest"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn shards_can_share_a_result_cache_with_the_merge_unaffected() {
    // The manifest is the hand-off artifact; a shared --result-cache is an
    // orthogonal accelerator. Both together must still be byte-identical.
    let dir = temp_dir("cache");
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();
    let cache = temp_dir("cache-store");
    let cache_str = cache.to_str().expect("utf-8 temp path").to_string();

    let direct = run_cli(COMMON);
    for shard in ["1/2", "2/2"] {
        let out = run_cli(&with(
            COMMON,
            &[
                "--shard",
                shard,
                "--shard-out",
                &dir_str,
                "--result-cache",
                &cache_str,
            ],
        ));
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("result cache:"));
    }
    let merged = run_cli(&with(COMMON, &["--merge-shards", &dir_str]));
    assert!(merged.status.success());
    assert_eq!(
        String::from_utf8_lossy(&direct.stdout),
        String::from_utf8_lossy(&merged.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
}
