//! Smoke test for the `stms-experiments` driver path: runs the same
//! experiment functions the binary's `run_one` dispatches to, for the two
//! cheapest representative targets (`fig4`, `table2`), under the quick
//! configuration, and checks that each produces non-empty rendered output.

use stms_sim::{experiments, ExperimentConfig};

#[test]
fn fig4_and_table2_render_under_quick_config() {
    let cfg = ExperimentConfig::quick().with_accesses(20_000);

    for (expected_id, result) in [
        ("fig4", experiments::fig4_potential(&cfg)),
        ("table2", experiments::table2_mlp(&cfg)),
    ] {
        assert_eq!(result.id, expected_id);
        assert!(
            result.table.row_count() > 0,
            "{expected_id}: empty result table"
        );

        let rendered = result.render();
        assert!(
            !rendered.trim().is_empty(),
            "{expected_id}: empty rendered output"
        );
        assert!(
            rendered.contains(&result.notes),
            "{expected_id}: rendered output must include the comparison notes"
        );

        // The CSV export the binary writes under --csv must be non-empty too:
        // a header line plus one line per table row.
        let csv = result.table.to_csv();
        assert!(
            csv.lines().count() > result.table.row_count(),
            "{expected_id}: truncated csv"
        );
    }
}
