//! Off-chip, per-core history buffers (§4.2).
//!
//! Each core logs its correct-path off-chip misses and prefetched hits in a
//! circular buffer allocated in main memory. To keep recording cheap, entries
//! are accumulated in a cache-block-sized write buffer and written to memory
//! as a group (one 64-byte write per `entries_per_block` appends). Reads
//! during stream-following fetch one block (up to `entries_per_block`
//! consecutive addresses) per main-memory access.
//!
//! The buffer also stores the *end-of-stream annotations* of §4.5: the entry
//! following the last contiguously-prefetched address of a followed stream is
//! marked, and later reads stop when they encounter a mark.

use std::collections::HashSet;
use stms_mem::{DramModel, TrafficClass};
use stms_prefetch::HistoryLog;
use stms_types::{CoreId, Cycle, LineAddr};

/// One block read from a history buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryBlock {
    /// Addresses read, in history order (possibly truncated at an
    /// end-of-stream mark or at the log's write point).
    pub addresses: Vec<LineAddr>,
    /// Cycle at which the data is available (after the memory access).
    pub ready_at: Cycle,
    /// Whether the read stopped because it reached an end-of-stream mark.
    pub hit_end_mark: bool,
}

/// Per-core off-chip history buffers with write accumulation and
/// end-of-stream annotations.
///
/// # Example
///
/// ```
/// use stms_core::OffChipHistory;
/// use stms_mem::{DramModel, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let mut history = OffChipHistory::new(1, 1024, 12);
/// let core = CoreId::new(0);
/// for i in 0..24u64 {
///     history.append(core, LineAddr::new(i), Cycle::ZERO, &mut dram);
/// }
/// // 24 appends = 2 packed 64-byte writes.
/// assert_eq!(dram.traffic().meta_record, 2 * 64);
/// let block = history.read_block(core, 0, Cycle::ZERO, &mut dram);
/// assert_eq!(block.addresses.len(), 12);
/// ```
#[derive(Debug)]
pub struct OffChipHistory {
    logs: Vec<HistoryLog>,
    end_marks: Vec<HashSet<u64>>,
    pending_writes: Vec<usize>,
    entries_per_block: usize,
    appended: u64,
    blocks_written: u64,
    blocks_read: u64,
}

impl OffChipHistory {
    /// Creates history buffers for `cores` cores, each retaining
    /// `entries_per_core` addresses, packed `entries_per_block` per memory
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(cores: usize, entries_per_core: usize, entries_per_block: usize) -> Self {
        assert!(cores > 0 && entries_per_core > 0 && entries_per_block > 0);
        OffChipHistory {
            logs: (0..cores)
                .map(|_| HistoryLog::new(entries_per_core))
                .collect(),
            end_marks: vec![HashSet::new(); cores],
            pending_writes: vec![0; cores],
            entries_per_block,
            appended: 0,
            blocks_written: 0,
            blocks_read: 0,
        }
    }

    /// Number of cores (history buffers).
    pub fn cores(&self) -> usize {
        self.logs.len()
    }

    /// Total entries appended across all cores.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of packed block writes issued.
    pub fn blocks_written(&self) -> u64 {
        self.blocks_written
    }

    /// Number of block reads issued.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// The position the next append on `core` will receive.
    pub fn next_position(&self, core: CoreId) -> u64 {
        self.logs[core.index()].next_position()
    }

    /// Appends one address to `core`'s history, issuing a packed block write
    /// when the accumulation buffer fills. Returns the entry's position.
    pub fn append(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        dram: &mut DramModel,
    ) -> u64 {
        let idx = core.index();
        let pos = self.logs[idx].append(line);
        self.appended += 1;
        self.pending_writes[idx] += 1;
        if self.pending_writes[idx] >= self.entries_per_block {
            dram.access(TrafficClass::MetaRecord, 64, now);
            self.blocks_written += 1;
            self.pending_writes[idx] = 0;
        }
        pos
    }

    /// Reads one block (up to `entries_per_block` addresses) of `core`'s
    /// history starting at `pos`, stopping early at an end-of-stream mark or
    /// at the write point. Always costs one low-priority memory access.
    pub fn read_block(
        &mut self,
        core: CoreId,
        pos: u64,
        now: Cycle,
        dram: &mut DramModel,
    ) -> HistoryBlock {
        let idx = core.index();
        let ready_at = dram.access(TrafficClass::MetaLookup, 64, now);
        self.blocks_read += 1;
        let raw = self.logs[idx].read_from(pos, self.entries_per_block);
        let mut addresses = Vec::with_capacity(raw.len());
        let mut hit_end_mark = false;
        for (offset, line) in raw.into_iter().enumerate() {
            let p = pos + offset as u64;
            if self.end_marks[idx].contains(&p) {
                hit_end_mark = true;
                break;
            }
            addresses.push(line);
        }
        HistoryBlock {
            addresses,
            ready_at,
            hit_end_mark,
        }
    }

    /// Marks `pos` in `core`'s history as the end of a followed stream
    /// (§4.5). Marking is an on-chip annotation and costs no traffic.
    pub fn mark_stream_end(&mut self, core: CoreId, pos: u64) {
        self.end_marks[core.index()].insert(pos);
    }

    /// Whether `pos` carries an end-of-stream mark.
    pub fn is_marked(&self, core: CoreId, pos: u64) -> bool {
        self.end_marks[core.index()].contains(&pos)
    }

    /// Flushes partially-filled write-accumulation buffers (end of
    /// simulation).
    pub fn flush(&mut self, now: Cycle, dram: &mut DramModel) {
        for pending in &mut self.pending_writes {
            if *pending > 0 {
                dram.access(TrafficClass::MetaRecord, 64, now);
                self.blocks_written += 1;
                *pending = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    #[test]
    fn record_traffic_is_amortized_over_block_size() {
        let mut d = dram();
        let mut h = OffChipHistory::new(2, 256, 12);
        for i in 0..23u64 {
            h.append(CoreId::new(0), LineAddr::new(i), Cycle::ZERO, &mut d);
        }
        assert_eq!(h.blocks_written(), 1, "only one full block so far");
        assert_eq!(d.traffic().meta_record, 64);
        h.append(CoreId::new(0), LineAddr::new(99), Cycle::ZERO, &mut d);
        assert_eq!(h.blocks_written(), 2);
        assert_eq!(h.appended(), 24);
    }

    #[test]
    fn flush_writes_partial_blocks() {
        let mut d = dram();
        let mut h = OffChipHistory::new(2, 256, 12);
        h.append(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d);
        h.append(CoreId::new(1), LineAddr::new(2), Cycle::ZERO, &mut d);
        assert_eq!(h.blocks_written(), 0);
        h.flush(Cycle::ZERO, &mut d);
        assert_eq!(h.blocks_written(), 2, "one partial block per core");
        // Flushing again writes nothing more.
        h.flush(Cycle::ZERO, &mut d);
        assert_eq!(h.blocks_written(), 2);
    }

    #[test]
    fn read_block_returns_consecutive_addresses_and_costs_one_access() {
        let mut d = dram();
        let mut h = OffChipHistory::new(1, 256, 4);
        for i in 0..10u64 {
            h.append(CoreId::new(0), LineAddr::new(100 + i), Cycle::ZERO, &mut d);
        }
        let lookups_before = d.traffic().meta_lookup;
        let block = h.read_block(CoreId::new(0), 2, Cycle::new(50), &mut d);
        assert_eq!(
            block.addresses,
            vec![
                LineAddr::new(102),
                LineAddr::new(103),
                LineAddr::new(104),
                LineAddr::new(105)
            ]
        );
        assert!(block.ready_at >= Cycle::new(50 + 180));
        assert!(!block.hit_end_mark);
        assert_eq!(d.traffic().meta_lookup, lookups_before + 64);
        assert_eq!(h.blocks_read(), 1);
    }

    #[test]
    fn read_stops_at_end_mark() {
        let mut d = dram();
        let mut h = OffChipHistory::new(1, 256, 8);
        for i in 0..8u64 {
            h.append(CoreId::new(0), LineAddr::new(i), Cycle::ZERO, &mut d);
        }
        h.mark_stream_end(CoreId::new(0), 5);
        assert!(h.is_marked(CoreId::new(0), 5));
        let block = h.read_block(CoreId::new(0), 3, Cycle::ZERO, &mut d);
        assert_eq!(block.addresses, vec![LineAddr::new(3), LineAddr::new(4)]);
        assert!(block.hit_end_mark);
    }

    #[test]
    fn read_past_write_point_truncates() {
        let mut d = dram();
        let mut h = OffChipHistory::new(1, 256, 12);
        h.append(CoreId::new(0), LineAddr::new(7), Cycle::ZERO, &mut d);
        let block = h.read_block(CoreId::new(0), 0, Cycle::ZERO, &mut d);
        assert_eq!(block.addresses, vec![LineAddr::new(7)]);
        let empty = h.read_block(CoreId::new(0), 5, Cycle::ZERO, &mut d);
        assert!(empty.addresses.is_empty());
    }

    #[test]
    fn per_core_positions_are_independent() {
        let mut d = dram();
        let mut h = OffChipHistory::new(2, 64, 4);
        assert_eq!(
            h.append(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d),
            0
        );
        assert_eq!(
            h.append(CoreId::new(1), LineAddr::new(2), Cycle::ZERO, &mut d),
            0
        );
        assert_eq!(
            h.append(CoreId::new(0), LineAddr::new(3), Cycle::ZERO, &mut d),
            1
        );
        assert_eq!(h.next_position(CoreId::new(0)), 2);
        assert_eq!(h.next_position(CoreId::new(1)), 1);
        assert_eq!(h.cores(), 2);
    }

    #[test]
    fn old_entries_age_out_of_circular_buffer() {
        let mut d = dram();
        let mut h = OffChipHistory::new(1, 8, 4);
        for i in 0..20u64 {
            h.append(CoreId::new(0), LineAddr::new(i), Cycle::ZERO, &mut d);
        }
        let block = h.read_block(CoreId::new(0), 0, Cycle::ZERO, &mut d);
        assert!(
            block.addresses.is_empty(),
            "position 0 has been overwritten"
        );
        let recent = h.read_block(CoreId::new(0), 16, Cycle::ZERO, &mut d);
        assert_eq!(recent.addresses[0], LineAddr::new(16));
    }

    #[test]
    #[should_panic]
    fn zero_geometry_panics() {
        let _ = OffChipHistory::new(0, 10, 10);
    }
}
