//! STMS configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the Sampled Temporal Memory Streaming prefetcher.
///
/// The defaults mirror the paper's design points: 64-byte index-table buckets
/// holding 12 `{address, history pointer}` pairs, history-buffer writes
/// packed 12 entries per block, an 8 KB on-chip bucket buffer and a 12.5%
/// index-update sampling probability (§4.3–§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StmsConfig {
    /// Number of cores (one private history buffer per core; the index table
    /// is shared).
    pub cores: usize,
    /// History-buffer capacity per core, in entries (miss addresses).
    pub history_entries_per_core: usize,
    /// History entries packed into one 64-byte memory block (write
    /// accumulation and read granularity).
    pub entries_per_history_block: usize,
    /// Number of hash buckets in the shared index table. Each bucket is one
    /// 64-byte memory block.
    pub index_buckets: usize,
    /// `{address, pointer}` pairs per bucket (12 in the paper).
    pub entries_per_bucket: usize,
    /// Capacity of the on-chip bucket buffer, in buckets (128 x 64 B = 8 KB).
    pub bucket_buffer_blocks: usize,
    /// Probability that a potential index-table update is actually performed
    /// (probabilistic update, §4.4). `1.0` disables sampling.
    pub sampling_probability: f64,
    /// Seed of the deterministic sampling sequence.
    pub sampling_seed: u64,
}

// Stable fingerprint so STMS design points can key on-disk memoized
// results in the campaign result cache.
impl stms_types::Fingerprintable for StmsConfig {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let StmsConfig {
            cores,
            history_entries_per_core,
            entries_per_history_block,
            index_buckets,
            entries_per_bucket,
            bucket_buffer_blocks,
            sampling_probability,
            sampling_seed,
        } = self;
        fp.write_str("StmsConfig/v1");
        fp.write_usize(*cores);
        fp.write_usize(*history_entries_per_core);
        fp.write_usize(*entries_per_history_block);
        fp.write_usize(*index_buckets);
        fp.write_usize(*entries_per_bucket);
        fp.write_usize(*bucket_buffer_blocks);
        fp.write_f64(*sampling_probability);
        fp.write_u64(*sampling_seed);
    }
}

impl StmsConfig {
    /// The paper's full-scale design point: 64 MB of main-memory meta-data
    /// (roughly 32 MB of history buffers plus a 16 MB index table), 12.5%
    /// update sampling.
    pub fn paper_default() -> Self {
        StmsConfig {
            cores: 4,
            // 32 MB of history across 4 cores at 4 bytes per entry.
            history_entries_per_core: 2 * 1024 * 1024,
            entries_per_history_block: 12,
            // 16 MB of index table in 64-byte buckets.
            index_buckets: 256 * 1024,
            entries_per_bucket: 12,
            bucket_buffer_blocks: 128,
            sampling_probability: 0.125,
            sampling_seed: 0x57A7_15ED_5EED_0001,
        }
    }

    /// A design point scaled to the reproduction's synthetic workloads
    /// (footprints roughly an order of magnitude smaller than the paper's
    /// full-system traces); meta-data capacities shrink by the same factor.
    pub fn scaled_default() -> Self {
        StmsConfig {
            history_entries_per_core: 128 * 1024,
            index_buckets: 16 * 1024,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different sampling probability.
    pub fn with_sampling(mut self, probability: f64) -> Self {
        self.sampling_probability = probability;
        self
    }

    /// Returns a copy with a different per-core history capacity (in
    /// entries).
    pub fn with_history_entries(mut self, entries: usize) -> Self {
        self.history_entries_per_core = entries;
        self
    }

    /// Returns a copy with a different index-table size (in buckets).
    pub fn with_index_buckets(mut self, buckets: usize) -> Self {
        self.index_buckets = buckets;
        self
    }

    /// Total main-memory meta-data footprint in bytes (history buffers plus
    /// index table), assuming 4-byte history entries and 64-byte buckets.
    pub fn metadata_bytes(&self) -> u64 {
        let history = self.cores as u64 * self.history_entries_per_core as u64 * 4;
        let index = self.index_buckets as u64 * 64;
        history + index
    }

    /// On-chip storage required per core in bytes: the 2 KB prefetch buffer
    /// plus the (negligible) address queue, as discussed in §5.3.
    pub fn on_chip_bytes_per_core(&self) -> u64 {
        2048 + 128
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be non-zero".into());
        }
        if self.history_entries_per_core == 0 {
            return Err("history_entries_per_core must be non-zero".into());
        }
        if self.entries_per_history_block == 0 || self.entries_per_bucket == 0 {
            return Err("block/bucket entry counts must be non-zero".into());
        }
        if self.index_buckets == 0 {
            return Err("index_buckets must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.sampling_probability) {
            return Err(format!(
                "sampling_probability must be in [0,1], got {}",
                self.sampling_probability
            ));
        }
        Ok(())
    }
}

impl Default for StmsConfig {
    fn default() -> Self {
        Self::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_design_point() {
        let cfg = StmsConfig::paper_default();
        assert_eq!(cfg.entries_per_bucket, 12);
        assert_eq!(cfg.entries_per_history_block, 12);
        assert_eq!(
            cfg.bucket_buffer_blocks * 64,
            8 * 1024,
            "8 KB bucket buffer"
        );
        assert!((cfg.sampling_probability - 0.125).abs() < 1e-12);
        // 64 MB of meta-data: 32 MB history + 16 MB index.
        assert_eq!(cfg.metadata_bytes(), 32 * 1024 * 1024 + 16 * 1024 * 1024);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn scaled_default_is_smaller_but_valid() {
        let cfg = StmsConfig::scaled_default();
        assert!(cfg.metadata_bytes() < StmsConfig::paper_default().metadata_bytes());
        assert!(cfg.validate().is_ok());
        assert_eq!(StmsConfig::default(), cfg);
    }

    #[test]
    fn builder_setters() {
        let cfg = StmsConfig::scaled_default()
            .with_sampling(0.5)
            .with_history_entries(1000)
            .with_index_buckets(64);
        assert_eq!(cfg.sampling_probability, 0.5);
        assert_eq!(cfg.history_entries_per_core, 1000);
        assert_eq!(cfg.index_buckets, 64);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(StmsConfig {
            cores: 0,
            ..StmsConfig::scaled_default()
        }
        .validate()
        .is_err());
        assert!(StmsConfig {
            sampling_probability: 1.5,
            ..StmsConfig::scaled_default()
        }
        .validate()
        .is_err());
        assert!(StmsConfig {
            index_buckets: 0,
            ..StmsConfig::scaled_default()
        }
        .validate()
        .is_err());
        assert!(StmsConfig {
            history_entries_per_core: 0,
            ..StmsConfig::scaled_default()
        }
        .validate()
        .is_err());
        assert!(StmsConfig {
            entries_per_bucket: 0,
            ..StmsConfig::scaled_default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn on_chip_storage_is_small() {
        let cfg = StmsConfig::paper_default();
        assert!(
            cfg.on_chip_bytes_per_core() < 4 * 1024,
            "per-core on-chip cost stays tiny"
        );
    }
}
